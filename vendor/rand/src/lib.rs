//! Offline stand-in for the `rand` crate: the API subset gridpaxos uses
//! (`SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}`).
//!
//! The generator is xoshiro256**, seeded through splitmix64 — deterministic
//! for a given seed, which is all the simulator and tests rely on.

// Vendored stand-in: keep diffs with upstream small; exempt from local lints.
#![allow(clippy::all, unused)]

/// Seed-construction trait (subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value trait (subset).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range` (`Range` or `RangeInclusive`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform value of `T` over its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Named generators (subset: only [`SmallRng`]).
pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl super::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Standard-distribution sampling from raw bits.
pub trait Standard {
    /// Map 64 uniform bits to a value.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}
impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}
impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = f64::from_bits_uniform(rng.next_u64());
        self.start + unit * (self.end - self.start)
    }
}

trait F64Bits {
    fn from_bits_uniform(bits: u64) -> f64;
}
impl F64Bits for f64 {
    fn from_bits_uniform(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
