//! Offline stand-in for the `bytes` crate: the API subset gridpaxos uses.
//!
//! `Bytes` is a cheaply-cloneable, sliceable view of an immutable byte
//! buffer; `BytesMut` is an append buffer that freezes into `Bytes`. The
//! `Buf`/`BufMut` traits mirror the upstream cursor-style accessors.

// Vendored stand-in: keep diffs with upstream small; exempt from local lints.
#![allow(clippy::all, unused)]

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (copied here; upstream borrows it).
    #[must_use]
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copy an arbitrary slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// A sub-view of the same underlying buffer.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    /// Split off and return everything from `at`; `self` keeps the prefix.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for e in std::ascii::escape_default(b) {
                write!(f, "{}", e as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other[..]
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}
impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor for the `Buf` impl (bytes before it are consumed).
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` reserved bytes.
    #[must_use]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// A buffer holding `len` zero bytes.
    #[must_use]
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut {
            buf: vec![0; len],
            head: 0,
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Reserve at least `n` more bytes of capacity.
    pub fn reserve(&mut self, n: usize) {
        self.buf.reserve(n);
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// Keep only the first `len` unconsumed bytes.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(self.head + len.min(self.len()));
    }

    /// Split off and return everything from `at`; `self` keeps the prefix.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        let tail = self.buf.split_off(self.head + at);
        BytesMut { buf: tail, head: 0 }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(self.head + at);
        let head = std::mem::replace(&mut self.buf, rest);
        let out = BytesMut {
            buf: head,
            head: self.head,
        };
        self.head = 0;
        out
    }

    /// Freeze into an immutable, cheaply-cloneable [`Bytes`].
    #[must_use]
    pub fn freeze(mut self) -> Bytes {
        if self.head > 0 {
            self.buf.drain(..self.head);
        }
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.head..]
    }
}
impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.buf[head..]
    }
}
impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&Bytes::from(self[..].to_vec()), f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { buf: v, head: 0 }
    }
}

/// Cursor-style read access to a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut a = [0u8; 2];
        a.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(a)
    }
    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(a)
    }
    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(a)
    }
    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }
    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.head += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Append-style write access to a byte buffer.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cursor() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(42);
        b.put_slice(b"xyz");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 4 + 8 + 3);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xdead_beef);
        assert_eq!(frozen.get_u64_le(), 42);
        assert_eq!(&frozen[..], b"xyz");
    }

    #[test]
    fn slicing_shares_storage() {
        let a = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mut c = a.clone();
        let head = c.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&c[..], &[3, 4, 5]);
        assert_eq!(a.slice(1..4), Bytes::from(vec![2, 3, 4]));
    }
}
