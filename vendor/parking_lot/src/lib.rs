//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, implemented over `std::sync` (poison is swallowed,
//! matching parking_lot's behavior of never poisoning).

// Vendored stand-in: keep diffs with upstream small; exempt from local lints.
#![allow(clippy::all, unused)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never surface poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (blocking).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard (blocking).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
