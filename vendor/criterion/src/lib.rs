//! Offline stand-in for `criterion`: same macro and builder surface, with a
//! deliberately simple measurement loop (warm-up, fixed-duration timing,
//! mean/min report to stdout). Good enough to keep `cargo bench` working
//! and to compare orders of magnitude; not a statistics engine.

// Vendored stand-in: keep diffs with upstream small; exempt from local lints.
#![allow(clippy::all, unused)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for reporting per-iteration throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by this stand-in).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Explicit batch size.
    NumBatches(u64),
}

/// The benchmark context handed to `criterion_group!` targets.
pub struct Criterion {
    measure: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure: Duration::from_millis(400),
            warmup: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            c: self,
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stand-in times by duration.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            measure: self.c.measure,
            warmup: self.c.warmup,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.total.as_nanos() as f64 / b.iters as f64
        } else {
            f64::NAN
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3} Melem/s", n as f64 / per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:.3} MiB/s",
                    n as f64 / per_iter * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!("  {id}: {per_iter:.1} ns/iter ({} iters){rate}", b.iters);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Times closures; handed to `bench_function` bodies.
pub struct Bencher {
    measure: Duration,
    warmup: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warmup;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure {
            black_box(f());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Time `routine` on fresh inputs from `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_end = Instant::now() + self.warmup;
        while Instant::now() < warm_end {
            let input = setup();
            black_box(routine(input));
        }
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        while timed < self.measure {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.total = timed;
        self.iters = iters;
    }

    /// Like [`Bencher::iter_batched`] but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut i| routine(&mut i), size);
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
