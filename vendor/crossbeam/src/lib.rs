//! Offline stand-in for `crossbeam`: the `channel` subset gridpaxos uses,
//! mapped onto `std::sync::mpsc` (whose `Sender` has been `Sync` since
//! Rust 1.72, which is all the transports need).

// Vendored stand-in: keep diffs with upstream small; exempt from local lints.
#![allow(clippy::all, unused)]

/// MPSC channels (subset of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// An unbounded FIFO channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
