//! Offline stand-in for `serde_derive`: the derives expand to nothing,
//! matching the stub `serde` crate whose traits carry no methods.

// Vendored stand-in: keep diffs with upstream small; exempt from local lints.
#![allow(clippy::all, unused)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
