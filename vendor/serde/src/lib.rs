//! Offline stand-in for `serde`. The repo only *derives* the traits (wire
//! encoding is hand-rolled in `gridpaxos-transport`), so marker traits plus
//! no-op derives keep every annotated type compiling without a serializer.

// Vendored stand-in: keep diffs with upstream small; exempt from local lints.
#![allow(clippy::all, unused)]

/// Marker: the type opted into serialization support.
pub trait Serialize {}

/// Marker: the type opted into deserialization support.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
