//! The reduced test runner: a deterministic RNG and the case-failure type.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Why a single proptest case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The inputs were rejected (e.g. by `prop_filter`).
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// An input rejection.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Outcome of a single proptest case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG strategies draw from. Seeded from the test's name (so distinct
/// tests explore distinct streams) unless `PROPTEST_SEED` pins it.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(s) => s,
            None => {
                // FNV-1a over the test path.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h
            }
        };
        TestRng(SmallRng::seed_from_u64(seed))
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform value in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.0.gen_range(0..n)
    }

    /// A uniform value in `[lo, hi)`.
    pub fn below_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        self.0.gen_range(lo..hi)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }
}
