//! Offline stand-in for `proptest`: random property testing *without
//! shrinking*. It covers the API subset this repository uses — the
//! `proptest!` macro, `Strategy` combinators (`prop_map`, `prop_filter`),
//! `prop_oneof!`, `Just`, `any`, range and regex-literal strategies,
//! `collection::vec`, `option::of`, and the `prop_assert*` macros.
//!
//! Failing cases are reported with their inputs (seeded deterministically
//! per test name, overridable with `PROPTEST_SEED`) but are not minimized.

// Vendored stand-in: keep diffs with upstream small; exempt from local lints.
#![allow(clippy::all, unused)]

pub mod strategy;
pub mod test_runner;

pub use test_runner::{TestCaseError, TestCaseResult, TestRng};

/// Run-time configuration for a `proptest!` block (subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Give up after this many consecutive `prop_filter` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config with a specific case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 65_536,
        }
    }
}

/// Collection strategies (subset: [`collection::vec`]).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below_range(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (subset: [`option::of`]).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option`s: `None` one time in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The glob import every proptest consumer starts with.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a proptest body; failure aborts only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::Union::arm($arm) ),+ ])
    };
}

/// Declare property tests. Each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_with_config!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_with_config!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`] — the config is captured at
/// repetition depth 0 so each generated test can reference it.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_with_config {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(" ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        let _: () = $body;
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn sum_pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..100, 0u8..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps_compose(
            v in crate::collection::vec(any::<u32>(), 1..8),
            pair in sum_pair(),
            tag in prop_oneof![Just(0u8), Just(1u8), (2u8..5)],
            name in "[a-d]{1,3}",
            opt in crate::option::of(0u64..10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(pair.0 < 100 && pair.1 < 100);
            prop_assert!(tag < 5);
            prop_assert!((1..=3).contains(&name.len()));
            prop_assert!(name.chars().all(|c| ('a'..='d').contains(&c)));
            if let Some(x) = opt { prop_assert!(x < 10); }
        }

        #[test]
        fn filters_hold(x in (0u32..1000).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }
    }
}
