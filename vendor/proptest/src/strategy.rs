//! Strategies: how random values of each type are produced.
//!
//! Unlike upstream proptest there is no value tree and no shrinking — a
//! strategy is simply a sampler. `prop_filter` retries internally and
//! panics if the predicate rejects essentially everything.

use crate::test_runner::TestRng;

/// How many times `prop_filter` resamples before giving up.
const MAX_FILTER_TRIES: usize = 10_000;

/// A producer of random values.
pub trait Strategy {
    /// The value type produced.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every drawn value.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (resampling on rejection).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`Union`] and [`BoxedStrategy`].
pub trait DynStrategy {
    /// The value type produced.
    type Value;
    /// Draw one value.
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {MAX_FILTER_TRIES} samples in a row",
            self.whence
        );
    }
}

/// Always produce (a clone of) the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice across several strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<Box<dyn DynStrategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Combine pre-boxed arms.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn DynStrategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Box one arm (helper for the `prop_oneof!` macro).
    pub fn arm<S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn DynStrategy<Value = T>> {
        Box::new(s)
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].sample_dyn(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: full-range `any`, ranges, and regex literals
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (whole domain, uniform).
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
}

// ---------------------------------------------------------------------
// Regex-literal string strategies: `"[a-d]"`, `"[x-z]{0,3}"`, …
// ---------------------------------------------------------------------

/// The pattern subset supported for `&str` strategies: a sequence of
/// literal characters and `[lo-hi]` classes, each optionally followed by
/// `{m,n}` (or `{n}`) repetition.
#[derive(Debug)]
enum Unit {
    Lit(char),
    Class(char, char),
}

fn parse_pattern(pat: &str) -> Vec<(Unit, usize, usize)> {
    let mut out = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let unit = if c == '[' {
            let lo = chars.next().expect("class start");
            assert_eq!(
                chars.next(),
                Some('-'),
                "only [lo-hi] classes are supported: {pat}"
            );
            let hi = chars.next().expect("class end");
            assert_eq!(chars.next(), Some(']'), "unterminated class in {pat}");
            Unit::Class(lo, hi)
        } else {
            Unit::Lit(c)
        };
        let (mut m, mut n) = (1usize, 1usize);
        if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((a, b)) => {
                    m = a.trim().parse().expect("repeat lower bound");
                    n = b.trim().parse().expect("repeat upper bound");
                }
                None => {
                    m = spec.trim().parse().expect("repeat count");
                    n = m;
                }
            }
        }
        out.push((unit, m, n));
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut s = String::new();
        for (unit, m, n) in parse_pattern(self) {
            let reps = if m == n { m } else { rng.below_range(m, n + 1) };
            for _ in 0..reps {
                match unit {
                    Unit::Lit(c) => s.push(c),
                    Unit::Class(lo, hi) => {
                        let span = hi as u32 - lo as u32 + 1;
                        let c = char::from_u32(lo as u32 + rng.below(span as usize) as u32)
                            .expect("class char");
                        s.push(c);
                    }
                }
            }
        }
        s
    }
}
