//! The distributed grid resource broker (§2 of the paper).
//!
//! "A common way to perform such selections is to use a randomized
//! algorithm to balance the load between resources" — the broker picks
//! among feasible resources with the classic *power-of-two-choices*
//! randomized policy, so replicas executing the same request sequence
//! would diverge. Replication therefore ships the nondeterministic choice
//! itself: the leader records the chosen resource in a
//! [`StateUpdate::Reproduce`] update and backups re-execute the request
//! deterministically from that record — the first state-size reduction of
//! §3.3.

use crate::codec::{get_str, get_u32, get_u64, get_u8, put_str};
use bytes::{BufMut, Bytes, BytesMut};
use gridpaxos_core::command::StateUpdate;
use gridpaxos_core::request::Request;
use gridpaxos_core::service::{App, ExecCtx};
use rand::Rng;
use std::collections::BTreeMap;

/// A client-visible broker operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrokerOp {
    /// Register a resource with a unit capacity. Write.
    AddResource {
        /// Resource name.
        name: String,
        /// Capacity in units.
        capacity: u32,
    },
    /// Request `units` for task `task`; the broker picks a resource. Write
    /// (nondeterministic).
    Request {
        /// Task identifier.
        task: u64,
        /// Units required.
        units: u32,
    },
    /// Release the allocation of `task`. Write.
    Release {
        /// Task identifier.
        task: u64,
    },
    /// Query the resource a task was placed on. Read.
    Placement {
        /// Task identifier.
        task: u64,
    },
    /// Query total free units. Read.
    FreeUnits,
}

impl BrokerOp {
    /// Encode to a request payload.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        match self {
            BrokerOp::AddResource { name, capacity } => {
                out.put_u8(0);
                put_str(&mut out, name);
                out.put_u32_le(*capacity);
            }
            BrokerOp::Request { task, units } => {
                out.put_u8(1);
                out.put_u64_le(*task);
                out.put_u32_le(*units);
            }
            BrokerOp::Release { task } => {
                out.put_u8(2);
                out.put_u64_le(*task);
            }
            BrokerOp::Placement { task } => {
                out.put_u8(3);
                out.put_u64_le(*task);
            }
            BrokerOp::FreeUnits => out.put_u8(4),
        }
        out.freeze()
    }

    /// Decode a request payload.
    #[must_use]
    pub fn decode(mut b: Bytes) -> Option<BrokerOp> {
        match get_u8(&mut b)? {
            0 => Some(BrokerOp::AddResource {
                name: get_str(&mut b)?,
                capacity: get_u32(&mut b)?,
            }),
            1 => Some(BrokerOp::Request {
                task: get_u64(&mut b)?,
                units: get_u32(&mut b)?,
            }),
            2 => Some(BrokerOp::Release {
                task: get_u64(&mut b)?,
            }),
            3 => Some(BrokerOp::Placement {
                task: get_u64(&mut b)?,
            }),
            4 => Some(BrokerOp::FreeUnits),
            _ => None,
        }
    }
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Resource {
    capacity: u32,
    used: u32,
}

impl Resource {
    fn free(&self) -> u32 {
        self.capacity.saturating_sub(self.used)
    }
}

/// The broker service.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Broker {
    resources: BTreeMap<String, Resource>,
    allocations: BTreeMap<u64, (String, u32)>,
}

impl Broker {
    /// Empty broker.
    #[must_use]
    pub fn new() -> Broker {
        Broker::default()
    }

    /// Where a task is placed (tests / examples).
    #[must_use]
    pub fn placement(&self, task: u64) -> Option<&str> {
        self.allocations.get(&task).map(|(r, _)| r.as_str())
    }

    /// Total free units across resources.
    #[must_use]
    pub fn free_units(&self) -> u64 {
        self.resources.values().map(|r| u64::from(r.free())).sum()
    }

    /// Load (used/capacity) of a resource.
    #[must_use]
    pub fn load_of(&self, name: &str) -> Option<(u32, u32)> {
        self.resources.get(name).map(|r| (r.used, r.capacity))
    }

    /// The randomized selection: power-of-two-choices among feasible
    /// resources. Returns the chosen resource name.
    fn choose(&self, units: u32, ctx: &mut ExecCtx<'_>) -> Option<String> {
        let feasible: Vec<&String> = self
            .resources
            .iter()
            .filter(|(_, r)| r.free() >= units)
            .map(|(n, _)| n)
            .collect();
        match feasible.len() {
            0 => None,
            1 => Some(feasible[0].clone()),
            n => {
                let a = feasible[ctx.rng.gen_range(0..n)];
                let b = feasible[ctx.rng.gen_range(0..n)];
                let la = self.resources[a].used as f64 / self.resources[a].capacity.max(1) as f64;
                let lb = self.resources[b].used as f64 / self.resources[b].capacity.max(1) as f64;
                Some(if la <= lb { a.clone() } else { b.clone() })
            }
        }
    }

    /// Deterministically apply a placement decision.
    fn place(&mut self, task: u64, units: u32, resource: &str) {
        if let Some(r) = self.resources.get_mut(resource) {
            r.used += units;
            self.allocations.insert(task, (resource.to_owned(), units));
        }
    }

    fn apply_op(&mut self, op: &BrokerOp, decided: Option<&str>) {
        match op {
            BrokerOp::AddResource { name, capacity } => {
                self.resources.entry(name.clone()).or_default().capacity += capacity;
            }
            BrokerOp::Request { task, units } => {
                if let Some(r) = decided {
                    self.place(*task, *units, r);
                }
            }
            BrokerOp::Release { task } => {
                if let Some((name, units)) = self.allocations.remove(task) {
                    if let Some(r) = self.resources.get_mut(&name) {
                        r.used = r.used.saturating_sub(units);
                    }
                }
            }
            BrokerOp::Placement { .. } | BrokerOp::FreeUnits => {}
        }
    }

    fn encode_state(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_u32_le(self.resources.len() as u32);
        for (n, r) in &self.resources {
            put_str(&mut out, n);
            out.put_u32_le(r.capacity);
            out.put_u32_le(r.used);
        }
        out.put_u32_le(self.allocations.len() as u32);
        for (t, (n, u)) in &self.allocations {
            out.put_u64_le(*t);
            put_str(&mut out, n);
            out.put_u32_le(*u);
        }
        out.freeze()
    }

    fn decode_state(mut b: Bytes) -> Option<Broker> {
        let mut s = Broker::new();
        let n = get_u32(&mut b)? as usize;
        for _ in 0..n {
            let name = get_str(&mut b)?;
            let capacity = get_u32(&mut b)?;
            let used = get_u32(&mut b)?;
            s.resources.insert(name, Resource { capacity, used });
        }
        let na = get_u32(&mut b)? as usize;
        for _ in 0..na {
            let t = get_u64(&mut b)?;
            let name = get_str(&mut b)?;
            let u = get_u32(&mut b)?;
            s.allocations.insert(t, (name, u));
        }
        Some(s)
    }
}

/// Reply for a request that could not be satisfied.
const NO_RESOURCE: &[u8] = b"\0NO_RESOURCE";

impl App for Broker {
    fn execute(&mut self, req: &Request, ctx: &mut ExecCtx<'_>) -> (Bytes, StateUpdate) {
        let Some(op) = BrokerOp::decode(req.op.clone()) else {
            return (Bytes::from_static(b"\0BAD_OP"), StateUpdate::None);
        };
        match &op {
            BrokerOp::Placement { task } => (
                self.placement(*task)
                    .map_or(Bytes::from_static(NO_RESOURCE), |r| {
                        Bytes::from(r.to_owned().into_bytes())
                    }),
                StateUpdate::None,
            ),
            BrokerOp::FreeUnits => (
                Bytes::from(self.free_units().to_string().into_bytes()),
                StateUpdate::None,
            ),
            BrokerOp::Request { units, .. } => {
                // The nondeterministic step: a randomized choice the
                // backups could never reproduce on their own.
                match self.choose(*units, ctx) {
                    None => (Bytes::from_static(NO_RESOURCE), StateUpdate::None),
                    Some(chosen) => {
                        self.apply_op(&op, Some(&chosen));
                        // Ship request + choice, not the whole state.
                        let mut aux = BytesMut::new();
                        put_str(&mut aux, &chosen);
                        (
                            Bytes::from(chosen.into_bytes()),
                            StateUpdate::Reproduce(aux.freeze()),
                        )
                    }
                }
            }
            _ => {
                self.apply_op(&op, None);
                // Deterministic writes replicate as themselves: backups
                // re-derive the effect from the request alone.
                (
                    Bytes::from_static(b"ok"),
                    StateUpdate::Reproduce(Bytes::new()),
                )
            }
        }
    }

    fn apply(&mut self, req: &Request, update: &StateUpdate) {
        let Some(op) = BrokerOp::decode(req.op.clone()) else {
            return;
        };
        match update {
            StateUpdate::Reproduce(aux) => {
                let decided = if aux.is_empty() {
                    None
                } else {
                    get_str(&mut aux.clone())
                };
                self.apply_op(&op, decided.as_deref());
            }
            StateUpdate::Full(b) => {
                if let Some(s) = Broker::decode_state(b.clone()) {
                    *self = s;
                }
            }
            StateUpdate::None | StateUpdate::Delta(_) => {}
        }
    }

    fn snapshot(&self) -> Bytes {
        self.encode_state()
    }

    fn restore(&mut self, snap: &[u8]) {
        if let Some(s) = Broker::decode_state(Bytes::copy_from_slice(snap)) {
            *self = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::request::{RequestId, RequestKind};
    use gridpaxos_core::types::{ClientId, Seq, Time};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn req(seq: u64, kind: RequestKind, op: &BrokerOp) -> Request {
        Request::new(RequestId::new(ClientId(1), Seq(seq)), kind, op.encode())
    }

    fn exec_seeded(b: &mut Broker, r: &Request, seed: u64) -> (Bytes, StateUpdate) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        b.execute(r, &mut ctx)
    }

    fn setup() -> Broker {
        let mut b = Broker::new();
        for (i, cap) in [("m1", 4), ("m2", 4), ("m3", 4)] {
            exec_seeded(
                &mut b,
                &req(
                    0,
                    RequestKind::Write,
                    &BrokerOp::AddResource {
                        name: i.into(),
                        capacity: cap,
                    },
                ),
                0,
            );
        }
        b
    }

    #[test]
    fn ops_roundtrip_encoding() {
        for op in [
            BrokerOp::AddResource {
                name: "m".into(),
                capacity: 3,
            },
            BrokerOp::Request { task: 9, units: 2 },
            BrokerOp::Release { task: 9 },
            BrokerOp::Placement { task: 9 },
            BrokerOp::FreeUnits,
        ] {
            assert_eq!(BrokerOp::decode(op.encode()), Some(op));
        }
    }

    #[test]
    fn request_allocates_and_release_frees() {
        let mut b = setup();
        assert_eq!(b.free_units(), 12);
        let r = req(
            1,
            RequestKind::Write,
            &BrokerOp::Request { task: 1, units: 2 },
        );
        let (reply, up) = exec_seeded(&mut b, &r, 7);
        assert!(matches!(up, StateUpdate::Reproduce(_)));
        let chosen = String::from_utf8(reply.to_vec()).unwrap();
        assert_eq!(b.placement(1), Some(chosen.as_str()));
        assert_eq!(b.free_units(), 10);

        exec_seeded(
            &mut b,
            &req(2, RequestKind::Write, &BrokerOp::Release { task: 1 }),
            7,
        );
        assert_eq!(b.free_units(), 12);
        assert_eq!(b.placement(1), None);
    }

    #[test]
    fn replicas_with_different_seeds_diverge_without_reproduce() {
        // The motivation for the whole paper: independent execution of the
        // same requests yields different states.
        let mut diverged = false;
        for task in 0..20u64 {
            let mut a = setup();
            let mut b = setup();
            let r = req(1, RequestKind::Write, &BrokerOp::Request { task, units: 1 });
            exec_seeded(&mut a, &r, 1000 + task);
            exec_seeded(&mut b, &r, 2000 + task);
            if a.placement(task) != b.placement(task) {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "randomized selection never diverged across seeds");
    }

    #[test]
    fn reproduce_update_converges_backups() {
        let mut leader = setup();
        let mut backup = setup();
        for task in 0..8u64 {
            let r = req(
                task + 1,
                RequestKind::Write,
                &BrokerOp::Request { task, units: 1 },
            );
            let (_, up) = exec_seeded(&mut leader, &r, 0xfeed + task);
            backup.apply(&r, &up);
        }
        assert_eq!(backup, leader, "Reproduce updates must converge replicas");
    }

    #[test]
    fn infeasible_request_is_refused() {
        let mut b = setup();
        let r = req(
            1,
            RequestKind::Write,
            &BrokerOp::Request { task: 1, units: 99 },
        );
        let (reply, up) = exec_seeded(&mut b, &r, 1);
        assert_eq!(reply.as_ref(), NO_RESOURCE);
        assert!(up.is_none());
        assert_eq!(b.free_units(), 12);
    }

    #[test]
    fn two_choices_balances_load() {
        let mut b = Broker::new();
        exec_seeded(
            &mut b,
            &req(
                0,
                RequestKind::Write,
                &BrokerOp::AddResource {
                    name: "a".into(),
                    capacity: 100,
                },
            ),
            0,
        );
        exec_seeded(
            &mut b,
            &req(
                0,
                RequestKind::Write,
                &BrokerOp::AddResource {
                    name: "b".into(),
                    capacity: 100,
                },
            ),
            0,
        );
        let mut rng = SmallRng::seed_from_u64(5);
        for task in 0..100u64 {
            let r = req(
                task,
                RequestKind::Write,
                &BrokerOp::Request { task, units: 1 },
            );
            let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
            b.execute(&r, &mut ctx);
        }
        let (ua, _) = b.load_of("a").unwrap();
        let (ub, _) = b.load_of("b").unwrap();
        assert_eq!(ua + ub, 100);
        // Power-of-two-choices keeps the split near even.
        assert!((40..=60).contains(&ua), "a={ua} b={ub}");
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut b = setup();
        exec_seeded(
            &mut b,
            &req(
                1,
                RequestKind::Write,
                &BrokerOp::Request { task: 5, units: 3 },
            ),
            11,
        );
        let snap = b.snapshot();
        let mut restored = Broker::new();
        restored.restore(&snap);
        assert_eq!(restored, b);
    }

    #[test]
    fn reads_do_not_change_state() {
        let mut b = setup();
        let before = b.clone();
        let (_, up) = exec_seeded(&mut b, &req(1, RequestKind::Read, &BrokerOp::FreeUnits), 1);
        assert!(up.is_none());
        let (_, up) = exec_seeded(
            &mut b,
            &req(2, RequestKind::Read, &BrokerOp::Placement { task: 77 }),
            1,
        );
        assert!(up.is_none());
        assert_eq!(b, before);
    }
}
