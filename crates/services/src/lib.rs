//! # gridpaxos-services
//!
//! The nondeterministic grid services the paper motivates (§2), built on
//! the `gridpaxos-core` [`gridpaxos_core::service::App`] interface:
//!
//! * [`broker::Broker`] — a grid resource broker using a randomized
//!   (power-of-two-choices) selection algorithm; replication ships the
//!   random choice as a [`gridpaxos_core::command::StateUpdate::Reproduce`]
//!   record.
//! * [`scheduler::Scheduler`] — a grid scheduling service (the NILE Global
//!   Planner example) whose FCFS-with-priorities decisions depend on when
//!   the executing machine examines the queue; replication ships the
//!   decision as a delta.
//! * [`kvstore::KvStore`] — a transactional key-value store exercising
//!   both transaction modes (per-operation coordination and T-Paxos),
//!   with write locks and staged effects.
//!
//! The no-op service used by the paper's measurements lives in the core
//! crate ([`gridpaxos_core::service::NoopApp`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod broker;
pub mod codec;
pub mod kvstore;
pub mod payload;
pub mod scheduler;

pub use broker::{Broker, BrokerOp};
pub use kvstore::{shard_router, KvOp, KvStore, CROSS_SHARD};
pub use payload::{ShipMode, SizedApp};
pub use scheduler::{SchedOp, Scheduler};
