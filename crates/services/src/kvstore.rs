//! A transactional key-value store.
//!
//! The service behind the T-Paxos evaluation scenarios: it supports plain
//! reads/writes, *and* transactions with write-locking and staged effects,
//! in both coordination modes:
//!
//! * **durable staging** (per-operation coordination): staged writes and
//!   locks are part of replicated state — they ride each op's decree, are
//!   included in snapshots and survive leader switches;
//! * **volatile staging** (T-Paxos): staged writes live only on the
//!   current leader; the commit decree carries the full write batch so
//!   backups can apply it in one step. Volatile staging is excluded from
//!   snapshots and cleared by `restore`, matching the
//!   [`gridpaxos_core::service::App`] contract.
//!
//! Conflicting transactions (a write lock held by another transaction) are
//! refused with [`AbortReason::Conflict`] — "any service that supports
//! transactions needs to deal with concurrency of this type using locks or
//! other mechanisms" (§3.5).

use crate::codec::{get_i64, get_str, get_u32, get_u64, get_u8, put_str};
use bytes::{BufMut, Bytes, BytesMut};
use gridpaxos_core::client::ShardRouter;
use gridpaxos_core::command::StateUpdate;
use gridpaxos_core::request::{AbortReason, Request, TxnCtl};
use gridpaxos_core::service::{App, ExecCtx};
use gridpaxos_core::types::TxnId;
use std::collections::BTreeMap;

/// A client-visible operation on the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key. `kind` must be `Read`.
    Get(String),
    /// Write a key.
    Put(String, String),
    /// Delete a key.
    Del(String),
    /// Add `delta` to the integer value of a key (missing = 0).
    Add(String, i64),
    /// Read all keys with the given prefix. `kind` must be `Read`.
    /// Cross-key: refused on sharded stores (see [`CROSS_SHARD`]).
    Scan(String),
}

impl KvOp {
    /// Encode to an opaque request payload.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        match self {
            KvOp::Get(k) => {
                out.put_u8(0);
                put_str(&mut out, k);
            }
            KvOp::Put(k, v) => {
                out.put_u8(1);
                put_str(&mut out, k);
                put_str(&mut out, v);
            }
            KvOp::Del(k) => {
                out.put_u8(2);
                put_str(&mut out, k);
            }
            KvOp::Add(k, d) => {
                out.put_u8(3);
                put_str(&mut out, k);
                out.put_i64_le(*d);
            }
            KvOp::Scan(p) => {
                out.put_u8(4);
                put_str(&mut out, p);
            }
        }
        out.freeze()
    }

    /// Decode a request payload.
    #[must_use]
    pub fn decode(mut b: Bytes) -> Option<KvOp> {
        match get_u8(&mut b)? {
            0 => Some(KvOp::Get(get_str(&mut b)?)),
            1 => Some(KvOp::Put(get_str(&mut b)?, get_str(&mut b)?)),
            2 => Some(KvOp::Del(get_str(&mut b)?)),
            3 => Some(KvOp::Add(get_str(&mut b)?, get_i64(&mut b)?)),
            4 => Some(KvOp::Scan(get_str(&mut b)?)),
            _ => None,
        }
    }

    /// The shard key of this op: an FNV-1a hash of the target key, so all
    /// ops on one key land in one consensus group. `Scan` is cross-key and
    /// has no shard key.
    #[must_use]
    pub fn shard_key(&self) -> Option<u64> {
        match self {
            KvOp::Scan(_) => None,
            single => Some(fnv1a(single.key().as_bytes())),
        }
    }

    fn key(&self) -> &str {
        match self {
            KvOp::Get(k) | KvOp::Put(k, _) | KvOp::Del(k) | KvOp::Add(k, _) | KvOp::Scan(k) => k,
        }
    }

    fn is_write(&self) -> bool {
        !matches!(self, KvOp::Get(_) | KvOp::Scan(_))
    }
}

/// FNV-1a — stable across processes (unlike `std`'s `DefaultHasher`), so
/// clients and replicas agree on shard placement.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Client-side routing function for sharded deployments: decodes the op
/// and hashes its key exactly as [`KvStore`]'s [`App::shard_key`] does.
#[must_use]
pub fn shard_router() -> ShardRouter {
    ShardRouter::new(|req| KvOp::decode(req.op.clone()).and_then(|op| op.shard_key()))
}

/// One staged or committed mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
enum KvWrite {
    Put(String, String),
    Del(String),
}

impl KvWrite {
    fn encode_into(&self, out: &mut BytesMut) {
        match self {
            KvWrite::Put(k, v) => {
                out.put_u8(0);
                put_str(out, k);
                put_str(out, v);
            }
            KvWrite::Del(k) => {
                out.put_u8(1);
                put_str(out, k);
            }
        }
    }

    fn decode(b: &mut Bytes) -> Option<KvWrite> {
        match get_u8(b)? {
            0 => Some(KvWrite::Put(get_str(b)?, get_str(b)?)),
            1 => Some(KvWrite::Del(get_str(b)?)),
            _ => None,
        }
    }

    fn key(&self) -> &str {
        match self {
            KvWrite::Put(k, _) | KvWrite::Del(k) => k,
        }
    }
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Staging {
    /// Staged writes per transaction, in execution order.
    writes: BTreeMap<u64, Vec<KvWrite>>,
    /// Write locks: key → owning transaction.
    locks: BTreeMap<String, u64>,
}

impl Staging {
    fn lock_conflicts(&self, key: &str, txn: u64) -> bool {
        self.locks.get(key).is_some_and(|owner| *owner != txn)
    }

    fn stage(&mut self, txn: u64, w: KvWrite) {
        self.locks.insert(w.key().to_owned(), txn);
        self.writes.entry(txn).or_default().push(w);
    }

    fn discard(&mut self, txn: u64) {
        self.writes.remove(&txn);
        self.locks.retain(|_, owner| *owner != txn);
    }

    fn take(&mut self, txn: u64) -> Vec<KvWrite> {
        let ws = self.writes.remove(&txn).unwrap_or_default();
        self.locks.retain(|_, owner| *owner != txn);
        ws
    }

    fn staged_value<'a>(&'a self, txn: u64, key: &str) -> Option<Option<&'a str>> {
        // Last staged write for the key within the transaction wins.
        let ws = self.writes.get(&txn)?;
        ws.iter().rev().find(|w| w.key() == key).map(|w| match w {
            KvWrite::Put(_, v) => Some(v.as_str()),
            KvWrite::Del(_) => None,
        })
    }
}

/// Replicated state-update payloads.
enum KvDelta {
    /// Apply writes to committed state (plain writes, T-Paxos commits).
    ApplyWrites(Vec<KvWrite>),
    /// Record a durable staged write (per-op coordinated transactions).
    Stage(u64, KvWrite),
    /// Merge a transaction's durable staging into committed state.
    CommitTxn(u64),
    /// Discard a transaction's durable staging.
    AbortTxn(u64),
}

impl KvDelta {
    fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        match self {
            KvDelta::ApplyWrites(ws) => {
                out.put_u8(0);
                out.put_u32_le(ws.len() as u32);
                for w in ws {
                    w.encode_into(&mut out);
                }
            }
            KvDelta::Stage(txn, w) => {
                out.put_u8(1);
                out.put_u64_le(*txn);
                w.encode_into(&mut out);
            }
            KvDelta::CommitTxn(txn) => {
                out.put_u8(2);
                out.put_u64_le(*txn);
            }
            KvDelta::AbortTxn(txn) => {
                out.put_u8(3);
                out.put_u64_le(*txn);
            }
        }
        out.freeze()
    }

    fn decode(mut b: Bytes) -> Option<KvDelta> {
        match get_u8(&mut b)? {
            0 => {
                let n = get_u32(&mut b)? as usize;
                let mut ws = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ws.push(KvWrite::decode(&mut b)?);
                }
                Some(KvDelta::ApplyWrites(ws))
            }
            1 => Some(KvDelta::Stage(get_u64(&mut b)?, KvWrite::decode(&mut b)?)),
            2 => Some(KvDelta::CommitTxn(get_u64(&mut b)?)),
            3 => Some(KvDelta::AbortTxn(get_u64(&mut b)?)),
            _ => None,
        }
    }
}

/// Encoded size of one committed entry (`put_str` key + `put_str` value).
fn entry_enc_len(k: &str, v: &str) -> usize {
    8 + k.len() + v.len()
}

/// Encoded size of one [`KvWrite`].
fn kvwrite_enc_len(w: &KvWrite) -> usize {
    match w {
        KvWrite::Put(k, v) => 9 + k.len() + v.len(),
        KvWrite::Del(k) => 5 + k.len(),
    }
}

/// Exact encoded size of the durable-staging section of
/// [`KvStore::encode_state`]. Durable staging is bounded by open
/// transactions, so this walk is cheap.
fn durable_enc_len(s: &Staging) -> usize {
    let mut n = 8; // the two u32 section counts
    for ws in s.writes.values() {
        n += 12; // txn id + per-txn write count
        n += ws.iter().map(kvwrite_enc_len).sum::<usize>();
    }
    for k in s.locks.keys() {
        n += 12 + k.len(); // key + owner
    }
    n
}

/// Serialize the durable-staging section (everything in
/// [`KvStore::encode_state`] after the committed entries).
fn encode_durable(s: &Staging, out: &mut BytesMut) {
    out.put_u32_le(s.writes.len() as u32);
    for (txn, ws) in &s.writes {
        out.put_u64_le(*txn);
        out.put_u32_le(ws.len() as u32);
        for w in ws {
            w.encode_into(out);
        }
    }
    out.put_u32_le(s.locks.len() as u32);
    for (k, t) in &s.locks {
        put_str(out, k);
        out.put_u64_le(*t);
    }
}

/// Outcome of one [`serialize_frozen_after`] call.
enum FrozenScan {
    /// Budget reached; resume strictly after this key.
    More(String),
    /// The frozen image is fully serialized.
    Exhausted,
}

/// Serialize entries of the *frozen* committed image strictly after
/// `after` (in key order) into `out`, until `out.len()` reaches `budget`
/// or the image runs out. The image is the live map overlaid with the
/// freeze-time pre-images in `undo` (`Some(v)` = held `v` at freeze,
/// `None` = did not exist).
///
/// One call serializes a whole chunk: a single O(log n) range seek plus a
/// linear merge that writes borrowed strings straight into `out`. A
/// per-entry variant (re-seeking and cloning key + value for every entry)
/// made chunk cost grow with state size through allocator churn, which is
/// exactly what incremental checkpoints exist to avoid.
fn serialize_frozen_after(
    committed: &BTreeMap<String, String>,
    undo: &BTreeMap<String, Option<String>>,
    after: Option<&str>,
    budget: usize,
    out: &mut BytesMut,
) -> FrozenScan {
    use std::ops::Bound;
    let bounds: (Bound<&str>, Bound<&str>) = match after {
        Some(k) => (Bound::Excluded(k), Bound::Unbounded),
        None => (Bound::Unbounded, Bound::Unbounded),
    };
    let mut live = committed.range::<str, _>(bounds).peekable();
    let mut pre = undo.range::<str, _>(bounds).peekable();
    let mut cursor: Option<&str> = None;
    while out.len() < budget {
        let entry: Option<(&str, &str)> = loop {
            match (live.peek(), pre.peek()) {
                (None, None) => break None,
                (Some(&(k, v)), None) => {
                    live.next();
                    break Some((k.as_str(), v.as_str()));
                }
                (None, Some(&(k, img))) => {
                    pre.next();
                    if let Some(v) = img {
                        break Some((k.as_str(), v.as_str()));
                    }
                    // Inserted after the freeze: not part of the image.
                }
                (Some(&(lk, lv)), Some(&(pk, img))) => {
                    if pk <= lk {
                        if pk == lk {
                            live.next(); // the pre-image shadows the live value
                        }
                        pre.next();
                        if let Some(v) = img {
                            break Some((pk.as_str(), v.as_str()));
                        }
                    } else {
                        live.next();
                        break Some((lk.as_str(), lv.as_str()));
                    }
                }
            }
        };
        match entry {
            Some((k, v)) => {
                put_str(out, k);
                put_str(out, v);
                cursor = Some(k);
            }
            None => return FrozenScan::Exhausted,
        }
    }
    match cursor {
        Some(k) => FrozenScan::More(k.to_owned()),
        // Budget was already covered on entry: resume where we started.
        None => match after {
            Some(k) => FrozenScan::More(k.to_owned()),
            None => FrozenScan::Exhausted,
        },
    }
}

/// Freeze-time state of an in-progress chunked snapshot
/// ([`App::snapshot_begin`]): an undo overlay plus a lazy serialization
/// cursor. Chunk `k` is bytes `[k·target, (k+1)·target)` of the canonical
/// encoding — entries may span chunk boundaries, which is what makes the
/// chunk count computable in O(1) at freeze.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Frozen {
    /// Pre-images of committed keys mutated since the freeze (first touch
    /// wins). `None` = the key did not exist at freeze.
    undo: BTreeMap<String, Option<String>>,
    /// Durable-staging section, serialized eagerly at freeze (small).
    tail: Bytes,
    /// Whether `tail` has been appended to `pending` yet.
    tail_done: bool,
    /// Target chunk size in bytes.
    chunk_bytes: usize,
    /// Total chunks promised by `snapshot_begin`.
    total: usize,
    /// Chunks emitted so far (the next expected index).
    emitted: usize,
    /// Last committed key serialized (resume point for the range scan).
    cursor: Option<String>,
    /// Serialized-but-not-yet-emitted bytes.
    pending: BytesMut,
}

/// Undo overlay for a tentative leader-side execution
/// ([`App::tentative_begin`]): rollback restores committed entries from
/// pre-images and durable staging from a clone, and clears volatile
/// staging — byte-for-byte what `restore(pre-exec snapshot)` used to do,
/// at O(writes) instead of O(state).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Tentative {
    /// Pre-images of committed keys mutated since `tentative_begin`
    /// (first touch wins). `None` = the key did not exist.
    undo: BTreeMap<String, Option<String>>,
    /// Durable staging as of `tentative_begin`.
    durable: Staging,
}

/// The store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvStore {
    committed: BTreeMap<String, String>,
    /// Exact encoded size of the committed entries (excluding the u32
    /// count header), maintained incrementally on every mutation. Lets
    /// `encode_state` reserve once and `snapshot_begin` price the whole
    /// snapshot in O(1).
    committed_enc_bytes: usize,
    /// Replicated staging (per-op coordinated transactions).
    durable: Staging,
    /// Leader-local staging (T-Paxos). Never snapshotted.
    volatile: Staging,
    /// Whether this store is one shard of a multi-group deployment.
    /// Deployment configuration, not replicated state: never snapshotted,
    /// preserved across restore.
    sharded: bool,
    /// In-progress chunked snapshot, if any.
    frozen: Option<Frozen>,
    /// In-progress tentative execution, if any.
    tentative: Option<Tentative>,
}

/// Reply payload for a missing key.
const NOT_FOUND: &[u8] = b"\0NOT_FOUND";

/// Reply payload refusing a cross-key op on a sharded store. A `Scan`
/// would need a consistent view across consensus groups, which multi-group
/// sharding deliberately does not provide.
pub const CROSS_SHARD: &[u8] = b"\0CROSS_SHARD";

impl KvStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> KvStore {
        KvStore::default()
    }

    /// Empty store acting as one shard of a multi-group deployment:
    /// [`App::shard_key`] reports per-key placement and cross-key ops
    /// (`Scan`) are refused with [`CROSS_SHARD`].
    #[must_use]
    pub fn sharded() -> KvStore {
        KvStore {
            sharded: true,
            ..KvStore::default()
        }
    }

    /// Committed value of `key` (tests / examples).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.committed.get(key).map(String::as_str)
    }

    /// Number of committed keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// Whether the committed map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Decode a reply payload produced by this service.
    #[must_use]
    pub fn decode_reply(payload: &Bytes) -> Option<String> {
        if payload.as_ref() == NOT_FOUND {
            None
        } else {
            String::from_utf8(payload.to_vec()).ok()
        }
    }

    /// Record the pre-image of `key` in both active overlays (first touch
    /// wins). Every committed-map mutation funnels through here before
    /// touching the map, so frozen snapshots and tentative rollbacks see
    /// consistent images.
    fn record_undo(&mut self, key: &str) {
        if let Some(fz) = &mut self.frozen {
            if !fz.undo.contains_key(key) {
                fz.undo
                    .insert(key.to_owned(), self.committed.get(key).cloned());
            }
        }
        if let Some(tn) = &mut self.tentative {
            if !tn.undo.contains_key(key) {
                tn.undo
                    .insert(key.to_owned(), self.committed.get(key).cloned());
            }
        }
    }

    /// Set or remove a committed entry, maintaining the incremental
    /// encoded-size counter. Does *not* record undo (rollback uses it to
    /// restore pre-images directly).
    fn set_committed(&mut self, k: &str, v: Option<String>) {
        match v {
            Some(v) => {
                self.committed_enc_bytes += entry_enc_len(k, &v);
                if let Some(old) = self.committed.insert(k.to_owned(), v) {
                    self.committed_enc_bytes -= entry_enc_len(k, &old);
                }
            }
            None => {
                if let Some(old) = self.committed.remove(k) {
                    self.committed_enc_bytes -= entry_enc_len(k, &old);
                }
            }
        }
    }

    fn apply_write(&mut self, w: &KvWrite) {
        self.record_undo(w.key());
        match w {
            KvWrite::Put(k, v) => self.set_committed(k, Some(v.clone())),
            KvWrite::Del(k) => self.set_committed(k, None),
        }
    }

    fn read_through(&self, txn: Option<u64>, key: &str) -> Option<String> {
        if let Some(t) = txn {
            for staging in [&self.volatile, &self.durable] {
                if let Some(v) = staging.staged_value(t, key) {
                    return v.map(str::to_owned);
                }
            }
        }
        self.committed.get(key).cloned()
    }

    fn reply_for(value: Option<String>) -> Bytes {
        match value {
            Some(v) => Bytes::from(v.into_bytes()),
            None => Bytes::from_static(NOT_FOUND),
        }
    }

    /// Prefix scan over committed state (staged transaction writes are not
    /// visible to scans), `key=value` per line. Sharded stores refuse: the
    /// matching keys are spread across groups with no consistent cut.
    fn scan_reply(&self, prefix: &str) -> Bytes {
        if self.sharded {
            return Bytes::from_static(CROSS_SHARD);
        }
        let mut out = String::new();
        for (k, v) in self.committed.range(prefix.to_owned()..) {
            if !k.starts_with(prefix) {
                break;
            }
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        Bytes::from(out.into_bytes())
    }

    /// Resolve an op to the write it implies, reading through staged state
    /// (needed by `Add`).
    fn write_of(&self, txn: Option<u64>, op: &KvOp) -> Option<(KvWrite, Bytes)> {
        match op {
            KvOp::Get(_) | KvOp::Scan(_) => None,
            KvOp::Put(k, v) => Some((
                KvWrite::Put(k.clone(), v.clone()),
                Bytes::from(v.clone().into_bytes()),
            )),
            KvOp::Del(k) => Some((KvWrite::Del(k.clone()), Bytes::new())),
            KvOp::Add(k, d) => {
                let cur: i64 = self
                    .read_through(txn, k)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                let new = cur + d;
                Some((
                    KvWrite::Put(k.clone(), new.to_string()),
                    Bytes::from(new.to_string().into_bytes()),
                ))
            }
        }
    }

    /// Exact encoded size of [`KvStore::encode_state`]'s output, in O(1)
    /// for the committed section (the incremental counter) plus a walk of
    /// the small durable-staging section.
    fn encoded_state_len(&self) -> usize {
        4 + self.committed_enc_bytes + durable_enc_len(&self.durable)
    }

    fn encode_state(&self) -> Bytes {
        // One exact reservation: the committed section is priced by the
        // incrementally-maintained counter, so serialization never
        // reallocates (the old code grew the buffer O(log n) times, each
        // a full copy of the state).
        let mut out = BytesMut::with_capacity(self.encoded_state_len());
        out.put_u32_le(self.committed.len() as u32);
        for (k, v) in &self.committed {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        encode_durable(&self.durable, &mut out);
        debug_assert_eq!(out.len(), self.encoded_state_len());
        out.freeze()
    }

    fn decode_state(mut b: Bytes) -> Option<KvStore> {
        let mut s = KvStore::new();
        let n = get_u32(&mut b)? as usize;
        for _ in 0..n {
            let k = get_str(&mut b)?;
            let v = get_str(&mut b)?;
            s.committed_enc_bytes += entry_enc_len(&k, &v);
            s.committed.insert(k, v);
        }
        let nt = get_u32(&mut b)? as usize;
        for _ in 0..nt {
            let txn = get_u64(&mut b)?;
            let nw = get_u32(&mut b)? as usize;
            let mut ws = Vec::with_capacity(nw.min(1024));
            for _ in 0..nw {
                ws.push(KvWrite::decode(&mut b)?);
            }
            s.durable.writes.insert(txn, ws);
        }
        let nl = get_u32(&mut b)? as usize;
        for _ in 0..nl {
            let k = get_str(&mut b)?;
            let t = get_u64(&mut b)?;
            s.durable.locks.insert(k, t);
        }
        Some(s)
    }
}

impl App for KvStore {
    fn execute(&mut self, req: &Request, _ctx: &mut ExecCtx<'_>) -> (Bytes, StateUpdate) {
        let Some(op) = KvOp::decode(req.op.clone()) else {
            return (Bytes::from_static(b"\0BAD_OP"), StateUpdate::None);
        };
        match op {
            KvOp::Get(k) => (
                Self::reply_for(self.read_through(None, &k)),
                StateUpdate::None,
            ),
            KvOp::Scan(p) => (self.scan_reply(&p), StateUpdate::None),
            other => {
                // A non-transactional write still respects transaction
                // locks: refuse to clobber a key a transaction holds.
                if self.durable.lock_conflicts(other.key(), u64::MAX)
                    || self.volatile.lock_conflicts(other.key(), u64::MAX)
                {
                    return (Bytes::from_static(b"\0LOCKED"), StateUpdate::None);
                }
                let (w, reply) = self.write_of(None, &other).expect("write op");
                self.apply_write(&w);
                (
                    reply,
                    StateUpdate::Delta(KvDelta::ApplyWrites(vec![w]).encode()),
                )
            }
        }
    }

    fn apply(&mut self, req: &Request, update: &StateUpdate) {
        match update {
            StateUpdate::None => {
                // A coordinated abort ships no payload; the transaction
                // control on the request tells us what to discard.
                if let Some(TxnCtl::Abort { txn }) = req.txn {
                    self.durable.discard(txn.0);
                }
            }
            StateUpdate::Full(b) => {
                if let Some(mut s) = KvStore::decode_state(b.clone()) {
                    s.sharded = self.sharded; // deployment config, not state
                    *self = s;
                }
            }
            StateUpdate::Delta(b) => match KvDelta::decode(b.clone()) {
                Some(KvDelta::ApplyWrites(ws)) => {
                    for w in &ws {
                        self.apply_write(w);
                    }
                }
                Some(KvDelta::Stage(txn, w)) => self.durable.stage(txn, w),
                Some(KvDelta::CommitTxn(txn)) => {
                    for w in self.durable.take(txn) {
                        self.apply_write(&w);
                    }
                }
                Some(KvDelta::AbortTxn(txn)) => self.durable.discard(txn),
                None => {}
            },
            StateUpdate::Reproduce(_) => {
                // The KV store never emits Reproduce updates.
            }
        }
    }

    fn snapshot(&self) -> Bytes {
        // Volatile staging deliberately excluded (leader-local only).
        self.encode_state()
    }

    fn restore(&mut self, snap: &[u8]) {
        if let Some(mut s) = KvStore::decode_state(Bytes::copy_from_slice(snap)) {
            s.sharded = self.sharded; // deployment config, not state
            *self = s; // volatile staging cleared by construction
        }
    }

    fn shard_key(&self, req: &Request) -> Option<u64> {
        if !self.sharded {
            return None;
        }
        KvOp::decode(req.op.clone()).and_then(|op| op.shard_key())
    }

    fn txn_begin(&mut self, _txn: TxnId) {}

    fn txn_execute(
        &mut self,
        txn: TxnId,
        req: &Request,
        durable: bool,
        _ctx: &mut ExecCtx<'_>,
    ) -> Result<(Bytes, StateUpdate), AbortReason> {
        let Some(op) = KvOp::decode(req.op.clone()) else {
            return Err(AbortReason::Conflict);
        };
        let t = txn.0;
        // Write locks: conflict with any other transaction in either
        // staging area aborts this operation.
        if op.is_write()
            && (self.durable.lock_conflicts(op.key(), t)
                || self.volatile.lock_conflicts(op.key(), t))
        {
            return Err(AbortReason::Conflict);
        }
        match op {
            KvOp::Get(k) => Ok((
                Self::reply_for(self.read_through(Some(t), &k)),
                StateUpdate::None,
            )),
            KvOp::Scan(p) => Ok((self.scan_reply(&p), StateUpdate::None)),
            other => {
                let (w, reply) = self.write_of(Some(t), &other).expect("write op");
                let staging = if durable {
                    &mut self.durable
                } else {
                    &mut self.volatile
                };
                staging.stage(t, w.clone());
                let update = if durable {
                    StateUpdate::Delta(KvDelta::Stage(t, w).encode())
                } else {
                    StateUpdate::None // volatile staging is not replicated
                };
                Ok((reply, update))
            }
        }
    }

    fn txn_commit(&mut self, txn: TxnId) -> StateUpdate {
        let t = txn.0;
        if self.volatile.writes.contains_key(&t) {
            // T-Paxos: ship the whole batch; backups have no staging.
            let ws = self.volatile.take(t);
            for w in &ws {
                self.apply_write(w);
            }
            StateUpdate::Delta(KvDelta::ApplyWrites(ws).encode())
        } else if self.durable.writes.contains_key(&t) {
            // Per-op coordination: backups hold identical staging; a
            // commit marker suffices.
            for w in self.durable.take(t) {
                self.apply_write(&w);
            }
            StateUpdate::Delta(KvDelta::CommitTxn(t).encode())
        } else {
            StateUpdate::None // empty transaction
        }
    }

    fn txn_abort(&mut self, txn: TxnId) {
        self.volatile.discard(txn.0);
        self.durable.discard(txn.0);
    }

    fn apply_txn_commit(&mut self, _txn: TxnId, _ops: &[Request], update: &StateUpdate) {
        if let StateUpdate::Delta(b) = update {
            if let Some(KvDelta::ApplyWrites(ws)) = KvDelta::decode(b.clone()) {
                for w in &ws {
                    self.apply_write(w);
                }
            }
        }
    }

    // ---- tentative execution (undo log; replaces pre-exec snapshots) ----

    fn tentative_begin(&mut self) -> bool {
        debug_assert!(self.tentative.is_none(), "tentative windows never nest");
        self.tentative = Some(Tentative {
            undo: BTreeMap::new(),
            durable: self.durable.clone(),
        });
        true
    }

    fn tentative_rollback(&mut self) {
        let Some(tn) = self.tentative.take() else {
            return;
        };
        // Mirror `restore(pre-exec snapshot)` exactly: committed entries
        // back to their pre-images, durable staging back to its clone,
        // volatile staging cleared.
        for (k, img) in tn.undo {
            self.set_committed(&k, img);
        }
        self.durable = tn.durable;
        self.volatile = Staging::default();
    }

    fn tentative_commit(&mut self) {
        self.tentative = None;
    }

    // ---- chunked snapshots (incremental checkpoints) --------------------

    fn snapshot_begin(&mut self, chunk_bytes: usize) -> usize {
        debug_assert!(self.frozen.is_none(), "snapshots never nest");
        let chunk_bytes = chunk_bytes.max(1);
        let mut tail = BytesMut::with_capacity(durable_enc_len(&self.durable));
        encode_durable(&self.durable, &mut tail);
        let total_bytes = 4 + self.committed_enc_bytes + tail.len();
        let total = total_bytes.div_ceil(chunk_bytes).max(1);
        let mut pending = BytesMut::with_capacity(chunk_bytes.min(total_bytes) + 64);
        pending.put_u32_le(self.committed.len() as u32);
        self.frozen = Some(Frozen {
            undo: BTreeMap::new(),
            tail: tail.freeze(),
            tail_done: false,
            chunk_bytes,
            total,
            emitted: 0,
            cursor: None,
            pending,
        });
        total
    }

    fn snapshot_chunk(&mut self, idx: usize) -> Bytes {
        let Some(mut fz) = self.frozen.take() else {
            debug_assert!(false, "snapshot_chunk outside a snapshot window");
            return self.snapshot();
        };
        debug_assert_eq!(idx, fz.emitted, "chunks are emitted in order");
        let last = idx + 1 >= fz.total;
        // Serialize frozen entries until this chunk's byte budget is
        // covered (the last chunk drains everything). Once the tail went
        // in, the image is fully serialized — the stale resume cursor
        // must not restart the entry scan.
        if !fz.tail_done && (last || fz.pending.len() < fz.chunk_bytes) {
            let budget = if last { usize::MAX } else { fz.chunk_bytes };
            match serialize_frozen_after(
                &self.committed,
                &fz.undo,
                fz.cursor.as_deref(),
                budget,
                &mut fz.pending,
            ) {
                FrozenScan::More(k) => fz.cursor = Some(k),
                FrozenScan::Exhausted => {
                    if !fz.tail_done {
                        fz.tail_done = true;
                        fz.pending.extend_from_slice(&fz.tail);
                    }
                }
            }
        }
        let take = if last {
            fz.pending.len()
        } else {
            // Non-last chunks are always full: the freeze-time byte count
            // priced every chunk before the last at exactly `chunk_bytes`.
            debug_assert!(fz.pending.len() >= fz.chunk_bytes);
            fz.chunk_bytes.min(fz.pending.len())
        };
        let out = fz.pending.split_to(take).freeze();
        fz.emitted += 1;
        self.frozen = Some(fz);
        out
    }

    fn snapshot_end(&mut self) {
        self.frozen = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::request::{RequestId, RequestKind};
    use gridpaxos_core::types::{ClientId, Seq, Time};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn req(seq: u64, kind: RequestKind, op: &KvOp) -> Request {
        Request::new(RequestId::new(ClientId(1), Seq(seq)), kind, op.encode())
    }

    fn txn_req(seq: u64, kind: RequestKind, txn: TxnId, op: &KvOp) -> Request {
        Request::txn_op(
            RequestId::new(ClientId(1), Seq(seq)),
            kind,
            txn,
            op.encode(),
        )
    }

    fn exec(store: &mut KvStore, r: &Request) -> (Bytes, StateUpdate) {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        store.execute(r, &mut ctx)
    }

    #[test]
    fn ops_roundtrip_their_encoding() {
        for op in [
            KvOp::Get("k".into()),
            KvOp::Put("k".into(), "v".into()),
            KvOp::Del("k".into()),
            KvOp::Add("k".into(), -7),
            KvOp::Scan("k".into()),
        ] {
            assert_eq!(KvOp::decode(op.encode()), Some(op));
        }
        assert_eq!(KvOp::decode(Bytes::from_static(&[9])), None);
    }

    #[test]
    fn put_get_del_roundtrip_with_backup_convergence() {
        let mut leader = KvStore::new();
        let mut backup = KvStore::new();

        let put = req(1, RequestKind::Write, &KvOp::Put("a".into(), "1".into()));
        let (_, up) = exec(&mut leader, &put);
        backup.apply(&put, &up);
        assert_eq!(leader.get("a"), Some("1"));
        assert_eq!(backup, leader);

        let get = req(2, RequestKind::Read, &KvOp::Get("a".into()));
        let (reply, up) = exec(&mut leader, &get);
        assert!(up.is_none());
        assert_eq!(KvStore::decode_reply(&reply), Some("1".into()));

        let del = req(3, RequestKind::Write, &KvOp::Del("a".into()));
        let (_, up) = exec(&mut leader, &del);
        backup.apply(&del, &up);
        assert_eq!(leader.get("a"), None);
        assert_eq!(backup, leader);
    }

    #[test]
    fn add_reads_through_and_increments() {
        let mut s = KvStore::new();
        let (r1, _) = exec(
            &mut s,
            &req(1, RequestKind::Write, &KvOp::Add("n".into(), 5)),
        );
        assert_eq!(KvStore::decode_reply(&r1), Some("5".into()));
        let (r2, _) = exec(
            &mut s,
            &req(2, RequestKind::Write, &KvOp::Add("n".into(), -2)),
        );
        assert_eq!(KvStore::decode_reply(&r2), Some("3".into()));
        assert_eq!(s.get("n"), Some("3"));
    }

    #[test]
    fn missing_key_reply_decodes_to_none() {
        let mut s = KvStore::new();
        let (reply, _) = exec(
            &mut s,
            &req(1, RequestKind::Read, &KvOp::Get("nope".into())),
        );
        assert_eq!(KvStore::decode_reply(&reply), None);
    }

    #[test]
    fn volatile_txn_commit_ships_full_batch() {
        let mut leader = KvStore::new();
        let mut backup = KvStore::new();
        let t = TxnId(1);
        let mut rng = SmallRng::seed_from_u64(1);

        leader.txn_begin(t);
        for (i, op) in [KvOp::Put("x".into(), "1".into()), KvOp::Add("x".into(), 2)]
            .iter()
            .enumerate()
        {
            let r = txn_req(i as u64 + 1, RequestKind::Write, t, op);
            let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
            let (_, up) = leader.txn_execute(t, &r, false, &mut ctx).unwrap();
            assert!(up.is_none(), "volatile staging is not replicated");
        }
        // Staged, not committed; and invisible to snapshots.
        assert_eq!(leader.get("x"), None);
        assert_eq!(leader.snapshot(), backup.snapshot());

        let update = leader.txn_commit(t);
        assert_eq!(leader.get("x"), Some("3"), "read-through Add saw staged 1");
        backup.apply_txn_commit(t, &[], &update);
        assert_eq!(backup, leader);
    }

    #[test]
    fn durable_txn_staging_replicates_and_commits_by_marker() {
        let mut leader = KvStore::new();
        let mut backup = KvStore::new();
        let t = TxnId(2);
        let mut rng = SmallRng::seed_from_u64(1);

        let r = txn_req(1, RequestKind::Write, t, &KvOp::Put("y".into(), "9".into()));
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        let (_, up) = leader.txn_execute(t, &r, true, &mut ctx).unwrap();
        backup.apply(&r, &up); // staging record replicated
        assert_eq!(
            leader.snapshot(),
            backup.snapshot(),
            "durable staging in snapshot"
        );

        let commit_update = leader.txn_commit(t);
        let commit_req = Request::txn_commit(RequestId::new(ClientId(1), Seq(2)), t, 1);
        backup.apply(&commit_req, &commit_update);
        assert_eq!(backup, leader);
        assert_eq!(backup.get("y"), Some("9"));
    }

    #[test]
    fn conflicting_txn_is_refused() {
        let mut s = KvStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let (t1, t2) = (TxnId(1), TxnId(2));
        let r1 = txn_req(
            1,
            RequestKind::Write,
            t1,
            &KvOp::Put("k".into(), "a".into()),
        );
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        s.txn_execute(t1, &r1, false, &mut ctx).unwrap();

        let r2 = txn_req(
            2,
            RequestKind::Write,
            t2,
            &KvOp::Put("k".into(), "b".into()),
        );
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        assert_eq!(
            s.txn_execute(t2, &r2, false, &mut ctx).unwrap_err(),
            AbortReason::Conflict
        );
        // Reads are not blocked.
        let r3 = txn_req(3, RequestKind::Read, t2, &KvOp::Get("k".into()));
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        assert!(s.txn_execute(t2, &r3, false, &mut ctx).is_ok());

        // Abort releases the lock.
        s.txn_abort(t1);
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        assert!(s.txn_execute(t2, &r2, false, &mut ctx).is_ok());
    }

    #[test]
    fn plain_write_respects_txn_locks() {
        let mut s = KvStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let t = TxnId(1);
        let r = txn_req(1, RequestKind::Write, t, &KvOp::Put("k".into(), "a".into()));
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        s.txn_execute(t, &r, false, &mut ctx).unwrap();

        let (reply, up) = exec(
            &mut s,
            &req(2, RequestKind::Write, &KvOp::Put("k".into(), "x".into())),
        );
        assert_eq!(reply.as_ref(), b"\0LOCKED");
        assert!(up.is_none());
    }

    #[test]
    fn snapshot_restore_roundtrip_drops_volatile() {
        let mut s = KvStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        exec(
            &mut s,
            &req(1, RequestKind::Write, &KvOp::Put("a".into(), "1".into())),
        );
        // Durable staging present.
        let t = TxnId(7);
        let r = txn_req(2, RequestKind::Write, t, &KvOp::Put("b".into(), "2".into()));
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        s.txn_execute(t, &r, true, &mut ctx).unwrap();
        // Volatile staging present.
        let tv = TxnId(8);
        let rv = txn_req(
            3,
            RequestKind::Write,
            tv,
            &KvOp::Put("c".into(), "3".into()),
        );
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        s.txn_execute(tv, &rv, false, &mut ctx).unwrap();

        let snap = s.snapshot();
        let mut restored = KvStore::new();
        restored.restore(&snap);
        assert_eq!(restored.get("a"), Some("1"));
        assert!(restored.durable.writes.contains_key(&7));
        assert!(restored.volatile.writes.is_empty(), "volatile dropped");

        // The original's committed+durable state matches the restored one.
        let mut original_clean = s.clone();
        original_clean.volatile = Staging::default();
        assert_eq!(restored, original_clean);
    }

    #[test]
    fn scan_returns_prefix_matches_in_order() {
        let mut s = KvStore::new();
        for (k, v) in [("a:1", "x"), ("a:2", "y"), ("b:1", "z")] {
            exec(
                &mut s,
                &req(1, RequestKind::Write, &KvOp::Put(k.into(), v.into())),
            );
        }
        let (reply, up) = exec(&mut s, &req(2, RequestKind::Read, &KvOp::Scan("a:".into())));
        assert!(up.is_none(), "scans are pure reads");
        assert_eq!(reply.as_ref(), b"a:1=x\na:2=y");
        let (empty, _) = exec(&mut s, &req(3, RequestKind::Read, &KvOp::Scan("zz".into())));
        assert!(empty.is_empty());
    }

    #[test]
    fn sharded_store_refuses_scan_but_serves_single_key_ops() {
        let mut s = KvStore::sharded();
        let (r, _) = exec(
            &mut s,
            &req(1, RequestKind::Write, &KvOp::Put("k".into(), "v".into())),
        );
        assert_eq!(KvStore::decode_reply(&r), Some("v".into()));
        let (reply, up) = exec(&mut s, &req(2, RequestKind::Read, &KvOp::Scan("".into())));
        assert_eq!(reply.as_ref(), CROSS_SHARD);
        assert!(up.is_none());
        // Same refusal inside a transaction.
        let t = TxnId(1);
        let rs = txn_req(3, RequestKind::Read, t, &KvOp::Scan("".into()));
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        let (reply, _) = s.txn_execute(t, &rs, false, &mut ctx).unwrap();
        assert_eq!(reply.as_ref(), CROSS_SHARD);
    }

    #[test]
    fn shard_router_matches_replica_shard_key() {
        let sharded = KvStore::sharded();
        let router = crate::kvstore::shard_router();
        let ops = [
            KvOp::Get("alpha".into()),
            KvOp::Put("alpha".into(), "1".into()),
            KvOp::Del("beta".into()),
            KvOp::Add("gamma".into(), 1),
        ];
        for op in &ops {
            let kind = if op.is_write() {
                RequestKind::Write
            } else {
                RequestKind::Read
            };
            let r = req(1, kind, op);
            let k = gridpaxos_core::service::App::shard_key(&sharded, &r);
            assert!(k.is_some());
            assert_eq!(router.key_of(&r), k, "client and replica agree on {op:?}");
        }
        // All ops on the same key share a shard key; Scan has none.
        assert_eq!(ops[0].shard_key(), ops[1].shard_key());
        assert_eq!(KvOp::Scan("a".into()).shard_key(), None);
        // An unsharded store reports keyless for everything.
        let plain = KvStore::new();
        let r = req(1, RequestKind::Read, &ops[0]);
        assert_eq!(gridpaxos_core::service::App::shard_key(&plain, &r), None);
    }

    #[test]
    fn restore_preserves_sharded_flag() {
        let mut donor = KvStore::new();
        exec(
            &mut donor,
            &req(1, RequestKind::Write, &KvOp::Put("a".into(), "1".into())),
        );
        let snap = donor.snapshot();
        let mut s = KvStore::sharded();
        s.restore(&snap);
        assert_eq!(s.get("a"), Some("1"));
        let (reply, _) = exec(&mut s, &req(2, RequestKind::Read, &KvOp::Scan("".into())));
        assert_eq!(reply.as_ref(), CROSS_SHARD, "still sharded after restore");
    }

    #[test]
    fn txn_read_sees_own_staged_writes_only() {
        let mut s = KvStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        exec(
            &mut s,
            &req(1, RequestKind::Write, &KvOp::Put("k".into(), "old".into())),
        );

        let (t1, t2) = (TxnId(1), TxnId(2));
        let w = txn_req(
            2,
            RequestKind::Write,
            t1,
            &KvOp::Put("k".into(), "new".into()),
        );
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        s.txn_execute(t1, &w, false, &mut ctx).unwrap();

        let own = txn_req(3, RequestKind::Read, t1, &KvOp::Get("k".into()));
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        let (reply, _) = s.txn_execute(t1, &own, false, &mut ctx).unwrap();
        assert_eq!(KvStore::decode_reply(&reply), Some("new".into()));

        let other = txn_req(4, RequestKind::Read, t2, &KvOp::Get("k".into()));
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        let (reply, _) = s.txn_execute(t2, &other, false, &mut ctx).unwrap();
        assert_eq!(
            KvStore::decode_reply(&reply),
            Some("old".into()),
            "no dirty reads"
        );
    }

    /// Emit every chunk of an open chunked snapshot and concatenate.
    fn collect_chunks(s: &mut KvStore, chunk_bytes: usize) -> Bytes {
        use gridpaxos_core::service::App;
        let total = s.snapshot_begin(chunk_bytes);
        let mut out = bytes::BytesMut::new();
        for i in 0..total {
            let c = s.snapshot_chunk(i);
            if i + 1 < total {
                assert_eq!(c.len(), chunk_bytes, "non-final chunks are full");
            }
            out.extend_from_slice(&c);
        }
        s.snapshot_end();
        out.freeze()
    }

    #[test]
    fn tentative_rollback_is_equivalent_to_pre_exec_restore() {
        use gridpaxos_core::service::App;
        let mut s = KvStore::new();
        for (k, v) in [("a", "1"), ("b", "2"), ("c", "3")] {
            exec(
                &mut s,
                &req(1, RequestKind::Write, &KvOp::Put(k.into(), v.into())),
            );
        }
        let before = s.clone();
        let snap = s.snapshot();

        assert!(s.tentative_begin(), "KvStore supports undo-log rollback");
        exec(
            &mut s,
            &req(2, RequestKind::Write, &KvOp::Put("a".into(), "X".into())),
        );
        exec(&mut s, &req(3, RequestKind::Write, &KvOp::Del("b".into())));
        exec(
            &mut s,
            &req(4, RequestKind::Write, &KvOp::Put("new".into(), "n".into())),
        );
        exec(
            &mut s,
            &req(5, RequestKind::Write, &KvOp::Add("ctr".into(), 7)),
        );
        s.tentative_rollback();

        assert_eq!(s.snapshot(), snap, "rollback restores the exact image");
        assert_eq!(s, before);

        // And the same store still works for committed applies afterwards.
        exec(
            &mut s,
            &req(6, RequestKind::Write, &KvOp::Put("d".into(), "4".into())),
        );
        assert_eq!(s.get("d"), Some("4"));
    }

    #[test]
    fn tentative_commit_keeps_the_writes() {
        use gridpaxos_core::service::App;
        let mut s = KvStore::new();
        assert!(s.tentative_begin());
        exec(
            &mut s,
            &req(1, RequestKind::Write, &KvOp::Put("k".into(), "v".into())),
        );
        s.tentative_commit();
        assert_eq!(s.get("k"), Some("v"));
        let mut fresh = KvStore::new();
        fresh.restore(&s.snapshot());
        assert_eq!(fresh, s);
    }

    #[test]
    fn chunked_snapshot_concatenates_to_the_monolithic_one() {
        use gridpaxos_core::service::App;
        let mut s = KvStore::new();
        for i in 0..40 {
            exec(
                &mut s,
                &req(
                    i,
                    RequestKind::Write,
                    &KvOp::Put(format!("key-{i:03}"), format!("value-{i}")),
                ),
            );
        }
        let mono = s.snapshot();
        for chunk_bytes in [1, 7, 64, mono.len() - 1, mono.len(), mono.len() + 1] {
            let total = s.snapshot_begin(chunk_bytes);
            assert_eq!(total, mono.len().div_ceil(chunk_bytes).max(1));
            s.snapshot_end();
            assert_eq!(
                collect_chunks(&mut s, chunk_bytes),
                mono,
                "chunk_bytes={chunk_bytes}"
            );
        }
        let mut fresh = KvStore::new();
        fresh.restore(&collect_chunks(&mut s, 13));
        assert_eq!(fresh, s);
    }

    #[test]
    fn writes_during_a_frozen_snapshot_do_not_leak_into_it() {
        use gridpaxos_core::service::App;
        let mut s = KvStore::new();
        for (k, v) in [("a", "1"), ("m", "2"), ("z", "3")] {
            exec(
                &mut s,
                &req(1, RequestKind::Write, &KvOp::Put(k.into(), v.into())),
            );
        }
        let at_freeze = s.snapshot();

        let total = s.snapshot_begin(8);
        // Mutate every way possible while frozen: overwrite, delete,
        // insert before/between/after the cursor's eventual positions.
        for op in [
            KvOp::Put("a".into(), "overwritten".into()),
            KvOp::Del("m".into()),
            KvOp::Put("0-early".into(), "new".into()),
            KvOp::Put("q-mid".into(), "new".into()),
            KvOp::Put("zz-late".into(), "new".into()),
        ] {
            exec(&mut s, &req(9, RequestKind::Write, &op));
        }
        assert_ne!(s.snapshot(), at_freeze, "live snapshot tracks the writes");
        let mut out = bytes::BytesMut::new();
        for i in 0..total {
            out.extend_from_slice(&s.snapshot_chunk(i));
        }
        s.snapshot_end();
        assert_eq!(out.freeze(), at_freeze, "chunks serve the frozen epoch");

        // After the freeze ends the store serves the mutated state.
        assert_eq!(s.get("a"), Some("overwritten"));
        assert_eq!(s.get("m"), None);
        assert_eq!(s.get("q-mid"), Some("new"));
    }

    mod props {
        use super::*;
        use gridpaxos_core::service::App;
        use proptest::prelude::*;

        fn arb_key() -> impl Strategy<Value = String> {
            prop_oneof![Just("a"), Just("b"), Just("c"), Just("d"), Just("e")]
                .prop_map(String::from)
        }

        fn arb_op() -> impl Strategy<Value = KvOp> {
            prop_oneof![
                (arb_key(), "[a-z]{0,12}").prop_map(|(k, v)| KvOp::Put(k, v)),
                arb_key().prop_map(KvOp::Del),
                (arb_key(), -9i64..9).prop_map(|(k, d)| KvOp::Add(k, d)),
            ]
        }

        proptest! {
            /// A backup driven by per-decree deltas ends byte-identical to
            /// one restored from the leader's full snapshot.
            #[test]
            fn delta_applied_backup_equals_snapshot_restored_backup(
                ops in proptest::collection::vec(arb_op(), 0..40)
            ) {
                let mut leader = KvStore::new();
                let mut backup = KvStore::new();
                for (i, op) in ops.iter().enumerate() {
                    let r = req(i as u64 + 1, RequestKind::Write, op);
                    let (_, up) = exec(&mut leader, &r);
                    backup.apply(&r, &up);
                }
                prop_assert_eq!(&backup, &leader);
                let mut restored = KvStore::new();
                restored.restore(&leader.snapshot());
                prop_assert_eq!(&restored, &leader);
                prop_assert_eq!(restored.snapshot(), backup.snapshot());
            }

            /// Chunked emission reproduces the monolithic snapshot at every
            /// chunk size, including degenerate 1-byte chunks, and restores
            /// to an equal store.
            #[test]
            fn chunked_snapshot_roundtrips_at_every_boundary(
                ops in proptest::collection::vec(arb_op(), 0..25),
                chunk_bytes in 1usize..400,
            ) {
                let mut s = KvStore::new();
                for (i, op) in ops.iter().enumerate() {
                    exec(&mut s, &req(i as u64 + 1, RequestKind::Write, op));
                }
                let mono = s.snapshot();
                let chunked = collect_chunks(&mut s, chunk_bytes);
                prop_assert_eq!(&chunked, &mono);
                let mut fresh = KvStore::new();
                fresh.restore(&chunked);
                prop_assert_eq!(&fresh, &s);
            }

            /// Rollback of a tentative execution restores the pre-exec
            /// image exactly, whatever the interleaving of writes.
            #[test]
            fn tentative_rollback_restores_exactly(
                base in proptest::collection::vec(arb_op(), 0..15),
                spec in proptest::collection::vec(arb_op(), 1..15),
            ) {
                let mut s = KvStore::new();
                for (i, op) in base.iter().enumerate() {
                    exec(&mut s, &req(i as u64 + 1, RequestKind::Write, op));
                }
                let before = s.clone();
                prop_assert!(s.tentative_begin());
                for (i, op) in spec.iter().enumerate() {
                    exec(&mut s, &req(100 + i as u64, RequestKind::Write, op));
                }
                s.tentative_rollback();
                prop_assert_eq!(&s, &before);
                prop_assert_eq!(s.snapshot(), before.snapshot());
            }
        }
    }
}
