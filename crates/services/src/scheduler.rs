//! The grid scheduling service (§2 of the paper — the NILE Global Planner
//! example).
//!
//! Jobs are served First-Come-First-Serve, *overridden by priorities*. The
//! nondeterminism is timing-dependent, exactly as the paper describes: a
//! dispatch decision only considers jobs that became **visible** to the
//! scheduler before it examined the queue — job B with a higher priority
//! arriving "just after" job A is scheduled first only if the scheduler
//! happens to look at the queue late enough. Since visibility depends on
//! the executing machine's clock (`ExecCtx::now`), independent replicas
//! would diverge; the leader therefore replicates its *decision* as a
//! [`StateUpdate::Delta`] — "the primary only need to send the state of
//! its queue when it selects a new request" (§3.3).

use crate::codec::{get_str, get_u32, get_u64, get_u8, put_str};
use bytes::{BufMut, Bytes, BytesMut};
use gridpaxos_core::command::StateUpdate;
use gridpaxos_core::request::Request;
use gridpaxos_core::service::{App, ExecCtx};
use gridpaxos_core::types::Dur;
use std::collections::BTreeMap;

/// How long after submission a job becomes visible to dispatch decisions —
/// models the scheduler's queue-examination latency from the paper's
/// t1/t2 narrative.
pub const VISIBILITY_DELAY: Dur = Dur::from_millis(1);

/// A client-visible scheduler operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedOp {
    /// Register a worker machine with a number of slots. Write.
    AddMachine {
        /// Machine name.
        name: String,
        /// Parallel job slots.
        slots: u32,
    },
    /// Submit a job with a priority (higher = more urgent). Write.
    Submit {
        /// Job identifier.
        job: u64,
        /// Priority; FCFS within equal priorities.
        priority: u32,
    },
    /// Ask the scheduler to dispatch the next eligible job. Write
    /// (nondeterministic — time-dependent).
    Dispatch,
    /// A job finished; free its slot. Write.
    Complete {
        /// Job identifier.
        job: u64,
    },
    /// Read the queue length.
    QueueLen,
    /// Read where a job is running (or whether it waits).
    Status {
        /// Job identifier.
        job: u64,
    },
}

impl SchedOp {
    /// Encode to a request payload.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        match self {
            SchedOp::AddMachine { name, slots } => {
                out.put_u8(0);
                put_str(&mut out, name);
                out.put_u32_le(*slots);
            }
            SchedOp::Submit { job, priority } => {
                out.put_u8(1);
                out.put_u64_le(*job);
                out.put_u32_le(*priority);
            }
            SchedOp::Dispatch => out.put_u8(2),
            SchedOp::Complete { job } => {
                out.put_u8(3);
                out.put_u64_le(*job);
            }
            SchedOp::QueueLen => out.put_u8(4),
            SchedOp::Status { job } => {
                out.put_u8(5);
                out.put_u64_le(*job);
            }
        }
        out.freeze()
    }

    /// Decode a request payload.
    #[must_use]
    pub fn decode(mut b: Bytes) -> Option<SchedOp> {
        match get_u8(&mut b)? {
            0 => Some(SchedOp::AddMachine {
                name: get_str(&mut b)?,
                slots: get_u32(&mut b)?,
            }),
            1 => Some(SchedOp::Submit {
                job: get_u64(&mut b)?,
                priority: get_u32(&mut b)?,
            }),
            2 => Some(SchedOp::Dispatch),
            3 => Some(SchedOp::Complete {
                job: get_u64(&mut b)?,
            }),
            4 => Some(SchedOp::QueueLen),
            5 => Some(SchedOp::Status {
                job: get_u64(&mut b)?,
            }),
            _ => None,
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct WaitingJob {
    priority: u32,
    /// Leader-local submission timestamp (ns) — the source of the
    /// service's nondeterminism.
    submitted_ns: u64,
    /// FCFS tiebreaker: arrival index.
    arrival: u64,
}

/// The scheduler service.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Scheduler {
    machines: BTreeMap<String, u32>, // free slots
    waiting: BTreeMap<u64, WaitingJob>,
    running: BTreeMap<u64, String>,
    arrivals: u64,
}

impl Scheduler {
    /// Empty scheduler.
    #[must_use]
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Jobs still waiting.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// The machine a job runs on.
    #[must_use]
    pub fn running_on(&self, job: u64) -> Option<&str> {
        self.running.get(&job).map(String::as_str)
    }

    /// Pick the next job: among *visible* waiting jobs, highest priority,
    /// FCFS within a priority. Visibility depends on the caller's clock —
    /// the nondeterministic step.
    fn pick(&self, now_ns: u64) -> Option<u64> {
        self.waiting
            .iter()
            .filter(|(_, j)| j.submitted_ns + VISIBILITY_DELAY.0 <= now_ns)
            .max_by_key(|(_, j)| (j.priority, std::cmp::Reverse(j.arrival)))
            .map(|(id, _)| *id)
    }

    fn machine_with_free_slot(&self) -> Option<&String> {
        self.machines.iter().find(|(_, s)| **s > 0).map(|(m, _)| m)
    }

    /// Deterministically apply a dispatch decision.
    fn dispatch(&mut self, job: u64, machine: &str) {
        if self.waiting.remove(&job).is_some() {
            if let Some(s) = self.machines.get_mut(machine) {
                *s = s.saturating_sub(1);
            }
            self.running.insert(job, machine.to_owned());
        }
    }

    fn apply_op(&mut self, op: &SchedOp, decision: Option<(u64, String)>, submitted_ns: u64) {
        match op {
            SchedOp::AddMachine { name, slots } => {
                *self.machines.entry(name.clone()).or_insert(0) += slots;
            }
            SchedOp::Submit { job, priority } => {
                self.arrivals += 1;
                self.waiting.insert(
                    *job,
                    WaitingJob {
                        priority: *priority,
                        submitted_ns,
                        arrival: self.arrivals,
                    },
                );
            }
            SchedOp::Dispatch => {
                if let Some((job, machine)) = decision {
                    self.dispatch(job, &machine);
                }
            }
            SchedOp::Complete { job } => {
                if let Some(m) = self.running.remove(job) {
                    if let Some(s) = self.machines.get_mut(&m) {
                        *s += 1;
                    }
                }
            }
            SchedOp::QueueLen | SchedOp::Status { .. } => {}
        }
    }

    fn encode_state(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_u32_le(self.machines.len() as u32);
        for (m, s) in &self.machines {
            put_str(&mut out, m);
            out.put_u32_le(*s);
        }
        out.put_u32_le(self.waiting.len() as u32);
        for (j, w) in &self.waiting {
            out.put_u64_le(*j);
            out.put_u32_le(w.priority);
            out.put_u64_le(w.submitted_ns);
            out.put_u64_le(w.arrival);
        }
        out.put_u32_le(self.running.len() as u32);
        for (j, m) in &self.running {
            out.put_u64_le(*j);
            put_str(&mut out, m);
        }
        out.put_u64_le(self.arrivals);
        out.freeze()
    }

    fn decode_state(mut b: Bytes) -> Option<Scheduler> {
        let mut s = Scheduler::new();
        let nm = get_u32(&mut b)? as usize;
        for _ in 0..nm {
            let m = get_str(&mut b)?;
            let slots = get_u32(&mut b)?;
            s.machines.insert(m, slots);
        }
        let nw = get_u32(&mut b)? as usize;
        for _ in 0..nw {
            let j = get_u64(&mut b)?;
            let priority = get_u32(&mut b)?;
            let submitted_ns = get_u64(&mut b)?;
            let arrival = get_u64(&mut b)?;
            s.waiting.insert(
                j,
                WaitingJob {
                    priority,
                    submitted_ns,
                    arrival,
                },
            );
        }
        let nr = get_u32(&mut b)? as usize;
        for _ in 0..nr {
            let j = get_u64(&mut b)?;
            let m = get_str(&mut b)?;
            s.running.insert(j, m);
        }
        s.arrivals = get_u64(&mut b)?;
        Some(s)
    }
}

/// Encoded dispatch decision (delta payload).
fn encode_decision(op: &SchedOp, decision: &Option<(u64, String)>, submitted_ns: u64) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(submitted_ns);
    match decision {
        None => out.put_u8(0),
        Some((job, machine)) => {
            out.put_u8(1);
            out.put_u64_le(*job);
            put_str(&mut out, machine);
        }
    }
    let _ = op;
    out.freeze()
}

fn decode_decision(mut b: Bytes) -> Option<(u64, Option<(u64, String)>)> {
    let submitted_ns = get_u64(&mut b)?;
    match get_u8(&mut b)? {
        0 => Some((submitted_ns, None)),
        1 => {
            let job = get_u64(&mut b)?;
            let machine = get_str(&mut b)?;
            Some((submitted_ns, Some((job, machine))))
        }
        _ => None,
    }
}

/// Reply when a dispatch found nothing eligible.
const IDLE: &[u8] = b"\0IDLE";

impl App for Scheduler {
    fn execute(&mut self, req: &Request, ctx: &mut ExecCtx<'_>) -> (Bytes, StateUpdate) {
        let Some(op) = SchedOp::decode(req.op.clone()) else {
            return (Bytes::from_static(b"\0BAD_OP"), StateUpdate::None);
        };
        match &op {
            SchedOp::QueueLen => (
                Bytes::from(self.queue_len().to_string().into_bytes()),
                StateUpdate::None,
            ),
            SchedOp::Status { job } => {
                let status = self
                    .running_on(*job)
                    .map(|m| format!("running:{m}"))
                    .or_else(|| self.waiting.contains_key(job).then(|| "waiting".to_owned()))
                    .unwrap_or_else(|| "unknown".to_owned());
                (Bytes::from(status.into_bytes()), StateUpdate::None)
            }
            SchedOp::Dispatch => {
                // The time-dependent decision: what is visible *now*?
                let decision = self
                    .pick(ctx.now.0)
                    .and_then(|job| self.machine_with_free_slot().cloned().map(|m| (job, m)));
                self.apply_op(&op, decision.clone(), 0);
                let reply = match &decision {
                    None => Bytes::from_static(IDLE),
                    Some((job, m)) => Bytes::from(format!("{job}@{m}").into_bytes()),
                };
                (
                    reply,
                    StateUpdate::Delta(encode_decision(&op, &decision, 0)),
                )
            }
            _ => {
                let submitted_ns = ctx.now.0;
                self.apply_op(&op, None, submitted_ns);
                (
                    Bytes::from_static(b"ok"),
                    StateUpdate::Delta(encode_decision(&op, &None, submitted_ns)),
                )
            }
        }
    }

    fn apply(&mut self, req: &Request, update: &StateUpdate) {
        let Some(op) = SchedOp::decode(req.op.clone()) else {
            return;
        };
        match update {
            StateUpdate::Delta(b) => {
                if let Some((submitted_ns, decision)) = decode_decision(b.clone()) {
                    self.apply_op(&op, decision, submitted_ns);
                }
            }
            StateUpdate::Full(b) => {
                if let Some(s) = Scheduler::decode_state(b.clone()) {
                    *self = s;
                }
            }
            StateUpdate::None | StateUpdate::Reproduce(_) => {}
        }
    }

    fn snapshot(&self) -> Bytes {
        self.encode_state()
    }

    fn restore(&mut self, snap: &[u8]) {
        if let Some(s) = Scheduler::decode_state(Bytes::copy_from_slice(snap)) {
            *self = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::request::{RequestId, RequestKind};
    use gridpaxos_core::types::{ClientId, Seq, Time};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn req(seq: u64, kind: RequestKind, op: &SchedOp) -> Request {
        Request::new(RequestId::new(ClientId(1), Seq(seq)), kind, op.encode())
    }

    fn exec_at(s: &mut Scheduler, r: &Request, now: Time) -> (Bytes, StateUpdate) {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = ExecCtx::new(now, &mut rng);
        s.execute(r, &mut ctx)
    }

    fn setup() -> Scheduler {
        let mut s = Scheduler::new();
        exec_at(
            &mut s,
            &req(
                0,
                RequestKind::Write,
                &SchedOp::AddMachine {
                    name: "m1".into(),
                    slots: 2,
                },
            ),
            Time::ZERO,
        );
        s
    }

    #[test]
    fn ops_roundtrip_encoding() {
        for op in [
            SchedOp::AddMachine {
                name: "m".into(),
                slots: 2,
            },
            SchedOp::Submit {
                job: 1,
                priority: 5,
            },
            SchedOp::Dispatch,
            SchedOp::Complete { job: 1 },
            SchedOp::QueueLen,
            SchedOp::Status { job: 1 },
        ] {
            assert_eq!(SchedOp::decode(op.encode()), Some(op));
        }
    }

    #[test]
    fn fcfs_within_priority() {
        let mut s = setup();
        let t0 = Time(1_000_000);
        exec_at(
            &mut s,
            &req(
                1,
                RequestKind::Write,
                &SchedOp::Submit {
                    job: 1,
                    priority: 1,
                },
            ),
            t0,
        );
        exec_at(
            &mut s,
            &req(
                2,
                RequestKind::Write,
                &SchedOp::Submit {
                    job: 2,
                    priority: 1,
                },
            ),
            t0,
        );
        let late = Time(t0.0 + VISIBILITY_DELAY.0 * 10);
        let (reply, _) = exec_at(
            &mut s,
            &req(3, RequestKind::Write, &SchedOp::Dispatch),
            late,
        );
        assert!(reply.starts_with(b"1@"), "job 1 arrived first: {reply:?}");
    }

    #[test]
    fn timing_dependent_priority_override() {
        // The paper's t1/t2 scenario: job A (low priority) at t1, job B
        // (high priority) at t2 > t1. A scheduler examining the queue
        // before B is visible picks A; examining after picks B.
        let t1 = Time(1_000_000);
        let t2 = Time(t1.0 + 500_000); // 0.5 ms later

        let submit = |s: &mut Scheduler| {
            exec_at(
                s,
                &req(
                    1,
                    RequestKind::Write,
                    &SchedOp::Submit {
                        job: 1,
                        priority: 1,
                    },
                ),
                t1,
            );
            exec_at(
                s,
                &req(
                    2,
                    RequestKind::Write,
                    &SchedOp::Submit {
                        job: 2,
                        priority: 9,
                    },
                ),
                t2,
            );
        };

        // Fast scheduler: examines just after A becomes visible.
        let mut fast = setup();
        submit(&mut fast);
        let examine_early = Time(t1.0 + VISIBILITY_DELAY.0);
        let (reply, _) = exec_at(
            &mut fast,
            &req(3, RequestKind::Write, &SchedOp::Dispatch),
            examine_early,
        );
        assert!(
            reply.starts_with(b"1@"),
            "early examination picks A: {reply:?}"
        );

        // Slow scheduler: examines after B is visible.
        let mut slow = setup();
        submit(&mut slow);
        let examine_late = Time(t2.0 + VISIBILITY_DELAY.0);
        let (reply, _) = exec_at(
            &mut slow,
            &req(3, RequestKind::Write, &SchedOp::Dispatch),
            examine_late,
        );
        assert!(
            reply.starts_with(b"2@"),
            "late examination picks B: {reply:?}"
        );
    }

    #[test]
    fn shipped_decision_converges_backups() {
        // Backups apply the leader's decision regardless of their own
        // clocks — the whole point of replicating ⟨req, state⟩.
        let mut leader = setup();
        let mut backup = setup();
        let t = Time(5_000_000);
        for (seq, op) in [
            (
                1,
                SchedOp::Submit {
                    job: 1,
                    priority: 1,
                },
            ),
            (
                2,
                SchedOp::Submit {
                    job: 2,
                    priority: 9,
                },
            ),
        ] {
            let r = req(seq, RequestKind::Write, &op);
            let (_, up) = exec_at(&mut leader, &r, t);
            backup.apply(&r, &up);
        }
        let r = req(3, RequestKind::Write, &SchedOp::Dispatch);
        let (_, up) = exec_at(&mut leader, &r, Time(t.0 + VISIBILITY_DELAY.0 * 100));
        backup.apply(&r, &up);
        assert_eq!(backup, leader);
        assert_eq!(backup.running_on(2), leader.running_on(2));
    }

    #[test]
    fn complete_frees_the_slot() {
        let mut s = setup();
        let t = Time(1_000_000);
        exec_at(
            &mut s,
            &req(
                1,
                RequestKind::Write,
                &SchedOp::Submit {
                    job: 1,
                    priority: 1,
                },
            ),
            t,
        );
        exec_at(
            &mut s,
            &req(
                2,
                RequestKind::Write,
                &SchedOp::Submit {
                    job: 2,
                    priority: 1,
                },
            ),
            t,
        );
        exec_at(
            &mut s,
            &req(
                3,
                RequestKind::Write,
                &SchedOp::Submit {
                    job: 3,
                    priority: 1,
                },
            ),
            t,
        );
        let late = Time(t.0 + VISIBILITY_DELAY.0 * 2);
        exec_at(
            &mut s,
            &req(4, RequestKind::Write, &SchedOp::Dispatch),
            late,
        );
        exec_at(
            &mut s,
            &req(5, RequestKind::Write, &SchedOp::Dispatch),
            late,
        );
        // Two slots used; third dispatch idles.
        let (reply, _) = exec_at(
            &mut s,
            &req(6, RequestKind::Write, &SchedOp::Dispatch),
            late,
        );
        assert_eq!(reply.as_ref(), IDLE);
        // Completing one frees a slot for job 3.
        exec_at(
            &mut s,
            &req(7, RequestKind::Write, &SchedOp::Complete { job: 1 }),
            late,
        );
        let (reply, _) = exec_at(
            &mut s,
            &req(8, RequestKind::Write, &SchedOp::Dispatch),
            late,
        );
        assert!(reply.starts_with(b"3@"), "{reply:?}");
    }

    #[test]
    fn reads_report_without_mutation() {
        let mut s = setup();
        let t = Time(1_000_000);
        exec_at(
            &mut s,
            &req(
                1,
                RequestKind::Write,
                &SchedOp::Submit {
                    job: 7,
                    priority: 3,
                },
            ),
            t,
        );
        let before = s.clone();
        let (reply, up) = exec_at(&mut s, &req(2, RequestKind::Read, &SchedOp::QueueLen), t);
        assert_eq!(reply.as_ref(), b"1");
        assert!(up.is_none());
        let (reply, up) = exec_at(
            &mut s,
            &req(3, RequestKind::Read, &SchedOp::Status { job: 7 }),
            t,
        );
        assert_eq!(reply.as_ref(), b"waiting");
        assert!(up.is_none());
        assert_eq!(s, before);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut s = setup();
        let t = Time(1_000_000);
        exec_at(
            &mut s,
            &req(
                1,
                RequestKind::Write,
                &SchedOp::Submit {
                    job: 1,
                    priority: 4,
                },
            ),
            t,
        );
        exec_at(
            &mut s,
            &req(2, RequestKind::Write, &SchedOp::Dispatch),
            Time(t.0 + VISIBILITY_DELAY.0 * 2),
        );
        let snap = s.snapshot();
        let mut restored = Scheduler::new();
        restored.restore(&snap);
        assert_eq!(restored, s);
    }
}
