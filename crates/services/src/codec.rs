//! Tiny encoding helpers shared by the services' operation and state
//! formats (little-endian integers, length-prefixed strings).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Append a length-prefixed string.
pub fn put_str(out: &mut BytesMut, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

/// Read a length-prefixed string; `None` on malformed input.
pub fn get_str(buf: &mut Bytes) -> Option<String> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if len > (1 << 24) || buf.remaining() < len {
        return None;
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).ok()
}

/// Read a `u8`; `None` at end of input.
pub fn get_u8(buf: &mut Bytes) -> Option<u8> {
    if buf.remaining() < 1 {
        return None;
    }
    Some(buf.get_u8())
}

/// Read a little-endian `u32`.
pub fn get_u32(buf: &mut Bytes) -> Option<u32> {
    if buf.remaining() < 4 {
        return None;
    }
    Some(buf.get_u32_le())
}

/// Read a little-endian `u64`.
pub fn get_u64(buf: &mut Bytes) -> Option<u64> {
    if buf.remaining() < 8 {
        return None;
    }
    Some(buf.get_u64_le())
}

/// Read a little-endian `i64`.
pub fn get_i64(buf: &mut Bytes) -> Option<i64> {
    if buf.remaining() < 8 {
        return None;
    }
    Some(buf.get_i64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_roundtrip() {
        let mut out = BytesMut::new();
        put_str(&mut out, "hello");
        put_str(&mut out, "");
        put_str(&mut out, "päxos");
        let mut b = out.freeze();
        assert_eq!(get_str(&mut b).unwrap(), "hello");
        assert_eq!(get_str(&mut b).unwrap(), "");
        assert_eq!(get_str(&mut b).unwrap(), "päxos");
        assert!(b.is_empty());
    }

    #[test]
    fn malformed_strings_return_none() {
        let mut b = Bytes::from_static(&[5, 0, 0, 0, b'h']); // claims 5, has 1
        assert!(get_str(&mut b).is_none());
        let mut b = Bytes::from_static(&[1, 2]); // truncated length
        assert!(get_str(&mut b).is_none());
        // Invalid UTF-8.
        let mut out = BytesMut::new();
        out.put_u32_le(2);
        out.put_slice(&[0xff, 0xfe]);
        let mut b = out.freeze();
        assert!(get_str(&mut b).is_none());
    }

    #[test]
    fn integers_roundtrip() {
        let mut out = BytesMut::new();
        out.put_u8(7);
        out.put_u32_le(42);
        out.put_u64_le(1 << 40);
        out.put_i64_le(-5);
        let mut b = out.freeze();
        assert_eq!(get_u8(&mut b), Some(7));
        assert_eq!(get_u32(&mut b), Some(42));
        assert_eq!(get_u64(&mut b), Some(1 << 40));
        assert_eq!(get_i64(&mut b), Some(-5));
        assert_eq!(get_u8(&mut b), None);
    }
}
