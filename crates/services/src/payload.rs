//! A synthetic service with *configurable state size* and selectable
//! state-shipping strategy — the instrument behind the state-size
//! experiment. §3.3 argues the overhead of transferring service state
//! "can usually be made small" by shipping deltas or nondeterminism
//! records instead of full state (the paper cites its companion study
//! \[30\] for the full analysis); this service lets the benchmark measure
//! exactly that trade-off.
//!
//! Semantics: the state is a byte blob. A write picks a random offset and
//! a random seed (the nondeterminism), then deterministically overwrites
//! [`PATCH_LEN`] bytes derived from the seed. The three shipping modes
//! replicate the identical effect at very different wire costs:
//!
//! * [`ShipMode::Full`] — the whole post-write blob;
//! * [`ShipMode::Delta`] — offset + the patched bytes;
//! * [`ShipMode::Reproduce`] — offset + the 8-byte seed (backups
//!   regenerate the patch).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gridpaxos_core::command::StateUpdate;
use gridpaxos_core::request::{Request, RequestKind};
use gridpaxos_core::service::{App, ExecCtx};
use rand::Rng;

/// Bytes overwritten per write.
pub const PATCH_LEN: usize = 64;

/// How a write's effect is shipped to the backups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShipMode {
    /// Ship the complete state blob.
    Full,
    /// Ship offset + patched bytes.
    Delta,
    /// Ship offset + seed; backups regenerate the patch.
    Reproduce,
}

/// The synthetic service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SizedApp {
    state: Vec<u8>,
    mode: ShipMode,
    writes: u64,
}

fn patch_from_seed(seed: u64) -> [u8; PATCH_LEN] {
    // A tiny deterministic generator (splitmix-style) — identical on every
    // replica given the same seed.
    let mut out = [0u8; PATCH_LEN];
    let mut x = seed;
    for chunk in out.chunks_mut(8) {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let bytes = z.to_le_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
    out
}

impl SizedApp {
    /// A service whose state is `state_size` bytes, shipping via `mode`.
    #[must_use]
    pub fn new(state_size: usize, mode: ShipMode) -> SizedApp {
        SizedApp {
            state: vec![0; state_size.max(PATCH_LEN)],
            mode,
            writes: 0,
        }
    }

    /// Simple state checksum (read replies and test assertions).
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in &self.state {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^ self.writes
    }

    fn apply_patch(&mut self, offset: usize, seed: u64) {
        let patch = patch_from_seed(seed);
        let off = offset.min(self.state.len() - PATCH_LEN);
        self.state[off..off + PATCH_LEN].copy_from_slice(&patch);
        self.writes += 1;
    }
}

impl App for SizedApp {
    fn execute(&mut self, req: &Request, ctx: &mut ExecCtx<'_>) -> (Bytes, StateUpdate) {
        if req.kind == RequestKind::Read {
            return (
                Bytes::copy_from_slice(&self.checksum().to_le_bytes()),
                StateUpdate::None,
            );
        }
        // The nondeterministic step: where and what to write.
        let offset = ctx.rng.gen_range(0..=(self.state.len() - PATCH_LEN));
        let seed: u64 = ctx.rng.gen();
        self.apply_patch(offset, seed);

        let reply = Bytes::copy_from_slice(&self.checksum().to_le_bytes());
        let update = match self.mode {
            ShipMode::Full => StateUpdate::Full(Bytes::from(self.state.clone())),
            ShipMode::Delta => {
                let mut out = BytesMut::with_capacity(8 + PATCH_LEN);
                out.put_u64_le(offset as u64);
                out.put_slice(&self.state[offset..offset + PATCH_LEN]);
                StateUpdate::Delta(out.freeze())
            }
            ShipMode::Reproduce => {
                let mut out = BytesMut::with_capacity(16);
                out.put_u64_le(offset as u64);
                out.put_u64_le(seed);
                StateUpdate::Reproduce(out.freeze())
            }
        };
        (reply, update)
    }

    fn apply(&mut self, _req: &Request, update: &StateUpdate) {
        match update {
            StateUpdate::None => {}
            StateUpdate::Full(b) => {
                self.state.clear();
                self.state.extend_from_slice(b);
                self.writes += 1;
            }
            StateUpdate::Delta(b) => {
                let mut buf = b.clone();
                if buf.remaining() >= 8 {
                    let offset = buf.get_u64_le() as usize;
                    let off = offset.min(self.state.len().saturating_sub(PATCH_LEN));
                    let n = PATCH_LEN.min(buf.remaining());
                    self.state[off..off + n].copy_from_slice(&buf[..n]);
                    self.writes += 1;
                }
            }
            StateUpdate::Reproduce(b) => {
                let mut buf = b.clone();
                if buf.remaining() >= 16 {
                    let offset = buf.get_u64_le() as usize;
                    let seed = buf.get_u64_le();
                    self.apply_patch(offset, seed);
                }
            }
        }
    }

    fn snapshot(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(8 + self.state.len());
        out.put_u64_le(self.writes);
        out.put_slice(&self.state);
        out.freeze()
    }

    fn restore(&mut self, snap: &[u8]) {
        if snap.len() >= 8 {
            self.writes = u64::from_le_bytes(snap[..8].try_into().expect("8 bytes"));
            self.state.clear();
            self.state.extend_from_slice(&snap[8..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::request::RequestId;
    use gridpaxos_core::types::{ClientId, Seq, Time};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn write_req(seq: u64) -> Request {
        Request::new(
            RequestId::new(ClientId(1), Seq(seq)),
            RequestKind::Write,
            Bytes::new(),
        )
    }

    #[test]
    fn every_ship_mode_converges_backups() {
        for mode in [ShipMode::Full, ShipMode::Delta, ShipMode::Reproduce] {
            let mut leader = SizedApp::new(4096, mode);
            let mut backup = SizedApp::new(4096, mode);
            let mut rng = SmallRng::seed_from_u64(7);
            for seq in 1..=20 {
                let r = write_req(seq);
                let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
                let (_, update) = leader.execute(&r, &mut ctx);
                backup.apply(&r, &update);
            }
            assert_eq!(
                backup.checksum(),
                leader.checksum(),
                "mode {mode:?} diverged"
            );
        }
    }

    #[test]
    fn update_sizes_differ_by_orders_of_magnitude() {
        let sizes: Vec<usize> = [ShipMode::Full, ShipMode::Delta, ShipMode::Reproduce]
            .iter()
            .map(|mode| {
                let mut app = SizedApp::new(64 * 1024, *mode);
                let mut rng = SmallRng::seed_from_u64(1);
                let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
                let (_, update) = app.execute(&write_req(1), &mut ctx);
                update.payload_len()
            })
            .collect();
        assert_eq!(sizes[0], 64 * 1024, "full = whole state");
        assert_eq!(sizes[1], 8 + PATCH_LEN, "delta = offset + patch");
        assert_eq!(sizes[2], 16, "reproduce = offset + seed");
    }

    #[test]
    fn independent_replicas_diverge_without_shipping() {
        // Two replicas executing the same writes with different RNGs end
        // up different — the raison d'être of the protocol.
        let mut a = SizedApp::new(1024, ShipMode::Full);
        let mut b = SizedApp::new(1024, ShipMode::Full);
        let mut rng_a = SmallRng::seed_from_u64(1);
        let mut rng_b = SmallRng::seed_from_u64(2);
        let r = write_req(1);
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng_a);
        a.execute(&r, &mut ctx);
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng_b);
        b.execute(&r, &mut ctx);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut app = SizedApp::new(2048, ShipMode::Delta);
        let mut rng = SmallRng::seed_from_u64(3);
        for seq in 1..=5 {
            let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
            app.execute(&write_req(seq), &mut ctx);
        }
        let snap = app.snapshot();
        let mut restored = SizedApp::new(2048, ShipMode::Delta);
        restored.restore(&snap);
        assert_eq!(restored.checksum(), app.checksum());
    }

    #[test]
    fn reads_do_not_mutate() {
        let mut app = SizedApp::new(512, ShipMode::Full);
        let before = app.checksum();
        let r = Request::new(
            RequestId::new(ClientId(1), Seq(1)),
            RequestKind::Read,
            Bytes::new(),
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        let (reply, update) = app.execute(&r, &mut ctx);
        assert!(update.is_none());
        assert_eq!(app.checksum(), before);
        assert_eq!(reply.as_ref(), before.to_le_bytes());
    }
}
