//! Multiplexed load driver: thousands of *virtual* clients over a
//! handful of real sockets.
//!
//! The reactor routes replies by `Addr::Client(request.id.client)`, bound
//! per request — not by the connection's hello address. That makes a
//! connection a *channel*, not an identity: one socket per replica can
//! carry any number of independent closed-loop clients, which is how the
//! 10k-client experiment drives a 3-node cluster from one process
//! without 10k sockets or 20k threads (the thread-per-connection
//! transport would need both).
//!
//! `MuxSwarm` opens one connection per replica and runs `V` virtual
//! clients over them:
//!
//! * **closed-loop** ([`MuxSwarm::run_closed`]): every virtual client
//!   keeps exactly one request outstanding — the paper's client model —
//!   with retransmission on timeout and backoff-retry on `Busy`;
//! * **open-loop** ([`MuxSwarm::run_open`]): requests are injected at a
//!   fixed offered rate regardless of completions, which is what pushes
//!   a server past saturation and reveals whether it degrades gracefully
//!   (bounded latency + `Busy` sheds) or falls over.
//!
//! This is a *driver*, deliberately on the blocking-I/O side: a reader
//! thread per connection, a writer thread per connection, and the
//! driving thread double as the retry ticker. The swarm is wire-
//! compatible with both transports, but only the reactor accepts many
//! client ids per connection.

use crate::framing::{read_frame, write_frame};
use crate::wire::{decode_msg, encode_with_scratch, put_addr};
use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use gridpaxos_core::msg::Msg;
use gridpaxos_core::request::{Request, RequestId, RequestKind};
use gridpaxos_core::types::{Addr, ClientId, ProcessId, Seq};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retransmission timeout for a closed-loop virtual client.
const RETRY_AFTER: Duration = Duration::from_millis(500);
/// Backoff before retrying a request the cluster shed with `Busy`.
const BUSY_BACKOFF: Duration = Duration::from_millis(25);
/// Retry-scan / completion-poll cadence of the driving thread.
const TICK: Duration = Duration::from_millis(5);

/// One virtual client's closed-loop state.
struct VClient {
    id: ClientId,
    seq: u64,
    /// `Some(when_sent, retry_at)` while a request is outstanding.
    outstanding: Option<(Instant, Instant)>,
    done: u64,
}

/// State shared between reader threads and the driving thread.
struct Core {
    vclients: Vec<VClient>,
    /// Index into `vclients` by client id (ids are dense from `base`).
    base: u64,
    /// Learned leader (replica index) — first request broadcasts, later
    /// ones unicast here.
    leader: Option<usize>,
    /// RTT samples in nanoseconds.
    samples: Vec<u64>,
    completed: u64,
    busy: u64,
    retries: u64,
    /// Open-loop bookkeeping: send time per in-flight (client, seq).
    open_inflight: HashMap<(u64, u64), Instant>,
}

/// Results of one swarm run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MuxReport {
    /// Requests injected.
    pub sent: u64,
    /// Requests completed with a non-`Busy` reply.
    pub completed: u64,
    /// `Busy` sheds observed.
    pub busy: u64,
    /// Closed-loop retransmissions (timeouts).
    pub retries: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Mean reply latency, microseconds.
    pub rtt_avg_us: f64,
    /// Median reply latency, microseconds.
    pub rtt_p50_us: f64,
    /// 99th-percentile reply latency, microseconds.
    pub rtt_p99_us: f64,
}

impl MuxReport {
    /// Completed requests per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// `V` virtual clients multiplexed over one connection per replica.
pub struct MuxSwarm {
    core: Arc<Mutex<Core>>,
    writers: Arc<Vec<Sender<Msg>>>,
    readers: Vec<std::thread::JoinHandle<()>>,
    sockets: Vec<TcpStream>,
}

/// Send `msg` to the learned leader, or everyone when none is known.
fn route(writers: &[Sender<Msg>], leader: Option<usize>, msg: Msg) {
    match leader {
        Some(i) if i < writers.len() => {
            let _ = writers[i].send(msg);
        }
        _ => {
            for w in writers {
                let _ = w.send(msg.clone());
            }
        }
    }
}

fn request_msg(id: ClientId, seq: u64) -> Msg {
    Msg::Request(Request::new(
        RequestId::new(id, Seq(seq)),
        RequestKind::Write,
        Bytes::copy_from_slice(&[(seq & 0xff) as u8]),
    ))
}

impl MuxSwarm {
    /// Connect one socket to every replica in `addrs` and set up
    /// `n_virtual` virtual clients with ids `base..base + n_virtual`.
    pub fn connect(
        addrs: &HashMap<ProcessId, SocketAddr>,
        n_virtual: usize,
        base: u64,
    ) -> std::io::Result<MuxSwarm> {
        let core = Arc::new(Mutex::new(Core {
            vclients: (0..n_virtual)
                .map(|v| VClient {
                    id: ClientId(base + v as u64),
                    seq: 0,
                    outstanding: None,
                    done: 0,
                })
                .collect(),
            base,
            leader: None,
            samples: Vec::new(),
            completed: 0,
            busy: 0,
            retries: 0,
            open_inflight: HashMap::new(),
        }));
        let mut order: Vec<_> = addrs.iter().map(|(p, a)| (*p, *a)).collect();
        order.sort_by_key(|(p, _)| p.0);

        let mut writers = Vec::new();
        let mut readers = Vec::new();
        let mut sockets = Vec::new();
        for (i, (_, sock_addr)) in order.iter().enumerate() {
            let stream = TcpStream::connect_timeout(sock_addr, Duration::from_secs(2))?;
            stream.set_nodelay(true).ok();
            let (tx, rx): (Sender<Msg>, Receiver<Msg>) = unbounded();
            let write_stream = stream.try_clone()?;
            let hello_addr = Addr::Client(ClientId(base));
            std::thread::Builder::new()
                .name(format!("mux-w{i}"))
                .spawn(move || writer_loop(write_stream, rx, hello_addr))?;
            let read_stream = stream.try_clone()?;
            let core = Arc::clone(&core);
            readers.push(
                std::thread::Builder::new()
                    .name(format!("mux-r{i}"))
                    .spawn(move || reader_loop(read_stream, core))?,
            );
            writers.push(tx);
            sockets.push(stream);
        }
        let writers = Arc::new(writers);
        Ok(MuxSwarm {
            core,
            writers,
            readers,
            sockets,
        })
    }

    /// Closed loop: every virtual client keeps one request outstanding
    /// until it has completed `ops_each`, retransmitting on timeout and
    /// backing off on `Busy`. Returns when all are done or `deadline`
    /// expires.
    pub fn run_closed(&mut self, ops_each: u64, deadline: Duration) -> MuxReport {
        let started = Instant::now();
        let mut sent = 0u64;
        {
            let mut c = self.core.lock();
            let leader = c.leader;
            for v in &mut c.vclients {
                v.seq += 1;
                v.outstanding = Some((Instant::now(), Instant::now() + RETRY_AFTER));
                route(&self.writers, leader, request_msg(v.id, v.seq));
                sent += 1;
            }
        }
        loop {
            std::thread::sleep(TICK);
            let now = Instant::now();
            let mut c = self.core.lock();
            let leader = c.leader;
            let mut all_done = true;
            let mut to_send = Vec::new();
            let mut retried = 0u64;
            for v in &mut c.vclients {
                if v.done >= ops_each {
                    continue;
                }
                all_done = false;
                match v.outstanding {
                    Some((sent_at, retry_at)) if retry_at <= now => {
                        // Timeout or Busy backoff expired: rebroadcast.
                        v.outstanding = Some((sent_at, now + RETRY_AFTER));
                        to_send.push(request_msg(v.id, v.seq));
                        retried += 1;
                    }
                    Some(_) => {}
                    None => {
                        // Next op for this client.
                        v.seq += 1;
                        v.outstanding = Some((now, now + RETRY_AFTER));
                        to_send.push(request_msg(v.id, v.seq));
                        sent += 1;
                    }
                }
            }
            c.retries += retried;
            drop(c);
            for msg in to_send {
                route(&self.writers, leader, msg);
            }
            if all_done || started.elapsed() > deadline {
                break;
            }
        }
        self.report(started.elapsed(), sent)
    }

    /// Open loop: inject `rate` requests/second for `duration` (round-
    /// robin across the virtual clients, new sequence number each time,
    /// no waiting and no retries), then drain replies for `grace`.
    pub fn run_open(&mut self, rate: u64, duration: Duration, grace: Duration) -> MuxReport {
        let started = Instant::now();
        let interval = Duration::from_secs_f64(1.0 / rate.max(1) as f64);
        let mut sent = 0u64;
        let mut next_at = started;
        let mut rr = 0usize;
        while started.elapsed() < duration {
            let now = Instant::now();
            if now < next_at {
                std::thread::sleep(next_at - now);
            }
            next_at += interval;
            let msg = {
                let mut c = self.core.lock();
                let v = rr % c.vclients.len();
                rr += 1;
                c.vclients[v].seq += 1;
                let (id, seq) = (c.vclients[v].id, c.vclients[v].seq);
                c.open_inflight.insert((id.0, seq), Instant::now());
                // Unanswered requests accumulate past saturation; bound
                // the map so an overload sweep can't eat the heap.
                if c.open_inflight.len() > 200_000 {
                    c.open_inflight.clear();
                }
                sent += 1;
                (request_msg(id, seq), c.leader)
            };
            route(&self.writers, msg.1, msg.0);
        }
        std::thread::sleep(grace);
        self.report(started.elapsed(), sent)
    }

    fn report(&self, elapsed: Duration, sent: u64) -> MuxReport {
        let mut c = self.core.lock();
        let mut samples = std::mem::take(&mut c.samples);
        samples.sort_unstable();
        let pct = |p: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let idx = ((samples.len() - 1) as f64 * p).round() as usize;
            samples[idx] as f64 / 1_000.0
        };
        let avg = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1_000.0
        };
        let report = MuxReport {
            sent,
            completed: c.completed,
            busy: c.busy,
            retries: c.retries,
            elapsed,
            rtt_avg_us: avg,
            rtt_p50_us: pct(0.50),
            rtt_p99_us: pct(0.99),
        };
        c.completed = 0;
        c.busy = 0;
        c.retries = 0;
        c.open_inflight.clear();
        for v in &mut c.vclients {
            v.outstanding = None;
            v.done = 0;
        }
        report
    }

    /// Tear the connections down and join the reader threads.
    pub fn shutdown(self) {
        for s in &self.sockets {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        drop(self.writers);
        for r in self.readers {
            let _ = r.join();
        }
    }
}

fn writer_loop(mut stream: TcpStream, rx: Receiver<Msg>, hello_addr: Addr) {
    let mut batch: Vec<u8> = Vec::with_capacity(4096);
    let hello = {
        let mut b = BytesMut::new();
        put_addr(&mut b, &hello_addr);
        b.freeze()
    };
    if write_frame(&mut batch, &hello).is_err() || stream.write_all(&batch).is_err() {
        return;
    }
    batch.clear();
    let mut scratch = BytesMut::new();
    while let Ok(msg) = rx.recv() {
        let frame = encode_with_scratch(&msg, &mut scratch);
        if write_frame(&mut batch, frame).is_err() {
            return;
        }
        let mut coalesced = 1;
        while coalesced < 256 {
            let Ok(more) = rx.try_recv() else { break };
            let frame = encode_with_scratch(&more, &mut scratch);
            if write_frame(&mut batch, frame).is_err() {
                return;
            }
            coalesced += 1;
        }
        if stream.write_all(&batch).is_err() {
            return;
        }
        batch.clear();
        if batch.capacity() > 1 << 20 {
            batch = Vec::with_capacity(4096);
        }
    }
}

fn reader_loop(stream: TcpStream, core: Arc<Mutex<Core>>) {
    let mut r = BufReader::new(stream);
    loop {
        let Ok(Some(mut frame)) = read_frame(&mut r) else {
            return;
        };
        let Ok(msg) = decode_msg(&mut frame) else {
            return;
        };
        let Msg::Reply(reply) = msg else { continue };
        let now = Instant::now();
        let mut c = core.lock();
        // Leader hint for subsequent unicasts (Busy sheds are not from
        // the leader, so they don't update it).
        if !reply.body.is_busy() {
            c.leader = Some(reply.leader.0 as usize);
        }
        // Open-loop accounting.
        if let Some(sent_at) = c.open_inflight.remove(&(reply.id.client.0, reply.id.seq.0)) {
            if reply.body.is_busy() {
                c.busy += 1;
            } else {
                c.completed += 1;
                c.samples
                    .push(now.duration_since(sent_at).as_nanos() as u64);
            }
            continue;
        }
        // Closed-loop accounting.
        let Some(idx) = reply.id.client.0.checked_sub(c.base) else {
            continue;
        };
        let idx = idx as usize;
        if idx >= c.vclients.len() {
            continue;
        }
        let v = &mut c.vclients[idx];
        if reply.id.seq.0 != v.seq {
            continue; // stale duplicate
        }
        let Some((sent_at, _)) = v.outstanding else {
            continue; // already completed (duplicate reply)
        };
        if reply.body.is_busy() {
            // Back off, then the ticker rebroadcasts.
            v.outstanding = Some((sent_at, now + BUSY_BACKOFF));
            c.busy += 1;
            continue;
        }
        v.outstanding = None;
        v.done += 1;
        c.completed += 1;
        c.samples
            .push(now.duration_since(sent_at).as_nanos() as u64);
    }
}
