//! In-process transport: a hub of crossbeam channels.
//!
//! Fastest way to run a real (threaded, wall-clock) replica group inside a
//! single OS process — used by the quickstart example and as the baseline
//! for transport-level tests. Semantics match TCP: reliable, FIFO per
//! sender→receiver pair, no shared memory between processes beyond the
//! channel.

use crate::node::{RecvResult, Transport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gridpaxos_core::msg::Msg;
use gridpaxos_core::types::Addr;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

type Inbox = (Addr, Msg);

/// A message hub connecting any number of endpoints by address.
#[derive(Clone, Default)]
pub struct Hub {
    routes: Arc<RwLock<HashMap<Addr, Sender<Inbox>>>>,
}

impl Hub {
    /// Fresh, empty hub.
    #[must_use]
    pub fn new() -> Hub {
        Hub::default()
    }

    /// Create (and register) an endpoint for `addr`. Re-registering an
    /// address replaces the previous endpoint (its receiver closes).
    #[must_use]
    pub fn endpoint(&self, addr: Addr) -> HubEndpoint {
        let (tx, rx) = unbounded();
        self.routes.write().insert(addr, tx);
        HubEndpoint {
            addr,
            rx,
            hub: self.clone(),
        }
    }

    /// Remove an endpoint (simulates a process disappearing).
    pub fn disconnect(&self, addr: Addr) {
        self.routes.write().remove(&addr);
    }

    fn send(&self, from: Addr, to: Addr, msg: Msg) {
        let tx = self.routes.read().get(&to).cloned();
        if let Some(tx) = tx {
            let _ = tx.send((from, msg)); // receiver gone: best-effort drop
        }
    }
}

/// One process's connection to the [`Hub`].
pub struct HubEndpoint {
    addr: Addr,
    rx: Receiver<Inbox>,
    hub: Hub,
}

impl Transport for HubEndpoint {
    fn send(&self, to: Addr, msg: Msg) {
        self.hub.send(self.addr, to, msg);
    }

    fn recv_timeout(&self, timeout: Duration) -> RecvResult {
        match self.rx.recv_timeout(timeout) {
            Ok((from, msg)) => RecvResult::Msg(from, msg),
            Err(RecvTimeoutError::Timeout) => RecvResult::Timeout,
            Err(RecvTimeoutError::Disconnected) => RecvResult::Closed,
        }
    }

    fn local_addr(&self) -> Addr {
        self.addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::ballot::Ballot;
    use gridpaxos_core::types::{ClientId, Instance, ProcessId};

    fn hb() -> Msg {
        Msg::Heartbeat {
            ballot: Ballot::ZERO,
            chosen: Instance::ZERO,
            hb_seq: 0,
        }
    }

    #[test]
    fn messages_route_by_address() {
        let hub = Hub::new();
        let a = hub.endpoint(Addr::Replica(ProcessId(0)));
        let b = hub.endpoint(Addr::Replica(ProcessId(1)));
        a.send(Addr::Replica(ProcessId(1)), hb());
        match b.recv_timeout(Duration::from_millis(100)) {
            RecvResult::Msg(from, msg) => {
                assert_eq!(from, Addr::Replica(ProcessId(0)));
                assert_eq!(msg.tag(), "heartbeat");
            }
            _ => panic!("expected message"),
        }
        // Nothing arrives at the sender.
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(10)),
            RecvResult::Timeout
        ));
    }

    #[test]
    fn send_to_unknown_address_is_dropped() {
        let hub = Hub::new();
        let a = hub.endpoint(Addr::Client(ClientId(1)));
        a.send(Addr::Replica(ProcessId(9)), hb()); // nobody there: no panic
    }

    #[test]
    fn disconnect_stops_delivery() {
        let hub = Hub::new();
        let a = hub.endpoint(Addr::Replica(ProcessId(0)));
        let b = hub.endpoint(Addr::Replica(ProcessId(1)));
        hub.disconnect(Addr::Replica(ProcessId(1)));
        a.send(Addr::Replica(ProcessId(1)), hb());
        assert!(matches!(
            b.recv_timeout(Duration::from_millis(10)),
            RecvResult::Timeout | RecvResult::Closed
        ));
    }
}
