//! Minimal raw `epoll` / socket syscall bindings for the reactor.
//!
//! The workspace vendors no `libc` crate, so the handful of calls the
//! reactor needs are declared directly against the C library that `std`
//! already links. Everything here is Linux/x86-64 ABI; the module is
//! compiled only on `target_os = "linux"` (gated in `lib.rs`).
//!
//! Only the thin, unavoidable layer lives here: fd registration and the
//! wait call ([`Epoll`]), nonblocking connect initiation
//! ([`connect_nonblocking`]) and its completion check
//! ([`take_socket_error`]). Everything else (accept, read, write,
//! nonblocking mode) goes through `std`'s socket types, which expose
//! those safely.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::raw::{c_int, c_void};
use std::os::unix::io::{FromRawFd, RawFd};

// ---------------------------------------------------------------------
// FFI surface (x86-64 Linux).
// ---------------------------------------------------------------------

/// One readiness record, as filled in by `epoll_wait`.
///
/// `packed` matters: on x86-64 Linux the kernel lays this struct out
/// without the 4 bytes of padding a naturally-aligned `u64` would get.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16, // network byte order
    sin_addr: u32, // network byte order
    sin_zero: [u8; 8],
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const SockAddrIn, len: u32) -> c_int;
    fn getsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut c_void,
        optlen: *mut u32,
    ) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`); always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_ERROR: c_int = 4;
const EINPROGRESS: i32 = 115;
const EINTR: i32 = 4;

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------
// Epoll instance.
// ---------------------------------------------------------------------

/// A readiness event delivered by [`Epoll::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The `token` the fd was registered with.
    pub token: u64,
    events: u32,
}

impl Event {
    /// The fd has bytes to read (or a pending accept), or the peer hung up
    /// (a read will then return 0/error, which is how the closure is
    /// observed).
    #[must_use]
    pub fn readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }

    /// The fd can accept more outbound bytes (or a nonblocking connect
    /// finished, successfully or not).
    #[must_use]
    pub fn writable(&self) -> bool {
        self.events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// Error or hangup was flagged by the kernel.
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.events & (EPOLLERR | EPOLLHUP) != 0
    }
}

/// An owned `epoll` instance (level-triggered).
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a new epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest mask / token for an already-registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Remove `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: event pointer must be non-null on pre-2.6.9 kernels;
        // harmless on current ones.
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Wait up to `timeout_ms` (`-1` = forever, `0` = poll) and append the
    /// ready set to `out`. Retries transparently on `EINTR`.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        const MAX_EVENTS: usize = 1024;
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        loop {
            // SAFETY: `buf` is a valid writable array of MAX_EVENTS records.
            let n =
                unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.raw_os_error() == Some(EINTR) {
                    continue;
                }
                return Err(err);
            }
            for ev in buf.iter().take(n as usize) {
                out.push(Event {
                    token: ev.data,
                    events: ev.events,
                });
            }
            return Ok(());
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

// ---------------------------------------------------------------------
// Nonblocking connect.
// ---------------------------------------------------------------------

/// Start a nonblocking TCP connect to `addr` (IPv4 only — the repo's
/// deployments bind loopback/LAN v4 addresses).
///
/// Returns the socket (already in nonblocking mode) plus `true` if the
/// connect completed synchronously (loopback typically does), `false` if
/// it is in flight — in which case the caller must watch for `EPOLLOUT`
/// and then check [`take_socket_error`] to learn the outcome.
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<(TcpStream, bool)> {
    let SocketAddr::V4(v4) = addr else {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "reactor dialer supports IPv4 only",
        ));
    };
    // SAFETY: plain syscall, no pointers.
    let fd = cvt(unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    // Wrap immediately so the fd is closed on every early-return path.
    // SAFETY: `fd` is a fresh socket we own; TcpStream takes ownership.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };

    let sin = SockAddrIn {
        sin_family: AF_INET as u16,
        sin_port: v4.port().to_be(),
        sin_addr: u32::from_ne_bytes(v4.ip().octets()),
        sin_zero: [0; 8],
    };
    // SAFETY: `sin` is a properly initialized sockaddr_in.
    let rc = unsafe { connect(fd, &sin, std::mem::size_of::<SockAddrIn>() as u32) };
    if rc == 0 {
        return Ok((stream, true));
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        return Ok((stream, false));
    }
    Err(err)
}

/// Fetch and clear the socket's pending error (`SO_ERROR`) — the outcome
/// of an in-flight nonblocking connect once `EPOLLOUT` fires.
pub fn take_socket_error(fd: RawFd) -> io::Result<()> {
    let mut err: c_int = 0;
    let mut len = std::mem::size_of::<c_int>() as u32;
    // SAFETY: `err`/`len` are valid out-pointers of the advertised size.
    cvt(unsafe {
        getsockopt(
            fd,
            SOL_SOCKET,
            SO_ERROR,
            (&mut err as *mut c_int).cast::<c_void>(),
            &mut len,
        )
    })?;
    if err == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_listener_readable_on_pending_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = Vec::new();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no connection pending yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        ep.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable()));
    }

    #[test]
    fn nonblocking_connect_completes_and_carries_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (stream, done) = connect_nonblocking(addr).unwrap();
        let ep = Epoll::new().unwrap();
        if !done {
            ep.add(stream.as_raw_fd(), EPOLLOUT, 1).unwrap();
            let mut events = Vec::new();
            ep.wait(&mut events, 2000).unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.writable()));
            ep.delete(stream.as_raw_fd()).unwrap();
        }
        take_socket_error(stream.as_raw_fd()).unwrap();

        let (mut srv, _) = listener.accept().unwrap();
        srv.write_all(b"ping").unwrap();
        drop(srv);
        stream.set_nonblocking(false).unwrap();
        let mut got = Vec::new();
        (&stream).read_to_end(&mut got).unwrap();
        assert_eq!(got, b"ping");
    }

    #[test]
    fn connect_to_dead_port_reports_so_error() {
        // Bind then drop to get a port that refuses connections.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let (stream, done) = connect_nonblocking(addr).unwrap();
        if done {
            // Synchronous failure would have errored out of connect itself;
            // a synchronous success is impossible against a closed port.
            panic!("connect to closed port reported synchronous success");
        }
        let ep = Epoll::new().unwrap();
        ep.add(stream.as_raw_fd(), EPOLLOUT, 1).unwrap();
        let mut events = Vec::new();
        ep.wait(&mut events, 2000).unwrap();
        assert!(!events.is_empty());
        assert!(take_socket_error(stream.as_raw_fd()).is_err());
    }

    #[test]
    fn modify_switches_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        // Watch only EPOLLOUT first: an idle connected socket is writable.
        ep.add(a.as_raw_fd(), EPOLLOUT, 9).unwrap();
        let mut events = Vec::new();
        ep.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.writable()));

        // Switch to EPOLLIN: not readable until the peer writes.
        ep.modify(a.as_raw_fd(), EPOLLIN, 9).unwrap();
        events.clear();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
        b.write_all(b"x").unwrap();
        ep.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.readable()));
    }
}
