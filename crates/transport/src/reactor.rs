//! Single-threaded epoll reactor: nonblocking multiplexed I/O for one
//! node, with explicit backpressure.
//!
//! The thread-per-connection transport ([`crate::tcp`]) spends two OS
//! threads per socket; at thousands of closed-loop clients the node
//! drowns in stacks and context switches before it runs out of protocol
//! capacity. The reactor replaces all of that with **one thread per
//! node**: a level-triggered `epoll` loop ([`crate::sys`]) owning the
//! listener, every connection, all `G` group replica cores, and the
//! timer wheel. It subsumes what the threaded path splits across
//! `tcp.rs` readers/writers, the `shard.rs` demux thread and the
//! `node.rs` drive loop.
//!
//! ## I/O discipline
//!
//! Sockets are nonblocking in both directions. Reads drain until
//! `EWOULDBLOCK` into a per-connection [`FrameDecoder`] that tolerates
//! frames torn at any byte offset; writes go through a per-connection
//! byte-bounded [`SendQueue`] that resumes partially-written frames at
//! the exact offset. Outbound encoding reuses one node-wide scratch
//! buffer (`encode_with_scratch`), same as the threaded writer path.
//!
//! ## Group commit: the flush barrier (unchanged)
//!
//! The loop keeps PR 4's invariant *exactly*: every drain cycle buffers
//! the cores' `Send`/`ToAllReplicas` actions in an outbox, then
//! [`Reactor::flush_and_transmit`] flushes each dirty group storage —
//! one fsync covering the whole batch — and only after that barrier
//! frames the outbox into connection send queues and lets bytes reach
//! the kernel. No `Promise`/`Accepted` can touch the wire before the
//! storage write it acknowledges is durable.
//!
//! ## Backpressure
//!
//! Two mechanisms ([`crate::backpressure`]):
//!
//! * per-connection send queues are byte-capped; while a connection's
//!   queue is full its **read interest is suspended**, so a peer that
//!   stops reading our replies also stops feeding us work (quench
//!   propagates along the connection);
//! * a node-wide [`AdmissionGate`] over the inbox backlog sheds new
//!   client requests with an immediate `ReplyBody::Busy` above the
//!   high-water mark and re-admits below the low-water mark. Busy
//!   replies carry no durable state and never touch the protocol core,
//!   so they are enqueued outside the outbox; they still leave through
//!   the same flush-gated write path as everything else.
//!
//! ## Connection multiplexing
//!
//! Replies route by client address: every `Request` decoded from a
//! connection binds `Addr::Client(req.id.client)` to that connection, so
//! any number of *virtual* clients (see [`crate::mux`]) can share one
//! socket — the reactor never needs a connection per client.

use crate::backpressure::{AdmissionGate, FlushOutcome, SendQueue};
use crate::framing::{FrameDecoder, MAX_FRAME};
use crate::fstorage::{FlushCoordinator, SyncMode};
use crate::node::SyncClient;
use crate::sys::{self, Epoll, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::tcp::TcpNode;
use crate::wire::{decode_msg, encode_with_scratch, get_addr, put_addr};
use bytes::{Bytes, BytesMut};
use gridpaxos_core::action::{Action, TimerKind};
use gridpaxos_core::client::{ClientCore, ShardRouter};
use gridpaxos_core::config::Config;
use gridpaxos_core::msg::Msg;
use gridpaxos_core::multi::{group_config, group_seed};
use gridpaxos_core::replica::Replica;
use gridpaxos_core::request::{Reply, ReplyBody};
use gridpaxos_core::service::App;
use gridpaxos_core::storage::{MemStorage, Storage};
use gridpaxos_core::types::{Addr, ClientId, Dur, GroupId, ProcessId, Time};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum epoll wait per iteration so the stop flag is honored promptly
/// (same bound as the threaded drive loop).
const MAX_WAIT: Duration = Duration::from_millis(25);

/// Cap on messages drained through the cores per flush cycle, so one
/// barrier never covers an unbounded batch.
const MAX_DRAIN: usize = 128;

/// epoll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;

/// Tuning knobs for one reactor node.
#[derive(Clone, Copy, Debug)]
pub struct ReactorConfig {
    /// Byte cap per connection send queue (exceeded by at most one frame).
    pub send_queue_cap: usize,
    /// Inbox backlog at which the admission gate starts shedding client
    /// requests with `Busy`.
    pub admit_high: usize,
    /// Backlog at which a shedding gate re-admits.
    pub admit_low: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            send_queue_cap: 1 << 20,
            admit_high: 4096,
            admit_low: 1024,
        }
    }
}

#[derive(Default)]
struct MetricsInner {
    accepted: AtomicU64,
    msgs_in: AtomicU64,
    msgs_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    busy_shed: AtomicU64,
    frames_dropped: AtomicU64,
    reads_suspended: AtomicU64,
    partial_writes: AtomicU64,
    unroutable: AtomicU64,
}

/// Shared, live-readable counters of one reactor node.
#[derive(Clone, Default)]
pub struct ReactorMetrics {
    inner: Arc<MetricsInner>,
}

/// A point-in-time copy of a node's [`ReactorMetrics`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ReactorStats {
    /// Connections accepted on the listener.
    pub accepted: u64,
    /// Protocol messages decoded off the wire.
    pub msgs_in: u64,
    /// Protocol messages framed onto send queues.
    pub msgs_out: u64,
    /// Payload bytes read.
    pub bytes_in: u64,
    /// Payload bytes written.
    pub bytes_out: u64,
    /// Client requests shed with `Busy` by the admission gate.
    pub busy_shed: u64,
    /// Frames refused by full per-connection send queues.
    pub frames_dropped: u64,
    /// Times a connection's read interest was suspended (full send queue).
    pub reads_suspended: u64,
    /// Write calls that ended in `EWOULDBLOCK` with bytes still queued.
    pub partial_writes: u64,
    /// Messages dropped for lack of any connection to the destination.
    pub unroutable: u64,
}

impl ReactorMetrics {
    /// Copy the current counter values.
    #[must_use]
    pub fn stats(&self) -> ReactorStats {
        let m = &self.inner;
        ReactorStats {
            accepted: m.accepted.load(Ordering::Relaxed),
            msgs_in: m.msgs_in.load(Ordering::Relaxed),
            msgs_out: m.msgs_out.load(Ordering::Relaxed),
            bytes_in: m.bytes_in.load(Ordering::Relaxed),
            bytes_out: m.bytes_out.load(Ordering::Relaxed),
            busy_shed: m.busy_shed.load(Ordering::Relaxed),
            frames_dropped: m.frames_dropped.load(Ordering::Relaxed),
            reads_suspended: m.reads_suspended.load(Ordering::Relaxed),
            partial_writes: m.partial_writes.load(Ordering::Relaxed),
            unroutable: m.unroutable.load(Ordering::Relaxed),
        }
    }
}

fn bump(c: &AtomicU64, by: u64) {
    c.fetch_add(by, Ordering::Relaxed);
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    outq: SendQueue,
    /// Protocol address of the peer: known at dial time, learned from the
    /// hello frame on accepted connections (None until then).
    peer: Option<Addr>,
    /// Nonblocking connect still in flight (outcome arrives as EPOLLOUT).
    connecting: bool,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// Read interest withdrawn because the send queue filled up.
    read_suspended: bool,
    /// Already queued for a socket write in this cycle's dirty list.
    flush_pending: bool,
}

fn kind_idx(k: TimerKind) -> u8 {
    match k {
        TimerKind::Heartbeat => 0,
        TimerKind::LeaderCheck => 1,
        TimerKind::Retransmit => 2,
        TimerKind::Election => 3,
        TimerKind::ClientRetry => 4,
        TimerKind::BatchWindow => 5,
    }
}

fn idx_kind(i: u8) -> TimerKind {
    match i {
        0 => TimerKind::Heartbeat,
        1 => TimerKind::LeaderCheck,
        2 => TimerKind::Retransmit,
        3 => TimerKind::Election,
        5 => TimerKind::BatchWindow,
        _ => TimerKind::ClientRetry,
    }
}

/// Length-prefix `body` into an owned frame ready for a send queue.
fn frame_bytes(body: &[u8]) -> Bytes {
    debug_assert!(body.len() <= MAX_FRAME);
    let mut v = Vec::with_capacity(4 + body.len());
    v.extend_from_slice(&(body.len() as u32).to_le_bytes());
    v.extend_from_slice(body);
    Bytes::from(v)
}

/// A buffered outbound action awaiting the flush barrier.
enum Out {
    One(Addr, Msg),
    All(Msg),
}

struct Reactor {
    cores: Vec<Replica>,
    me: ProcessId,
    n: usize,
    n_groups: usize,
    epoch: Instant,
    epoll: Epoll,
    listener: TcpListener,
    peer_addrs: HashMap<ProcessId, SocketAddr>,
    conns: HashMap<u64, Conn>,
    by_addr: HashMap<Addr, u64>,
    next_token: u64,
    /// Decoded messages awaiting a trip through the cores.
    inbox: VecDeque<(Addr, Msg)>,
    /// Core actions awaiting the flush barrier.
    outbox: Vec<Out>,
    /// Connections with freshly queued bytes, flushed after the barrier.
    dirty: Vec<u64>,
    /// (due ns, group, kind idx, gen) — min-heap by due time.
    timers: BinaryHeap<Reverse<(u64, u32, u8, u64)>>,
    gens: Vec<HashMap<TimerKind, u64>>,
    gate: AdmissionGate,
    rcfg: ReactorConfig,
    scratch: BytesMut,
    stop: Arc<AtomicBool>,
    metrics: Arc<MetricsInner>,
}

impl Reactor {
    fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Wrap `msg` in the group envelope iff this node is multi-group
    /// (mirrors `shard::GroupPort`).
    fn wrap(&self, g: usize, msg: Msg) -> Msg {
        if self.n_groups <= 1 {
            msg
        } else {
            Msg::Grouped {
                group: GroupId(g as u32),
                inner: Box::new(msg),
            }
        }
    }

    /// Interpret one handler invocation's actions for group `g`. Sends are
    /// buffered in the outbox; they leave via the flush barrier.
    fn apply(&mut self, g: usize, actions: Vec<Action>) {
        let now = self.now();
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    let msg = self.wrap(g, msg);
                    self.outbox.push(Out::One(to, msg));
                }
                Action::ToAllReplicas { msg } => {
                    let msg = self.wrap(g, msg);
                    self.outbox.push(Out::All(msg));
                }
                Action::SetTimer { kind, after } => {
                    let gen = self.gens[g].entry(kind).or_insert(0);
                    *gen += 1;
                    self.timers
                        .push(Reverse((now.0 + after.0, g as u32, kind_idx(kind), *gen)));
                }
                Action::CancelTimer { kind } => {
                    *self.gens[g].entry(kind).or_insert(0) += 1;
                }
            }
        }
    }

    fn fire_due_timers(&mut self) {
        loop {
            let now = self.now();
            let Some(Reverse((due, g, ki, gen))) = self.timers.peek().copied() else {
                return;
            };
            if due > now.0 {
                return;
            }
            self.timers.pop();
            let g = g as usize;
            let kind = idx_kind(ki);
            if self.gens[g].get(&kind).copied() != Some(gen) {
                continue; // cancelled or replaced
            }
            let actions = self.cores[g].on_timer(kind, now);
            self.apply(g, actions);
        }
    }

    /// The group-commit barrier, identical in spirit to the threaded
    /// loop's: flush every dirty group storage (one fsync per group per
    /// batch — a shared-WAL [`FlushCoordinator`] collapses those to one
    /// per node), and only then frame the buffered outbox onto connection
    /// queues and let the kernel have the bytes. Busy replies queued
    /// outside the outbox also drain here, after the same barrier.
    fn flush_and_transmit(&mut self) {
        if self.outbox.is_empty() && self.dirty.is_empty() {
            return;
        }
        for core in &mut self.cores {
            if core.storage_dirty() {
                core.flush_storage();
            }
        }
        for out in std::mem::take(&mut self.outbox) {
            match out {
                Out::One(to, msg) => self.enqueue_msg(to, msg),
                Out::All(msg) => {
                    // Fan out to every replica but ourselves, moving the
                    // original into the last send.
                    let mut pending: Option<Addr> = None;
                    for i in 0..self.n {
                        let to = Addr::Replica(ProcessId(i as u32));
                        if to == Addr::Replica(self.me) {
                            continue;
                        }
                        if let Some(prev) = pending.replace(to) {
                            self.enqueue_msg(prev, msg.clone());
                        }
                    }
                    if let Some(last) = pending {
                        self.enqueue_msg(last, msg);
                    }
                }
            }
        }
        for token in std::mem::take(&mut self.dirty) {
            self.flush_conn(token);
        }
    }

    /// Encode `msg` (reusing the node-wide scratch buffer) and queue it on
    /// the connection serving `to`, dialing the peer replica first if no
    /// connection exists. Only called from [`Reactor::flush_and_transmit`]
    /// (after the barrier) and for `Busy` sheds, which carry no durable
    /// state.
    fn enqueue_msg(&mut self, to: Addr, msg: Msg) {
        let token = match self.by_addr.get(&to).copied() {
            Some(t) => t,
            None => match to {
                Addr::Replica(p) => match self.dial_peer(p) {
                    Some(t) => t,
                    None => {
                        bump(&self.metrics.unroutable, 1);
                        return;
                    }
                },
                // Clients dial us; a client with no live connection is
                // gone, and its retry logic will come back.
                Addr::Client(_) => {
                    bump(&self.metrics.unroutable, 1);
                    return;
                }
            },
        };
        let frame = frame_bytes(encode_with_scratch(&msg, &mut self.scratch));
        self.enqueue_frame(token, frame);
    }

    /// Queue one ready-made frame on connection `token`.
    fn enqueue_frame(&mut self, token: u64, frame: Bytes) {
        let Some(c) = self.conns.get_mut(&token) else {
            bump(&self.metrics.unroutable, 1);
            return;
        };
        let len = frame.len() as u64;
        if c.outq.push(frame) {
            bump(&self.metrics.msgs_out, 1);
            bump(&self.metrics.bytes_out, len);
        } else {
            bump(&self.metrics.frames_dropped, 1);
        }
        if !c.flush_pending {
            c.flush_pending = true;
            self.dirty.push(token);
        }
    }

    /// Write a connection's queued bytes to the socket (as much as it
    /// takes), then settle its epoll interest: `EPOLLOUT` iff bytes remain
    /// queued, `EPOLLIN` unless backpressure has suspended reads.
    fn flush_conn(&mut self, token: u64) {
        let mut close = false;
        {
            let Some(c) = self.conns.get_mut(&token) else {
                return;
            };
            c.flush_pending = false;
            if c.connecting {
                // Can't write yet; EPOLLOUT is already registered and will
                // fire when the connect resolves.
                return;
            }
            match c.outq.flush_into(&mut c.stream) {
                Ok(outcome) => {
                    let blocked = outcome == FlushOutcome::Blocked;
                    if blocked {
                        bump(&self.metrics.partial_writes, 1);
                    }
                    // Backpressure propagation: a full queue suspends
                    // reads; a queue drained below half the cap resumes
                    // them.
                    if c.outq.is_full() && !c.read_suspended {
                        c.read_suspended = true;
                        bump(&self.metrics.reads_suspended, 1);
                    } else if c.read_suspended
                        && c.outq.queued_bytes() < self.rcfg.send_queue_cap / 2
                    {
                        c.read_suspended = false;
                    }
                    let mut want = EPOLLRDHUP;
                    if !c.read_suspended {
                        want |= EPOLLIN;
                    }
                    if blocked {
                        want |= EPOLLOUT;
                    }
                    if want != c.interest {
                        let fd = c.stream.as_raw_fd();
                        c.interest = want;
                        if self.epoll.modify(fd, want, token).is_err() {
                            close = true;
                        }
                    }
                }
                Err(_) => close = true,
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    /// Open a nonblocking connection to replica `p`, queueing our hello
    /// frame so it is the first thing on the wire once the connect lands.
    fn dial_peer(&mut self, p: ProcessId) -> Option<u64> {
        let sock = *self.peer_addrs.get(&p)?;
        let (stream, done) = sys::connect_nonblocking(sock).ok()?;
        stream.set_nodelay(true).ok();
        let token = self.next_token;
        self.next_token += 1;
        let fd = stream.as_raw_fd();
        // EPOLLOUT from the start: it signals connect completion and then
        // drains the hello.
        let interest = EPOLLIN | EPOLLOUT | EPOLLRDHUP;
        self.epoll.add(fd, interest, token).ok()?;
        let mut hello = BytesMut::new();
        put_addr(&mut hello, &Addr::Replica(self.me));
        let mut conn = Conn {
            stream,
            decoder: FrameDecoder::new(),
            outq: SendQueue::new(self.rcfg.send_queue_cap),
            peer: Some(Addr::Replica(p)),
            connecting: !done,
            interest,
            read_suspended: false,
            flush_pending: false,
        };
        conn.outq.push(frame_bytes(&hello));
        self.conns.insert(token, conn);
        self.by_addr.insert(Addr::Replica(p), token);
        Some(token)
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(c) = self.conns.remove(&token) {
            let _ = self.epoll.delete(c.stream.as_raw_fd());
        }
        self.by_addr.retain(|_, t| *t != token);
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let token = self.next_token;
                    self.next_token += 1;
                    let fd = stream.as_raw_fd();
                    let interest = EPOLLIN | EPOLLRDHUP;
                    if self.epoll.add(fd, interest, token).is_err() {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                            outq: SendQueue::new(self.rcfg.send_queue_cap),
                            peer: None,
                            connecting: false,
                            interest,
                            read_suspended: false,
                            flush_pending: false,
                        },
                    );
                    bump(&self.metrics.accepted, 1);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// EPOLLOUT on `token`: resolve an in-flight connect, then drain the
    /// send queue.
    fn handle_writable(&mut self, token: u64) {
        let connecting = match self.conns.get_mut(&token) {
            Some(c) => c.connecting,
            None => return,
        };
        if connecting {
            let fd = match self.conns.get(&token) {
                Some(c) => c.stream.as_raw_fd(),
                None => return,
            };
            if sys::take_socket_error(fd).is_err() {
                self.close_conn(token);
                return;
            }
            if let Some(c) = self.conns.get_mut(&token) {
                c.connecting = false;
            }
        }
        self.flush_conn(token);
    }

    /// EPOLLIN on `token`: read until `EWOULDBLOCK`, decode every complete
    /// frame, admit or shed.
    fn handle_readable(&mut self, token: u64) {
        /// Outcome of one nonblocking read attempt.
        enum ReadStep {
            Got(usize),
            Drained,
            Close,
        }
        let mut buf = [0u8; 64 * 1024];
        loop {
            let step = {
                let Some(c) = self.conns.get_mut(&token) else {
                    return;
                };
                if c.read_suspended {
                    // Level-triggered epoll can still deliver a stale
                    // readable event from before the suspension took hold.
                    return;
                }
                loop {
                    match c.stream.read(&mut buf) {
                        Ok(0) => break ReadStep::Close,
                        Ok(n) => {
                            c.decoder.extend(&buf[..n]);
                            bump(&self.metrics.bytes_in, n as u64);
                            break ReadStep::Got(n);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break ReadStep::Drained,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => break ReadStep::Close,
                    }
                }
            };
            let read = match step {
                ReadStep::Got(n) => n,
                ReadStep::Drained => return,
                ReadStep::Close => {
                    self.close_conn(token);
                    return;
                }
            };
            // Decode everything the chunk completed before reading more,
            // so one fast sender cannot balloon the decode buffer.
            loop {
                let next = match self.conns.get_mut(&token) {
                    Some(c) => c.decoder.next_frame(),
                    None => return,
                };
                match next {
                    Ok(Some(frame)) => {
                        if !self.on_frame(token, frame) {
                            self.close_conn(token);
                            return;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // Oversized/poisoned length prefix: the stream can
                        // never resynchronize.
                        self.close_conn(token);
                        return;
                    }
                }
            }
            if read < buf.len() {
                // Short read: the socket is drained (saves one syscall
                // that would return EWOULDBLOCK).
                return;
            }
        }
    }

    /// One complete frame off connection `token`. Returns `false` if the
    /// connection must be dropped (protocol violation).
    fn on_frame(&mut self, token: u64, mut frame: Bytes) -> bool {
        let hello_pending = match self.conns.get(&token) {
            Some(c) => c.peer.is_none(),
            None => return false,
        };
        if hello_pending {
            // First frame on an accepted connection: the peer's address.
            let Ok(addr) = get_addr(&mut frame) else {
                return false;
            };
            if let Some(c) = self.conns.get_mut(&token) {
                c.peer = Some(addr);
            }
            self.by_addr.insert(addr, token);
            return true;
        }
        let Ok(msg) = decode_msg(&mut frame) else {
            return false;
        };
        bump(&self.metrics.msgs_in, 1);

        // Client requests: bind the requesting client's address to this
        // connection (multiplexing — many virtual clients per socket), and
        // run the admission gate.
        // (If-let filter, not a `match`: non-request messages fall through
        // to normal inbox delivery below — nothing is dispatched here.)
        let req_meta = if let Msg::Request(r) = &msg {
            Some((None, r.id))
        } else if let Msg::Grouped { group, inner } = &msg {
            if let Msg::Request(r) = inner.as_ref() {
                Some((Some(*group), r.id))
            } else {
                None
            }
        } else {
            None
        };
        let from = if let Some((genv, rid)) = req_meta {
            let caddr = Addr::Client(rid.client);
            self.by_addr.insert(caddr, token);
            if self.gate.update(self.inbox.len()) {
                // Shed: immediate Busy, request never reaches the core, so
                // no durable state exists for the barrier to cover.
                self.gate.count_shed();
                bump(&self.metrics.busy_shed, 1);
                let reply = Msg::Reply(Reply {
                    id: rid,
                    leader: self.me,
                    body: ReplyBody::Busy,
                });
                let reply = match genv {
                    Some(group) => Msg::Grouped {
                        group,
                        inner: Box::new(reply),
                    },
                    None => reply,
                };
                let frame = frame_bytes(encode_with_scratch(&reply, &mut self.scratch));
                self.enqueue_frame(token, frame);
                return true;
            }
            caddr
        } else {
            match self.conns.get(&token).and_then(|c| c.peer) {
                Some(p) => p,
                None => return false,
            }
        };
        self.inbox.push_back((from, msg));
        true
    }

    /// Route up to [`MAX_DRAIN`] queued messages through the cores.
    fn process_inbox(&mut self) {
        let mut drained = 0;
        while drained < MAX_DRAIN {
            let Some((from, msg)) = self.inbox.pop_front() else {
                break;
            };
            drained += 1;
            let (g, inner) = match msg {
                Msg::Grouped { group, inner } => (group.0 as usize, *inner),
                other => (0, other),
            };
            if g >= self.n_groups {
                continue; // peer from a differently sized deployment
            }
            let now = self.now();
            let actions = self.cores[g].on_message(from, inner, now);
            self.apply(g, actions);
        }
        // Keep the gate fed as the backlog shrinks so re-admission happens
        // even when no new request arrives to trigger an update.
        self.gate.update(self.inbox.len());
    }

    /// Milliseconds until the next timer (rounded up), capped at
    /// [`MAX_WAIT`]; zero when backlog remains.
    fn wait_ms(&self) -> i32 {
        if !self.inbox.is_empty() {
            return 0;
        }
        let until = self
            .timers
            .peek()
            .map(|Reverse((due, _, _, _))| Duration::from_nanos(due.saturating_sub(self.now().0)))
            .unwrap_or(MAX_WAIT)
            .min(MAX_WAIT);
        until.as_nanos().div_ceil(1_000_000) as i32
    }

    fn run(mut self) -> Vec<Replica> {
        if self.listener.set_nonblocking(true).is_err()
            || self
                .epoll
                .add(self.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
                .is_err()
        {
            return self.cores;
        }
        for g in 0..self.n_groups {
            let now = self.now();
            let actions = self.cores[g].on_start(now);
            self.apply(g, actions);
        }
        self.flush_and_transmit();

        let mut events: Vec<sys::Event> = Vec::new();
        while !self.stop.load(Ordering::Relaxed) {
            events.clear();
            let timeout = self.wait_ms();
            if self.epoll.wait(&mut events, timeout).is_err() {
                break;
            }
            for ev in &events {
                if ev.token == TOKEN_LISTENER {
                    self.accept_ready();
                    continue;
                }
                if ev.writable() {
                    self.handle_writable(ev.token);
                }
                if ev.readable() && self.conns.contains_key(&ev.token) {
                    self.handle_readable(ev.token);
                }
            }
            self.process_inbox();
            self.fire_due_timers();
            // One incremental-checkpoint chunk per group per cycle: state
            // serialization rides the drive loop in O(chunk) slices
            // instead of one stop-the-world O(state) pause.
            for core in &mut self.cores {
                core.pump_checkpoint(1);
            }
            self.flush_and_transmit();
        }
        self.flush_and_transmit();
        self.cores
    }
}

/// Join handle + live metrics for one reactor node.
pub struct ReactorHandle {
    thread: std::thread::JoinHandle<Vec<Replica>>,
    metrics: ReactorMetrics,
}

impl ReactorHandle {
    /// The node's live counters.
    #[must_use]
    pub fn metrics(&self) -> ReactorMetrics {
        self.metrics.clone()
    }

    /// Join the reactor thread, returning the per-group replicas.
    pub fn join(self) -> Vec<Replica> {
        match self.thread.join() {
            Ok(replicas) => replicas,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// Spawn one reactor node hosting `group_replicas` (group `g` at index
/// `g`, all sharing one `ProcessId`) behind `listener`. `peers` maps every
/// replica node (including this one) to its listen address.
pub fn spawn_reactor_node(
    group_replicas: Vec<Replica>,
    listener: TcpListener,
    peers: HashMap<ProcessId, SocketAddr>,
    stop: Arc<AtomicBool>,
    rcfg: ReactorConfig,
) -> io::Result<ReactorHandle> {
    let n_groups = group_replicas.len();
    assert!(n_groups >= 1, "need at least one group");
    let me = group_replicas[0].id();
    for r in &group_replicas {
        assert_eq!(r.id(), me, "one node hosts one process id across groups");
    }
    let n = group_replicas[0].config().n;
    let metrics = ReactorMetrics::default();
    let reactor = Reactor {
        cores: group_replicas,
        me,
        n,
        n_groups,
        epoch: Instant::now(),
        epoll: Epoll::new()?,
        listener,
        peer_addrs: peers,
        conns: HashMap::new(),
        by_addr: HashMap::new(),
        next_token: TOKEN_LISTENER + 1,
        inbox: VecDeque::new(),
        outbox: Vec::new(),
        dirty: Vec::new(),
        timers: BinaryHeap::new(),
        gens: vec![HashMap::new(); n_groups],
        gate: AdmissionGate::new(rcfg.admit_high, rcfg.admit_low),
        rcfg,
        scratch: BytesMut::new(),
        stop,
        metrics: Arc::clone(&metrics.inner),
    };
    let thread = std::thread::Builder::new()
        .name(format!("gp-reactor-{me}"))
        .spawn(move || reactor.run())?;
    Ok(ReactorHandle { thread, metrics })
}

/// A whole replica cluster on loopback TCP, every node driven by a
/// reactor. Wire-compatible with the threaded transport: the same
/// [`SyncClient`]/[`TcpNode`] clients (and [`crate::mux::MuxSwarm`]) talk
/// to either.
pub struct ReactorCluster {
    /// Listen addresses of the replica nodes.
    pub addrs: HashMap<ProcessId, SocketAddr>,
    stop: Arc<AtomicBool>,
    nodes: Vec<ReactorHandle>,
    n: usize,
    n_groups: usize,
    router: Option<ShardRouter>,
    next_client: AtomicU64,
    coordinators: HashMap<ProcessId, FlushCoordinator>,
}

impl ReactorCluster {
    /// Launch `cfg.n` single-group reactor nodes with in-memory storage.
    pub fn launch(
        cfg: Config,
        app_factory: impl Fn() -> Box<dyn App> + Send + Sync,
    ) -> io::Result<ReactorCluster> {
        Self::launch_sharded(cfg, 1, app_factory, None, ReactorConfig::default())
    }

    /// Launch a multi-group reactor cluster with in-memory storage.
    pub fn launch_sharded(
        cfg: Config,
        n_groups: usize,
        app_factory: impl Fn() -> Box<dyn App> + Send + Sync,
        router: Option<ShardRouter>,
        rcfg: ReactorConfig,
    ) -> io::Result<ReactorCluster> {
        Self::launch_with_storage(cfg, n_groups, app_factory, router, rcfg, |_| {
            (0..n_groups)
                .map(|_| Box::new(MemStorage::new()) as Box<dyn Storage>)
                .collect()
        })
    }

    /// Launch a *durable* reactor cluster: each node's groups share one
    /// write-ahead log under `data_root/node-<id>` via a
    /// [`FlushCoordinator`]. Nodes whose directories hold prior state are
    /// recovered, not created fresh.
    pub fn launch_durable(
        cfg: Config,
        n_groups: usize,
        app_factory: impl Fn() -> Box<dyn App> + Send + Sync,
        router: Option<ShardRouter>,
        rcfg: ReactorConfig,
        data_root: impl AsRef<std::path::Path>,
        mode: SyncMode,
    ) -> io::Result<ReactorCluster> {
        let root = data_root.as_ref().to_path_buf();
        let mut coordinators = HashMap::new();
        for i in 0..cfg.n {
            let id = ProcessId(i as u32);
            let coord =
                FlushCoordinator::open(root.join(format!("node-{}", id.0)), mode, n_groups)?;
            coordinators.insert(id, coord);
        }
        let mut cluster =
            Self::launch_with_storage(cfg, n_groups, app_factory, router, rcfg, |id| {
                coordinators[&id]
                    .storages()
                    .into_iter()
                    .map(|s| Box::new(s) as Box<dyn Storage>)
                    .collect()
            })?;
        cluster.coordinators = coordinators;
        Ok(cluster)
    }

    /// Launch with custom per-node storage (`storage_factory(id)` returns
    /// one [`Storage`] per group, group `g` at index `g`). Groups whose
    /// storage holds prior state are recovered rather than created fresh.
    pub fn launch_with_storage(
        cfg: Config,
        n_groups: usize,
        app_factory: impl Fn() -> Box<dyn App> + Send + Sync,
        router: Option<ShardRouter>,
        rcfg: ReactorConfig,
        storage_factory: impl Fn(ProcessId) -> Vec<Box<dyn Storage>>,
    ) -> io::Result<ReactorCluster> {
        let n = cfg.n;
        let mut addrs = HashMap::new();
        let mut listeners = Vec::new();
        for i in 0..n {
            let id = ProcessId(i as u32);
            let listener = TcpListener::bind(SocketAddr::from(([127, 0, 0, 1], 0)))?;
            addrs.insert(id, listener.local_addr()?);
            listeners.push((id, listener));
        }

        let stop = Arc::new(AtomicBool::new(false));
        let mut nodes = Vec::new();
        for (id, listener) in listeners {
            let storages = storage_factory(id);
            assert_eq!(storages.len(), n_groups, "one storage per group");
            // One apply-worker pool per *node*: groups are the units of
            // parallelism, so a node's G cores share `apply_workers`
            // threads rather than spawning G pools.
            let pool = (cfg.apply_workers > 0)
                .then(|| gridpaxos_core::apply::ApplyPool::new(cfg.apply_workers));
            let group_replicas = storages
                .into_iter()
                .enumerate()
                .map(|(gi, storage)| {
                    let g = GroupId(gi as u32);
                    let app = match &pool {
                        Some(p) => p.wrap(app_factory()),
                        None => app_factory(),
                    };
                    let prior = storage.load();
                    let has_prior = !prior.promised.is_zero()
                        || !prior.accepted.is_empty()
                        || prior.checkpoint.is_some()
                        || prior.chosen_prefix.0 > 0;
                    if has_prior {
                        Replica::recover(
                            id,
                            group_config(&cfg, g),
                            app,
                            storage,
                            group_seed(0xace0 + u64::from(id.0), g),
                            Time::ZERO,
                        )
                    } else {
                        Replica::new(
                            id,
                            group_config(&cfg, g),
                            app,
                            storage,
                            group_seed(0xace0 + u64::from(id.0), g),
                            Time::ZERO,
                        )
                    }
                })
                .collect();
            nodes.push(spawn_reactor_node(
                group_replicas,
                listener,
                addrs.clone(),
                Arc::clone(&stop),
                rcfg,
            )?);
        }
        Ok(ReactorCluster {
            addrs,
            stop,
            nodes,
            n,
            n_groups,
            router,
            // Unique across incarnations: replicas' dedup tables outlive
            // any single client.
            next_client: AtomicU64::new(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(1)
                    | 1,
            ),
            coordinators: HashMap::new(),
        })
    }

    /// Number of consensus groups per node.
    #[must_use]
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Live metrics of node `i`.
    #[must_use]
    pub fn metrics(&self, i: usize) -> ReactorMetrics {
        self.nodes[i].metrics()
    }

    /// The WAL coordinator for node `id` (durable launches only).
    #[must_use]
    pub fn coordinator(&self, id: ProcessId) -> Option<&FlushCoordinator> {
        self.coordinators.get(&id)
    }

    /// Allocate a fresh cluster-unique client id.
    pub fn next_client_id(&self) -> ClientId {
        ClientId(self.next_client.fetch_add(1, Ordering::Relaxed))
    }

    /// Create a blocking (threaded) client connected to the whole group —
    /// the reactor speaks the same wire protocol as the threaded
    /// transport, so the existing client stack works unchanged.
    #[must_use]
    pub fn client(&self) -> SyncClient<TcpNode> {
        let id = self.next_client_id();
        let node = TcpNode::client(id, self.addrs.clone());
        let core = ClientCore::new(id, self.n, Dur::from_millis(500))
            .with_groups(self.n_groups, self.router.clone());
        SyncClient::new(core, node, self.n)
    }

    /// Stop everything and join, returning each node's per-group replicas
    /// (`result[node][group]`).
    pub fn shutdown(self) -> Vec<Vec<Replica>> {
        self.stop.store(true, Ordering::Relaxed);
        self.nodes.into_iter().map(ReactorHandle::join).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::{read_frame, write_frame};
    use bytes::Bytes;
    use gridpaxos_core::client::ShardRouter;
    use gridpaxos_core::request::{Request, RequestId, RequestKind};
    use gridpaxos_core::service::NoopApp;
    use gridpaxos_core::types::Seq;
    use std::io::{BufReader, Write};

    fn noop_factory() -> Box<dyn App> {
        Box::new(NoopApp::new())
    }

    #[test]
    fn reactor_cluster_round_trips_writes_and_reads() {
        let cluster = ReactorCluster::launch(Config::cluster(3), noop_factory).expect("launch");
        let mut client = cluster.client();
        for seq in 0..5u8 {
            let body = client
                .call(RequestKind::Write, Bytes::copy_from_slice(&[seq]))
                .expect("write completes");
            assert!(matches!(body, ReplyBody::Ok(_)), "got {body:?}");
        }
        let body = client
            .call(RequestKind::Read, Bytes::new())
            .expect("read completes");
        assert!(matches!(body, ReplyBody::Ok(_)), "got {body:?}");
        let per_node = cluster.shutdown();
        assert_eq!(per_node.len(), 3);
        assert!(
            per_node.iter().any(|rs| rs[0].chosen_prefix().0 >= 5),
            "someone chose all five writes"
        );
    }

    #[test]
    fn sharded_reactor_cluster_serves_both_groups() {
        let router = ShardRouter::new(|req| req.op.first().map(|b| u64::from(*b)));
        let cluster = ReactorCluster::launch_sharded(
            Config::cluster(3),
            2,
            noop_factory,
            Some(router),
            ReactorConfig::default(),
        )
        .expect("launch");
        let mut client = cluster.client();
        for key in [0u8, 1, 2, 3] {
            let body = client
                .call(RequestKind::Write, Bytes::copy_from_slice(&[key]))
                .expect("write completes");
            assert!(matches!(body, ReplyBody::Ok(_)), "got {body:?}");
        }
        let per_node = cluster.shutdown();
        for g in 0..2 {
            assert!(
                per_node.iter().any(|rs| rs[g].chosen_prefix().0 >= 1),
                "group {g} chose nothing"
            );
        }
    }

    /// Many virtual clients over ONE raw socket: requests from distinct
    /// client ids multiplex onto a single connection and every reply comes
    /// back over it.
    #[test]
    fn many_client_ids_multiplex_over_one_connection() {
        let cluster = ReactorCluster::launch(Config::cluster(3), noop_factory).expect("launch");
        // Dial only the bootstrap leader (replica 0) — the leader answers.
        let leader = cluster.addrs[&ProcessId(0)];
        let mut sock = TcpStream::connect(leader).expect("connect");
        sock.set_nodelay(true).ok();

        let base = cluster.next_client_id().0;
        let mut hello = BytesMut::new();
        put_addr(&mut hello, &Addr::Client(ClientId(base)));
        let mut batch = Vec::new();
        write_frame(&mut batch, &hello).expect("hello");
        let n_virtual = 32u64;
        let mut scratch = BytesMut::new();
        for v in 0..n_virtual {
            let req = Request::new(
                RequestId::new(ClientId(base + v), Seq(1)),
                RequestKind::Write,
                Bytes::copy_from_slice(&[v as u8]),
            );
            let frame = encode_with_scratch(&Msg::Request(req), &mut scratch);
            write_frame(&mut batch, frame).expect("frame");
        }
        sock.write_all(&batch).expect("send burst");

        let mut seen = std::collections::HashSet::new();
        let mut reader = BufReader::new(sock.try_clone().expect("clone"));
        sock.set_read_timeout(Some(Duration::from_secs(10))).ok();
        while seen.len() < n_virtual as usize {
            let mut frame = read_frame(&mut reader)
                .expect("read reply")
                .expect("conn open");
            let msg = decode_msg(&mut frame).expect("decode");
            if let Msg::Reply(r) = msg {
                assert!(matches!(r.body, ReplyBody::Ok(_)), "got {:?}", r.body);
                seen.insert(r.id.client.0);
            }
        }
        assert_eq!(seen.len(), n_virtual as usize);
        cluster.shutdown();
    }

    /// A burst beyond the admission gate's high-water mark is answered
    /// with immediate `Busy` sheds, and the connection keeps working.
    #[test]
    fn overload_burst_is_shed_with_busy_replies() {
        let rcfg = ReactorConfig {
            admit_high: 4,
            admit_low: 0,
            ..ReactorConfig::default()
        };
        let cluster =
            ReactorCluster::launch_sharded(Config::cluster(3), 1, noop_factory, None, rcfg)
                .expect("launch");
        let leader = cluster.addrs[&ProcessId(0)];
        let mut sock = TcpStream::connect(leader).expect("connect");
        let base = cluster.next_client_id().0;
        let burst = 256u64;
        let mut hello = BytesMut::new();
        put_addr(&mut hello, &Addr::Client(ClientId(base)));
        let mut batch = Vec::new();
        write_frame(&mut batch, &hello).expect("hello");
        sock.write_all(&batch).expect("send hello");
        let mut reader = BufReader::new(sock.try_clone().expect("clone"));
        let mut scratch = BytesMut::new();

        // This test talks to a single node, but a replica without
        // leadership silently ignores client writes (the protocol has
        // clients broadcast, so the leader's own copy answers). Retry a
        // probe write until node 0 answers it, so the burst below races
        // neither the bootstrap election nor a gate latched by it.
        let probe_client = ClientId(base + burst);
        sock.set_read_timeout(Some(Duration::from_millis(200))).ok();
        let mut warm = false;
        for _ in 0..100 {
            let req = Request::new(
                RequestId::new(probe_client, Seq(1)),
                RequestKind::Write,
                Bytes::new(),
            );
            let frame = encode_with_scratch(&Msg::Request(req), &mut scratch);
            let mut wire = Vec::new();
            write_frame(&mut wire, frame).expect("frame");
            sock.write_all(&wire).expect("send probe");
            match read_frame(&mut reader) {
                Ok(Some(mut f)) => {
                    if let Ok(Msg::Reply(r)) = decode_msg(&mut f) {
                        if r.id.client == probe_client && !r.body.is_busy() {
                            warm = true;
                            break;
                        }
                    }
                }
                Ok(None) => panic!("connection closed during warm-up"),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => panic!("warm-up read: {e}"),
            }
        }
        assert!(warm, "node 0 never answered the warm-up write");
        let shed_before = cluster.metrics(0).stats().busy_shed;

        let mut batch = Vec::new();
        for v in 0..burst {
            let req = Request::new(
                RequestId::new(ClientId(base + v), Seq(1)),
                RequestKind::Write,
                Bytes::copy_from_slice(&[v as u8]),
            );
            let frame = encode_with_scratch(&Msg::Request(req), &mut scratch);
            write_frame(&mut batch, frame).expect("frame");
        }
        sock.write_all(&batch).expect("send burst");

        let mut busy = 0u64;
        let mut ok = 0u64;
        sock.set_read_timeout(Some(Duration::from_secs(10))).ok();
        while busy + ok < burst {
            let mut frame = match read_frame(&mut reader) {
                Ok(f) => f.expect("conn open"),
                Err(e) => panic!("read reply after busy={busy} ok={ok}: {e}"),
            };
            if let Ok(Msg::Reply(r)) = decode_msg(&mut frame) {
                // Stray duplicate probe replies route here too; count
                // only the burst's clients.
                if r.id.client.0 < base + burst {
                    if r.body.is_busy() {
                        busy += 1;
                    } else {
                        ok += 1;
                    }
                }
            }
        }
        assert!(busy > 0, "a 256-burst past high-water=4 must shed");
        assert!(ok > 0, "admitted requests still complete");
        let shed = cluster.metrics(0).stats().busy_shed - shed_before;
        assert_eq!(shed, busy, "metric matches observed Busy replies");
        cluster.shutdown();
    }

    /// Durable reactor cluster: writes survive a full stop/restart via the
    /// shared WAL (the reactor path preserves persist-before-send).
    #[test]
    fn durable_reactor_cluster_recovers_chosen_prefix() {
        let root = std::env::temp_dir().join(format!(
            "gridpaxos-reactor-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let cfg = Config::cluster(3);

        let first_chosen;
        {
            let cluster = ReactorCluster::launch_durable(
                cfg.clone(),
                1,
                noop_factory,
                None,
                ReactorConfig::default(),
                &root,
                SyncMode::Batched,
            )
            .expect("launch durable");
            let mut client = cluster.client();
            for seq in 0..6u8 {
                let body = client
                    .call(RequestKind::Write, Bytes::copy_from_slice(&[seq]))
                    .expect("write completes");
                assert!(matches!(body, ReplyBody::Ok(_)), "got {body:?}");
            }
            for i in 0..cfg.n {
                let coord = cluster.coordinator(ProcessId(i as u32)).expect("coord");
                assert!(coord.appends() > 0, "node {i} persisted nothing");
            }
            let per_node = cluster.shutdown();
            first_chosen = per_node
                .iter()
                .map(|rs| rs[0].chosen_prefix())
                .max()
                .expect("nodes");
            assert!(first_chosen.0 >= 6);
        }

        let cluster = ReactorCluster::launch_durable(
            cfg,
            1,
            noop_factory,
            None,
            ReactorConfig::default(),
            &root,
            SyncMode::Batched,
        )
        .expect("relaunch durable");
        let per_node = cluster.shutdown();
        let recovered = per_node
            .iter()
            .map(|rs| rs[0].chosen_prefix())
            .max()
            .expect("nodes");
        assert!(
            recovered >= first_chosen,
            "recovered prefix {recovered:?} < pre-crash {first_chosen:?}"
        );
        std::fs::remove_dir_all(&root).ok();
    }
}
