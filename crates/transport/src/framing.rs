//! Length-prefixed framing over byte streams.
//!
//! Frame layout: `u32` little-endian payload length, then the payload
//! (one wire-encoded message, or a hello record). Matches the paper's
//! prototype, which ran everything over raw TCP sockets.

use bytes::{Bytes, BytesMut};
use std::io::{self, Read, Write};

/// Maximum accepted frame payload (64 MiB).
pub const MAX_FRAME: usize = 64 << 20;

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len();
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one frame from a stream. Returns `None` on clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Bytes>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("incoming frame of {len} bytes exceeds limit"),
        ));
    }
    let mut payload = BytesMut::zeroed(len);
    r.read_exact(&mut payload)?;
    Ok(Some(payload.freeze()))
}

/// Incremental frame decoder for nonblocking byte streams.
///
/// [`read_frame`] assumes a blocking stream: it can park the thread until
/// the whole frame arrives. A readiness loop cannot — a nonblocking read
/// hands over *whatever bytes the kernel has*, which may be half a length
/// prefix or three frames and a torn fourth. `FrameDecoder` accumulates
/// those chunks and yields complete frames as they materialize,
/// returning `Ok(None)` ("need more bytes") at any split point instead of
/// blocking.
///
/// Internally a flat buffer with a consumed-prefix cursor: consumed bytes
/// are reclaimed by compaction once they outgrow both the live remainder
/// and a fixed threshold, so steady-state decoding is amortized O(bytes)
/// with bounded slack, and a burst's capacity is released afterwards.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already handed out as frames.
    consumed: usize,
}

/// Compact (and afterwards shrink) once the dead prefix passes this many
/// bytes *and* exceeds the live remainder — so compaction moves less than
/// it reclaims.
const COMPACT_THRESHOLD: usize = 64 * 1024;

impl FrameDecoder {
    /// An empty decoder.
    #[must_use]
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes received from the stream.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet returned as frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Try to take one complete frame.
    ///
    /// Returns `Ok(None)` when the buffer holds only a partial frame (feed
    /// more bytes and retry), `Err` on an oversized length prefix (the
    /// connection should be dropped — the stream can never resynchronize).
    pub fn next_frame(&mut self) -> io::Result<Option<Bytes>> {
        let live = &self.buf[self.consumed..];
        if live.len() < 4 {
            self.maybe_compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes([live[0], live[1], live[2], live[3]]) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("incoming frame of {len} bytes exceeds limit"),
            ));
        }
        if live.len() < 4 + len {
            self.maybe_compact();
            return Ok(None);
        }
        let frame = Bytes::copy_from_slice(&live[4..4 + len]);
        self.consumed += 4 + len;
        self.maybe_compact();
        Ok(Some(frame))
    }

    fn maybe_compact(&mut self) {
        if self.consumed > COMPACT_THRESHOLD && self.consumed >= self.buf.len() - self.consumed {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
            // Don't hoard a burst's buffer once it has drained.
            if self.buf.capacity() > 4 * COMPACT_THRESHOLD && self.buf.len() < COMPACT_THRESHOLD {
                self.buf.shrink_to_fit();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();

        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap().unwrap().as_ref(), b"");
        assert_eq!(read_frame(&mut c).unwrap().unwrap().len(), 1000);
        assert!(read_frame(&mut c).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2); // cut mid-payload
        let mut c = Cursor::new(buf);
        assert!(read_frame(&mut c).is_err());
    }

    /// Drain every complete frame currently decodable.
    fn drain(dec: &mut FrameDecoder) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            out.push(f);
        }
        out
    }

    #[test]
    fn incremental_decode_split_at_every_byte_offset() {
        // The frames cover the interesting shapes: empty payload, tiny,
        // and one long enough that splits land inside the payload.
        let payloads: &[&[u8]] = &[b"hello", b"", &[7u8; 300], b"x"];
        let mut stream = Vec::new();
        for p in payloads {
            write_frame(&mut stream, p).unwrap();
        }

        // Split the whole byte stream at every offset into two chunks; the
        // decoder must yield the exact frame sequence regardless of where
        // the tear falls (mid-length-prefix, mid-payload, on a boundary).
        for cut in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            dec.extend(&stream[..cut]);
            got.extend(drain(&mut dec));
            dec.extend(&stream[cut..]);
            got.extend(drain(&mut dec));
            assert_eq!(got.len(), payloads.len(), "cut at {cut}");
            for (g, p) in got.iter().zip(payloads) {
                assert_eq!(g.as_ref(), *p, "cut at {cut}");
            }
            assert_eq!(dec.pending(), 0, "cut at {cut}");
        }
    }

    #[test]
    fn incremental_decode_byte_at_a_time() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"abc").unwrap();
        write_frame(&mut stream, &[9u8; 100]).unwrap();

        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.extend(std::slice::from_ref(b));
            got.extend(drain(&mut dec));
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].as_ref(), b"abc");
        assert_eq!(got[1].len(), 100);
    }

    #[test]
    fn incremental_decode_rejects_oversized_prefix() {
        let mut dec = FrameDecoder::new();
        dec.extend(&u32::MAX.to_le_bytes());
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn incremental_decoder_compacts_consumed_prefix() {
        let mut stream = Vec::new();
        let payload = vec![3u8; 32 * 1024];
        for _ in 0..8 {
            write_frame(&mut stream, &payload).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        assert_eq!(drain(&mut dec).len(), 8);
        assert_eq!(dec.pending(), 0);
        // After the burst drains, the internal buffer must not keep the
        // whole stream's worth of dead bytes around.
        assert!(dec.buf.len() <= COMPACT_THRESHOLD + 5 * 32 * 1024);
        dec.extend(&stream);
        assert_eq!(drain(&mut dec).len(), 8);
    }

    #[test]
    fn oversized_frame_rejected_both_ways() {
        let mut sink = Vec::new();
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut sink, &huge).is_err());

        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut c = Cursor::new(buf);
        assert!(read_frame(&mut c).is_err());
    }
}
