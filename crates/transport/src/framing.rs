//! Length-prefixed framing over byte streams.
//!
//! Frame layout: `u32` little-endian payload length, then the payload
//! (one wire-encoded message, or a hello record). Matches the paper's
//! prototype, which ran everything over raw TCP sockets.

use bytes::{Bytes, BytesMut};
use std::io::{self, Read, Write};

/// Maximum accepted frame payload (64 MiB).
pub const MAX_FRAME: usize = 64 << 20;

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len();
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one frame from a stream. Returns `None` on clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Bytes>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("incoming frame of {len} bytes exceeds limit"),
        ));
    }
    let mut payload = BytesMut::zeroed(len);
    r.read_exact(&mut payload)?;
    Ok(Some(payload.freeze()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();

        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap().unwrap().as_ref(), b"");
        assert_eq!(read_frame(&mut c).unwrap().unwrap().len(), 1000);
        assert!(read_frame(&mut c).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2); // cut mid-payload
        let mut c = Cursor::new(buf);
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn oversized_frame_rejected_both_ways() {
        let mut sink = Vec::new();
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut sink, &huge).is_err());

        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut c = Cursor::new(buf);
        assert!(read_frame(&mut c).is_err());
    }
}
