//! # gridpaxos-transport
//!
//! Real deployment substrates for the sans-io `gridpaxos` protocol core:
//!
//! * a hand-rolled binary [`wire`] codec and length-prefixed [`framing`],
//! * an in-process crossbeam-channel transport ([`inproc`]),
//! * a TCP transport with hello-frame peer identification ([`tcp`]) — the
//!   substrate the paper's prototype used,
//! * file-backed stable storage with a write-ahead log and atomic
//!   checkpoints ([`fstorage`]), making deployments crash-recoverable,
//! * event loops mapping wall-clock time onto the core's logical clock
//!   ([`node`]): threaded [`node::ReplicaNode`]s and a blocking
//!   [`node::SyncClient`],
//! * multi-group (sharded) nodes hosting one replica state machine per
//!   consensus group behind a single endpoint, with per-group execution
//!   threads ([`shard`]),
//! * a single-threaded nonblocking `epoll` reactor ([`reactor`], Linux
//!   only) multiplexing thousands of client connections over one thread
//!   per node, with explicit backpressure ([`backpressure`]) and a
//!   many-virtual-clients-per-socket load driver ([`mux`]).
//!
//! The protocol code running here is byte-for-byte the same as under the
//! `gridpaxos-simnet` simulator — that is the point of the sans-io design.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backpressure;
pub mod framing;
pub mod fstorage;
pub mod inproc;
#[cfg(target_os = "linux")]
pub mod mux;
pub mod node;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod shard;
#[cfg(target_os = "linux")]
pub mod sys;
pub mod tcp;
pub mod wire;

pub use backpressure::{AdmissionGate, FlushOutcome, SendQueue};
pub use framing::FrameDecoder;
pub use fstorage::{FileStorage, FlushCoordinator, SyncMode};
pub use inproc::{Hub, HubEndpoint};
#[cfg(target_os = "linux")]
pub use mux::{MuxReport, MuxSwarm};
pub use node::{spawn_replica, RecvResult, ReplicaNode, SyncClient, Transport};
#[cfg(target_os = "linux")]
pub use reactor::{
    spawn_reactor_node, ReactorCluster, ReactorConfig, ReactorHandle, ReactorMetrics, ReactorStats,
};
pub use shard::{spawn_sharded_node, GroupPort, ShardedNode, ShardedTcpCluster};
pub use tcp::{TcpCluster, TcpNode};
pub use wire::{decode_msg, encode_msg, encode_to_bytes, encode_with_scratch, WireError};
