//! File-backed stable storage: a write-ahead log plus an atomically
//! replaced checkpoint file. This is what makes the TCP deployment
//! actually crash-recoverable — the paper's model explicitly allows
//! processes to recover (§3.1), which requires promises and accepted
//! proposals to survive on disk.
//!
//! Layout inside the data directory:
//!
//! * `wal.log` — length-prefixed records, appended (and fsync'd, unless
//!   `sync` is off): promised ballots, accepted decrees, chosen-prefix
//!   advances.
//! * `checkpoint.bin` — the latest snapshot, written to a temp file and
//!   renamed into place (atomic on POSIX).
//!
//! `truncate_upto` compacts by rewriting the WAL with only the retained
//! records. A torn record at the WAL tail (a crash mid-append) is
//! detected and ignored — everything before it replays cleanly.

use crate::framing::{read_frame, write_frame};
use crate::wire::{
    get_ballot, get_decree, get_instance, get_snapshot, put_ballot, put_decree, put_instance,
    put_snapshot,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gridpaxos_core::ballot::Ballot;
use gridpaxos_core::command::{Decree, SnapshotBlob};
use gridpaxos_core::storage::{DurableState, Storage};
use gridpaxos_core::types::Instance;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Write};
use std::path::{Path, PathBuf};

const TAG_PROMISED: u8 = 1;
const TAG_ACCEPTED: u8 = 2;
const TAG_CHOSEN: u8 = 3;

/// Unwrap an I/O result that the durability layer cannot survive losing.
///
/// Storage failures here are fatal *by design*: the `Storage` trait's
/// persist calls must complete before the corresponding protocol message
/// is sent (persist-before-send), so continuing past a failed write would
/// silently void the crash-recovery guarantees the protocol relies on.
/// Halting is the crash-stop behavior the model assumes (§3.1).
fn fatal_io<T>(what: &str, r: io::Result<T>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("fatal storage I/O failure ({what}): {e}"),
    }
}

/// Durable [`Storage`] backed by files in a directory.
pub struct FileStorage {
    dir: PathBuf,
    wal: File,
    /// In-memory mirror (authoritative for `load`, kept in sync with disk).
    state: DurableState,
    /// fsync after every record (set false to trade durability for speed,
    /// e.g. in tests).
    sync: bool,
}

impl FileStorage {
    /// Open (or create) storage in `dir`, replaying any existing WAL.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<FileStorage> {
        Self::open_with_sync(dir, true)
    }

    /// Like [`FileStorage::open`], with explicit fsync behavior.
    pub fn open_with_sync(dir: impl AsRef<Path>, sync: bool) -> io::Result<FileStorage> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut state = DurableState::default();

        // Checkpoint first (it is the base the WAL builds on).
        let ckpt_path = dir.join("checkpoint.bin");
        if ckpt_path.exists() {
            let raw = fs::read(&ckpt_path)?;
            let mut buf = Bytes::from(raw);
            if let Ok(Some(snap)) = get_snapshot(&mut buf).map(Some) {
                state.chosen_prefix = state.chosen_prefix.max(snap.upto);
                state.checkpoint = Some(snap);
            }
        }

        // Replay the WAL; stop cleanly at a torn tail.
        let wal_path = dir.join("wal.log");
        if wal_path.exists() {
            let mut r = BufReader::new(File::open(&wal_path)?);
            loop {
                match read_frame(&mut r) {
                    Ok(Some(mut frame)) => {
                        if !replay_record(&mut frame, &mut state) {
                            break; // corrupt record: treat as torn tail
                        }
                    }
                    Ok(None) => break, // clean EOF
                    Err(_) => break,   // torn tail
                }
            }
        }

        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        Ok(FileStorage {
            dir,
            wal,
            state,
            sync,
        })
    }

    /// The data directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn append(&mut self, payload: &[u8]) {
        fatal_io("WAL append", write_frame(&mut self.wal, payload));
        if self.sync {
            fatal_io("WAL fsync", self.wal.sync_data());
        }
    }

    /// Rewrite the WAL from the in-memory mirror (compaction).
    fn rewrite_wal(&mut self) {
        let tmp = self.dir.join("wal.tmp");
        {
            let mut f = fatal_io("create wal.tmp", File::create(&tmp));
            let mut out = BytesMut::new();
            out.put_u8(TAG_PROMISED);
            put_ballot(&mut out, &self.state.promised);
            fatal_io("write wal.tmp", write_frame(&mut f, &out));
            let mut out = BytesMut::new();
            out.put_u8(TAG_CHOSEN);
            put_instance(&mut out, &self.state.chosen_prefix);
            fatal_io("write wal.tmp", write_frame(&mut f, &out));
            for (i, (b, d)) in &self.state.accepted {
                let mut out = BytesMut::new();
                out.put_u8(TAG_ACCEPTED);
                put_instance(&mut out, i);
                put_ballot(&mut out, b);
                put_decree(&mut out, d);
                fatal_io("write wal.tmp", write_frame(&mut f, &out));
            }
            if self.sync {
                fatal_io("fsync wal.tmp", f.sync_data());
            }
        }
        fatal_io("swap WAL", fs::rename(&tmp, self.dir.join("wal.log")));
        self.wal = fatal_io(
            "reopen WAL",
            OpenOptions::new()
                .append(true)
                .open(self.dir.join("wal.log")),
        );
    }
}

fn replay_record(frame: &mut Bytes, state: &mut DurableState) -> bool {
    if frame.remaining() < 1 {
        return false;
    }
    match frame.get_u8() {
        TAG_PROMISED => match get_ballot(frame) {
            Ok(b) => {
                state.promised = state.promised.max(b);
                true
            }
            Err(_) => false,
        },
        TAG_ACCEPTED => {
            let (Ok(i), Ok(b)) = (get_instance(frame), get_ballot(frame)) else {
                return false;
            };
            match get_decree(frame) {
                Ok(d) => {
                    state.accepted.insert(i, (b, d));
                    true
                }
                Err(_) => false,
            }
        }
        TAG_CHOSEN => match get_instance(frame) {
            Ok(i) => {
                state.chosen_prefix = state.chosen_prefix.max(i);
                true
            }
            Err(_) => false,
        },
        _ => false,
    }
}

impl Storage for FileStorage {
    fn save_promised(&mut self, b: Ballot) {
        self.state.promised = b;
        let mut out = BytesMut::new();
        out.put_u8(TAG_PROMISED);
        put_ballot(&mut out, &b);
        self.append(&out);
    }

    fn save_accepted(&mut self, i: Instance, b: Ballot, d: &Decree) {
        self.state.accepted.insert(i, (b, d.clone()));
        let mut out = BytesMut::new();
        out.put_u8(TAG_ACCEPTED);
        put_instance(&mut out, &i);
        put_ballot(&mut out, &b);
        put_decree(&mut out, d);
        self.append(&out);
    }

    fn save_chosen_prefix(&mut self, upto: Instance) {
        self.state.chosen_prefix = upto;
        let mut out = BytesMut::new();
        out.put_u8(TAG_CHOSEN);
        put_instance(&mut out, &upto);
        self.append(&out);
    }

    fn save_checkpoint(&mut self, snap: &SnapshotBlob) {
        self.state.checkpoint = Some(snap.clone());
        let tmp = self.dir.join("checkpoint.tmp");
        {
            let mut f = fatal_io("create checkpoint.tmp", File::create(&tmp));
            let mut out = BytesMut::new();
            put_snapshot(&mut out, snap);
            fatal_io("write checkpoint", f.write_all(&out));
            if self.sync {
                fatal_io("fsync checkpoint", f.sync_data());
            }
        }
        fatal_io(
            "swap checkpoint",
            fs::rename(&tmp, self.dir.join("checkpoint.bin")),
        );
    }

    fn truncate_upto(&mut self, upto: Instance) {
        self.state.accepted = self.state.accepted.split_off(&upto.next());
        self.rewrite_wal();
    }

    fn load(&self) -> DurableState {
        self.state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::command::{Command, StateUpdate};
    use gridpaxos_core::request::{ReplyBody, Request, RequestId, RequestKind};
    use gridpaxos_core::types::{ClientId, ProcessId, Seq};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gridpaxos-fstorage-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn ballot(r: u64) -> Ballot {
        Ballot::new(r, ProcessId(0))
    }

    fn decree(seq: u64) -> Decree {
        Decree::single(
            Command::Req(Request::new(
                RequestId::new(ClientId(1), Seq(seq)),
                RequestKind::Write,
                Bytes::from(vec![7u8; 32]),
            )),
            StateUpdate::Full(Bytes::from(vec![9u8; 16])),
            ReplyBody::Ok(Bytes::new()),
        )
    }

    #[test]
    fn survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let mut s = FileStorage::open_with_sync(&dir, false).unwrap();
            s.save_promised(ballot(3));
            for i in 1..=5u64 {
                s.save_accepted(Instance(i), ballot(3), &decree(i));
            }
            s.save_chosen_prefix(Instance(4));
        } // "crash"
        let s = FileStorage::open_with_sync(&dir, false).unwrap();
        let d = s.load();
        assert_eq!(d.promised, ballot(3));
        assert_eq!(d.accepted.len(), 5);
        assert_eq!(d.accepted[&Instance(2)].1, decree(2));
        assert_eq!(d.chosen_prefix, Instance(4));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkpoint_and_truncate_compact_the_wal() {
        let dir = tmpdir("compact");
        {
            let mut s = FileStorage::open_with_sync(&dir, false).unwrap();
            for i in 1..=20u64 {
                s.save_accepted(Instance(i), ballot(1), &decree(i));
            }
            s.save_chosen_prefix(Instance(20));
            s.save_checkpoint(&SnapshotBlob {
                upto: Instance(18),
                app: Bytes::from_static(b"app-state"),
                dedup: vec![],
            });
            let before = fs::metadata(dir.join("wal.log")).unwrap().len();
            s.truncate_upto(Instance(18));
            let after = fs::metadata(dir.join("wal.log")).unwrap().len();
            assert!(after < before, "compaction must shrink the WAL");
        }
        let s = FileStorage::open_with_sync(&dir, false).unwrap();
        let d = s.load();
        assert_eq!(d.accepted.len(), 2, "only instances 19, 20 retained");
        assert_eq!(d.checkpoint.as_ref().unwrap().upto, Instance(18));
        assert_eq!(d.chosen_prefix, Instance(20));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_ignored() {
        let dir = tmpdir("torn");
        {
            let mut s = FileStorage::open_with_sync(&dir, false).unwrap();
            s.save_promised(ballot(2));
            s.save_accepted(Instance(1), ballot(2), &decree(1));
        }
        // Simulate a crash mid-append: chop bytes off the end.
        let path = dir.join("wal.log");
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 3]).unwrap();

        let s = FileStorage::open_with_sync(&dir, false).unwrap();
        let d = s.load();
        assert_eq!(d.promised, ballot(2), "intact records replayed");
        assert!(
            d.accepted.is_empty(),
            "the torn record is discarded, not misparsed"
        );
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn replica_recovers_from_file_storage() {
        use gridpaxos_core::config::Config;
        use gridpaxos_core::replica::Replica;
        use gridpaxos_core::service::NoopApp;
        use gridpaxos_core::types::Time;

        let dir = tmpdir("replica");
        // A singleton replica commits a few writes to disk...
        {
            let storage = FileStorage::open_with_sync(&dir, false).unwrap();
            let mut r = Replica::new(
                ProcessId(0),
                Config::cluster(1),
                Box::new(NoopApp::new()),
                Box::new(storage),
                1,
                Time::ZERO,
            );
            let _ = r.on_start(Time::ZERO);
            for seq in 1..=3u64 {
                let req = Request::new(
                    RequestId::new(ClientId(1), Seq(seq)),
                    RequestKind::Write,
                    Bytes::new(),
                );
                let _ = r.on_message(
                    gridpaxos_core::types::Addr::Client(ClientId(1)),
                    gridpaxos_core::msg::Msg::Request(req),
                    Time(seq),
                );
            }
            assert_eq!(r.chosen_prefix(), Instance(3));
        } // crash

        // ...and a recovered incarnation replays them from disk.
        let storage = FileStorage::open_with_sync(&dir, false).unwrap();
        let r = Replica::recover(
            ProcessId(0),
            Config::cluster(1),
            Box::new(NoopApp::new()),
            Box::new(storage),
            2,
            Time::ZERO,
        );
        assert_eq!(r.chosen_prefix(), Instance(3));
        let snap = r.service_snapshot();
        assert_eq!(u64::from_le_bytes(snap[..8].try_into().unwrap()), 3);
        fs::remove_dir_all(dir).ok();
    }
}
