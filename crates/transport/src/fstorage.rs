//! File-backed stable storage: a write-ahead log plus atomically
//! replaced checkpoint files. This is what makes the TCP deployment
//! actually crash-recoverable — the paper's model explicitly allows
//! processes to recover (§3.1), which requires promises and accepted
//! proposals to survive on disk.
//!
//! Layout inside the data directory:
//!
//! * `wal.log` — length-prefixed records, appended: promised ballots,
//!   accepted decrees, chosen-prefix advances. In a multi-group
//!   deployment every group sharing the directory appends to this one
//!   log (records for group `g > 0` carry a group envelope; group 0
//!   records stay byte-identical to the single-group format).
//! * `checkpoint.bin` (group 0) / `checkpoint-g<N>.bin` — the latest
//!   snapshot per group, written to a temp file and renamed into place
//!   (atomic on POSIX). After the rename the *directory* is fsync'd so
//!   the replacement itself survives power loss.
//!
//! Durability is governed by [`SyncMode`]:
//!
//! * [`SyncMode::PerRecord`] — `sync_data` after every appended record,
//!   the classic persist-before-send discipline (one fsync per record).
//! * [`SyncMode::Batched`] — group commit: appends only write; the
//!   [`Storage::flush`] barrier issues one `sync_data` covering every
//!   record appended since the previous barrier. The drive loop in
//!   [`crate::node`] calls `flush()` after draining a batch of events
//!   and *before* transmitting any resulting message, so
//!   persist-before-send still holds — at batch granularity.
//! * [`SyncMode::Never`] — no fsync at all (tests only).
//!
//! A [`FlushCoordinator`] opens one shared log for all `G` groups of a
//! node: every group's handle appends into the same file, and whichever
//! group reaches its flush barrier first syncs everything — the other
//! groups then observe clean storage and skip their own fsync. That is
//! what collapses `G` per-group fsyncs per drain cycle into one.
//!
//! `truncate_upto` compacts by rewriting the WAL with only the retained
//! records (all groups). A torn record at the WAL tail (a crash
//! mid-append) is detected and ignored — everything before it replays
//! cleanly.

use crate::framing::{read_frame, write_frame};
use crate::wire::{
    get_ballot, get_decree, get_dedup_table, get_instance, get_snapshot, put_ballot, put_decree,
    put_dedup_table, put_instance, put_snapshot,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gridpaxos_core::ballot::Ballot;
use gridpaxos_core::command::{Decree, DedupEntry, SnapshotBlob};
use gridpaxos_core::storage::{ChunkedCheckpoint, DurableState, Storage};
use gridpaxos_core::types::Instance;
use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const TAG_PROMISED: u8 = 1;
const TAG_ACCEPTED: u8 = 2;
const TAG_CHOSEN: u8 = 3;
/// Envelope for a record belonging to group `> 0` in a shared WAL:
/// `TAG_GROUP, u32 LE group, <bare record>`. Group 0 records are written
/// bare so a single-group WAL stays byte-identical to the original
/// format.
const TAG_GROUP: u8 = 4;

/// When the write-ahead log reaches the platter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncMode {
    /// `sync_data` after every record — one fsync per persist call.
    PerRecord,
    /// Group commit: records only append; the [`Storage::flush`] barrier
    /// issues one `sync_data` covering everything since the last barrier.
    Batched,
    /// Never fsync (tests; durability limited to surviving process exit).
    Never,
}

/// Unwrap an I/O result that the durability layer cannot survive losing.
///
/// Storage failures here are fatal *by design*: the `Storage` trait's
/// persist calls must complete before the corresponding protocol message
/// is sent (persist-before-send), so continuing past a failed write would
/// silently void the crash-recovery guarantees the protocol relies on.
/// Halting is the crash-stop behavior the model assumes (§3.1).
fn fatal_io<T>(what: &str, r: io::Result<T>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("fatal storage I/O failure ({what}): {e}"),
    }
}

/// A chunked checkpoint mid-stream: the temp file being written plus the
/// in-memory mirror of the chunks that have passed through it.
struct PendingChunked {
    file: File,
    ck: ChunkedCheckpoint,
    total: usize,
}

/// Shared state of one data directory's WAL (all groups).
struct WalInner {
    dir: PathBuf,
    wal: File,
    /// In-memory mirror per group (authoritative for `load`, kept in sync
    /// with disk).
    states: Vec<DurableState>,
    /// Pending (uncommitted) chunked checkpoint per group.
    pending_chunks: Vec<Option<PendingChunked>>,
    /// Latest committed chunked checkpoint per group (mirrors the
    /// `checkpoint*.chunks` file).
    chunked: Vec<Option<ChunkedCheckpoint>>,
    mode: SyncMode,
    /// Records appended since the last `sync_data` barrier.
    dirty: bool,
    /// Total records appended (all groups).
    appends: u64,
    /// Total WAL `sync_data` calls issued (all groups). `appends / syncs`
    /// is the amortization factor group commit buys.
    syncs: u64,
}

impl WalInner {
    fn checkpoint_path(&self, group: u32) -> PathBuf {
        if group == 0 {
            self.dir.join("checkpoint.bin")
        } else {
            self.dir.join(format!("checkpoint-g{group}.bin"))
        }
    }

    fn chunked_path(&self, group: u32) -> PathBuf {
        chunked_path(&self.dir, group)
    }

    fn chunked_tmp_path(&self, group: u32) -> PathBuf {
        if group == 0 {
            self.dir.join("checkpoint.chunks.tmp")
        } else {
            self.dir.join(format!("checkpoint-g{group}.chunks.tmp"))
        }
    }

    fn append(&mut self, group: u32, record: &[u8]) {
        if group == 0 {
            fatal_io("WAL append", write_frame(&mut self.wal, record));
        } else {
            let mut wrapped = BytesMut::with_capacity(record.len() + 5);
            wrapped.put_u8(TAG_GROUP);
            wrapped.put_u32_le(group);
            wrapped.extend_from_slice(record);
            fatal_io("WAL append", write_frame(&mut self.wal, &wrapped));
        }
        self.appends += 1;
        match self.mode {
            SyncMode::PerRecord => {
                fatal_io("WAL fsync", self.wal.sync_data());
                self.syncs += 1;
            }
            SyncMode::Batched => self.dirty = true,
            SyncMode::Never => {}
        }
    }

    /// The group-commit barrier: one `sync_data` covers every record
    /// appended (by any group) since the previous barrier.
    fn flush(&mut self) {
        if self.dirty {
            fatal_io("WAL fsync (flush barrier)", self.wal.sync_data());
            self.syncs += 1;
            self.dirty = false;
        }
    }

    /// Rewrite the WAL from the in-memory mirrors (compaction).
    fn rewrite_wal(&mut self) {
        let tmp = self.dir.join("wal.tmp");
        {
            let mut f = fatal_io("create wal.tmp", File::create(&tmp));
            for (g, state) in self.states.iter().enumerate() {
                let g = g as u32;
                let mut out = BytesMut::new();
                out.put_u8(TAG_PROMISED);
                put_ballot(&mut out, &state.promised);
                write_compacted(&mut f, g, &out);
                let mut out = BytesMut::new();
                out.put_u8(TAG_CHOSEN);
                put_instance(&mut out, &state.chosen_prefix);
                write_compacted(&mut f, g, &out);
                for (i, (b, d)) in &state.accepted {
                    let mut out = BytesMut::new();
                    out.put_u8(TAG_ACCEPTED);
                    put_instance(&mut out, i);
                    put_ballot(&mut out, b);
                    put_decree(&mut out, d);
                    write_compacted(&mut f, g, &out);
                }
            }
            if self.mode != SyncMode::Never {
                fatal_io("fsync wal.tmp", f.sync_data());
            }
        }
        fatal_io("swap WAL", fs::rename(&tmp, self.dir.join("wal.log")));
        if self.mode != SyncMode::Never {
            sync_dir(&self.dir);
        }
        self.wal = fatal_io(
            "reopen WAL",
            OpenOptions::new()
                .append(true)
                .open(self.dir.join("wal.log")),
        );
        // The fresh log was synced before the swap; nothing is pending.
        self.dirty = false;
    }

    fn save_checkpoint(&mut self, group: u32, snap: &SnapshotBlob) {
        let tmp = self.dir.join(format!("checkpoint-g{group}.tmp"));
        {
            let mut f = fatal_io("create checkpoint.tmp", File::create(&tmp));
            let mut out = BytesMut::new();
            put_snapshot(&mut out, snap);
            fatal_io("write checkpoint", f.write_all(&out));
            if self.mode != SyncMode::Never {
                fatal_io("fsync checkpoint", f.sync_data());
            }
        }
        fatal_io(
            "swap checkpoint",
            fs::rename(&tmp, self.checkpoint_path(group)),
        );
        // Without this the atomic replacement itself can be lost on power
        // failure even though the temp file's *contents* were synced: the
        // rename lives in the directory, not the file.
        if self.mode != SyncMode::Never {
            sync_dir(&self.dir);
        }
        // A monolithic save supersedes any committed chunked image; drop
        // its file so a stale (lower-`upto`) one can't win on reopen.
        self.chunked[group as usize] = None;
        let _ = fs::remove_file(self.chunked_path(group));
    }

    fn chunked_begin(&mut self, group: u32, upto: Instance, dedup: &[DedupEntry], total: usize) {
        let tmp = self.chunked_tmp_path(group);
        let mut file = fatal_io("create chunks.tmp", File::create(&tmp));
        // Header frame: apply epoch, expected chunk count, dedup table.
        let mut out = BytesMut::new();
        put_instance(&mut out, &upto);
        out.put_u32_le(u32::try_from(total).unwrap_or(u32::MAX));
        put_dedup_table(&mut out, dedup);
        fatal_io("write chunks header", write_frame(&mut file, &out));
        self.pending_chunks[group as usize] = Some(PendingChunked {
            file,
            ck: ChunkedCheckpoint {
                upto,
                dedup: dedup.to_vec(),
                chunks: Vec::with_capacity(total),
            },
            total,
        });
    }

    fn chunked_chunk(&mut self, group: u32, idx: usize, data: Bytes) {
        if let Some(p) = &mut self.pending_chunks[group as usize] {
            debug_assert_eq!(idx, p.ck.chunks.len(), "chunks arrive in order");
            fatal_io("write chunk frame", write_frame(&mut p.file, &data));
            p.ck.chunks.push(data);
        }
    }

    fn chunked_commit(&mut self, group: u32) {
        let Some(p) = self.pending_chunks[group as usize].take() else {
            return;
        };
        debug_assert_eq!(p.ck.chunks.len(), p.total, "commit of a complete image");
        if self.mode != SyncMode::Never {
            fatal_io("fsync chunks", p.file.sync_data());
        }
        fatal_io(
            "swap chunked checkpoint",
            fs::rename(self.chunked_tmp_path(group), self.chunked_path(group)),
        );
        if self.mode != SyncMode::Never {
            sync_dir(&self.dir);
        }
        // The chunked image is now authoritative; the stale monolithic
        // file (and its mirror) must not resurrect an older state.
        self.states[group as usize].checkpoint = None;
        let _ = fs::remove_file(self.checkpoint_path(group));
        self.chunked[group as usize] = Some(p.ck);
    }

    fn chunked_abort(&mut self, group: u32) {
        if self.pending_chunks[group as usize].take().is_some() {
            let _ = fs::remove_file(self.chunked_tmp_path(group));
        }
    }
}

fn chunked_path(dir: &Path, group: u32) -> PathBuf {
    if group == 0 {
        dir.join("checkpoint.chunks")
    } else {
        dir.join(format!("checkpoint-g{group}.chunks"))
    }
}

/// Parse a committed `*.chunks` file: a header frame (`upto`, chunk
/// count, dedup table) followed by one frame per chunk. Returns `None`
/// on any inconsistency — commit renames atomically, so a malformed file
/// is corruption and the WAL-replayed state stands on its own.
fn read_chunked(path: &Path) -> Option<ChunkedCheckpoint> {
    let mut r = BufReader::new(File::open(path).ok()?);
    let mut header = read_frame(&mut r).ok()??;
    let upto = get_instance(&mut header).ok()?;
    if header.remaining() < 4 {
        return None;
    }
    let total = header.get_u32_le() as usize;
    let dedup = get_dedup_table(&mut header).ok()?;
    let mut chunks = Vec::with_capacity(total);
    while let Ok(Some(frame)) = read_frame(&mut r) {
        chunks.push(frame);
    }
    (chunks.len() == total).then_some(ChunkedCheckpoint {
        upto,
        dedup,
        chunks,
    })
}

fn write_compacted(f: &mut File, group: u32, record: &[u8]) {
    if group == 0 {
        fatal_io("write wal.tmp", write_frame(f, record));
    } else {
        let mut wrapped = BytesMut::with_capacity(record.len() + 5);
        wrapped.put_u8(TAG_GROUP);
        wrapped.put_u32_le(group);
        wrapped.extend_from_slice(record);
        fatal_io("write wal.tmp", write_frame(f, &wrapped));
    }
}

/// fsync a directory so a rename performed inside it is durable.
fn sync_dir(dir: &Path) {
    let d = fatal_io("open data dir for fsync", File::open(dir));
    fatal_io("fsync data dir", d.sync_all());
}

/// Durable [`Storage`] backed by files in a directory — the handle for
/// one consensus group's share of the (possibly shared) write-ahead log.
pub struct FileStorage {
    inner: Arc<Mutex<WalInner>>,
    group: u32,
}

impl FileStorage {
    /// Open (or create) single-group storage in `dir`, replaying any
    /// existing WAL. Per-record fsync (the conservative default).
    pub fn open(dir: impl AsRef<Path>) -> io::Result<FileStorage> {
        Self::open_with_mode(dir, SyncMode::PerRecord)
    }

    /// Like [`FileStorage::open`], with explicit legacy fsync behavior:
    /// `true` is per-record sync, `false` never syncs.
    pub fn open_with_sync(dir: impl AsRef<Path>, sync: bool) -> io::Result<FileStorage> {
        Self::open_with_mode(
            dir,
            if sync {
                SyncMode::PerRecord
            } else {
                SyncMode::Never
            },
        )
    }

    /// Open (or create) single-group storage in `dir` with an explicit
    /// [`SyncMode`].
    pub fn open_with_mode(dir: impl AsRef<Path>, mode: SyncMode) -> io::Result<FileStorage> {
        let coord = FlushCoordinator::open(dir, mode, 1)?;
        Ok(coord.storage(0))
    }

    /// The data directory.
    #[must_use]
    pub fn dir(&self) -> PathBuf {
        self.inner.lock().dir.clone()
    }

    /// Records appended to the (shared) WAL so far.
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.inner.lock().appends
    }

    /// WAL `sync_data` calls issued so far. Group commit amortizes:
    /// `syncs` grows per flush barrier, not per record.
    #[must_use]
    pub fn syncs(&self) -> u64 {
        self.inner.lock().syncs
    }
}

fn replay_record(frame: &mut Bytes, states: &mut Vec<DurableState>, max_groups: usize) -> bool {
    if frame.remaining() < 1 {
        return false;
    }
    let tag = frame.get_u8();
    let group = if tag == TAG_GROUP {
        if frame.remaining() < 5 {
            return false;
        }
        let g = frame.get_u32_le() as usize;
        if g >= max_groups {
            return false; // a WAL from a larger deployment: refuse
        }
        g
    } else {
        0
    };
    while states.len() <= group {
        states.push(DurableState::default());
    }
    let state = &mut states[group];
    let tag = if tag == TAG_GROUP {
        if frame.remaining() < 1 {
            return false;
        }
        frame.get_u8()
    } else {
        tag
    };
    match tag {
        TAG_PROMISED => match get_ballot(frame) {
            Ok(b) => {
                state.promised = state.promised.max(b);
                true
            }
            Err(_) => false,
        },
        TAG_ACCEPTED => {
            let (Ok(i), Ok(b)) = (get_instance(frame), get_ballot(frame)) else {
                return false;
            };
            match get_decree(frame) {
                Ok(d) => {
                    state.accepted.insert(i, (b, d));
                    true
                }
                Err(_) => false,
            }
        }
        TAG_CHOSEN => match get_instance(frame) {
            Ok(i) => {
                state.chosen_prefix = state.chosen_prefix.max(i);
                true
            }
            Err(_) => false,
        },
        _ => false,
    }
}

impl Storage for FileStorage {
    fn save_promised(&mut self, b: Ballot) {
        let mut inner = self.inner.lock();
        inner.states[self.group as usize].promised = b;
        let mut out = BytesMut::new();
        out.put_u8(TAG_PROMISED);
        put_ballot(&mut out, &b);
        inner.append(self.group, &out);
    }

    fn save_accepted(&mut self, i: Instance, b: Ballot, d: &Decree) {
        let mut inner = self.inner.lock();
        inner.states[self.group as usize]
            .accepted
            .insert(i, (b, d.clone()));
        let mut out = BytesMut::new();
        out.put_u8(TAG_ACCEPTED);
        put_instance(&mut out, &i);
        put_ballot(&mut out, &b);
        put_decree(&mut out, d);
        inner.append(self.group, &out);
    }

    fn save_chosen_prefix(&mut self, upto: Instance) {
        let mut inner = self.inner.lock();
        inner.states[self.group as usize].chosen_prefix = upto;
        let mut out = BytesMut::new();
        out.put_u8(TAG_CHOSEN);
        put_instance(&mut out, &upto);
        inner.append(self.group, &out);
    }

    fn save_checkpoint(&mut self, snap: &SnapshotBlob) {
        let mut inner = self.inner.lock();
        inner.states[self.group as usize].checkpoint = Some(snap.clone());
        inner.save_checkpoint(self.group, snap);
    }

    fn truncate_upto(&mut self, upto: Instance) {
        let mut inner = self.inner.lock();
        let g = self.group as usize;
        inner.states[g].accepted = inner.states[g].accepted.split_off(&upto.next());
        inner.rewrite_wal();
    }

    fn load(&self) -> DurableState {
        let inner = self.inner.lock();
        let mut d = inner.states[self.group as usize].clone();
        if let Some(ck) = &inner.chunked[self.group as usize] {
            if d.checkpoint.as_ref().is_none_or(|c| c.upto < ck.upto) {
                d.checkpoint = Some(ck.assemble());
            }
        }
        d
    }

    fn flush(&mut self) {
        self.inner.lock().flush();
    }

    fn is_dirty(&self) -> bool {
        self.inner.lock().dirty
    }

    fn write_count(&self) -> u64 {
        self.inner.lock().appends
    }

    fn supports_chunked_checkpoint(&self) -> bool {
        true
    }

    fn checkpoint_begin(&mut self, upto: Instance, dedup: &[DedupEntry], total: usize) {
        self.inner
            .lock()
            .chunked_begin(self.group, upto, dedup, total);
    }

    fn checkpoint_chunk(&mut self, idx: usize, data: Bytes) {
        self.inner.lock().chunked_chunk(self.group, idx, data);
    }

    fn checkpoint_commit(&mut self) {
        self.inner.lock().chunked_commit(self.group);
    }

    fn checkpoint_abort(&mut self) {
        self.inner.lock().chunked_abort(self.group);
    }

    fn checkpoint_chunks(&self) -> Option<ChunkedCheckpoint> {
        self.inner.lock().chunked[self.group as usize].clone()
    }
}

/// One node's durability plane: all `G` groups sharing a data directory
/// append into a single write-ahead log, so one [`Storage::flush`]
/// barrier — issued by whichever group's drive loop reaches it first —
/// covers every group's pending records with a single fsync per drain
/// cycle instead of `G` independent ones.
pub struct FlushCoordinator {
    inner: Arc<Mutex<WalInner>>,
    n_groups: usize,
}

impl FlushCoordinator {
    /// Open (or create) the shared log in `dir` for `n_groups` groups,
    /// replaying any existing WAL and per-group checkpoints. Opening a
    /// WAL that contains records for group `>= n_groups` fails (a
    /// differently sized deployment's data directory).
    pub fn open(
        dir: impl AsRef<Path>,
        mode: SyncMode,
        n_groups: usize,
    ) -> io::Result<FlushCoordinator> {
        assert!(n_groups >= 1, "need at least one group");
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut states: Vec<DurableState> =
            (0..n_groups).map(|_| DurableState::default()).collect();

        // Checkpoints first (they are the base the WAL builds on).
        let mut chunked: Vec<Option<ChunkedCheckpoint>> = (0..n_groups).map(|_| None).collect();
        for (g, state) in states.iter_mut().enumerate() {
            let path = if g == 0 {
                dir.join("checkpoint.bin")
            } else {
                dir.join(format!("checkpoint-g{g}.bin"))
            };
            if path.exists() {
                let raw = fs::read(&path)?;
                let mut buf = Bytes::from(raw);
                if let Ok(snap) = get_snapshot(&mut buf) {
                    state.chosen_prefix = state.chosen_prefix.max(snap.upto);
                    state.checkpoint = Some(snap);
                }
            }
            let cpath = chunked_path(&dir, g as u32);
            if cpath.exists() {
                if let Some(ck) = read_chunked(&cpath) {
                    // Whichever image covers more instances wins; commit
                    // deletes the loser's file, so a tie is impossible
                    // short of a crash between rename and unlink.
                    if state.checkpoint.as_ref().is_none_or(|c| c.upto < ck.upto) {
                        state.chosen_prefix = state.chosen_prefix.max(ck.upto);
                        state.checkpoint = None;
                        chunked[g] = Some(ck);
                    }
                }
            }
        }

        // Replay the WAL; stop cleanly at a torn tail. A record for an
        // out-of-range group also stops the replay (same as a corrupt
        // record: nothing after it can be trusted to belong to us).
        let wal_path = dir.join("wal.log");
        if wal_path.exists() {
            let mut r = BufReader::new(File::open(&wal_path)?);
            loop {
                match read_frame(&mut r) {
                    Ok(Some(mut frame)) => {
                        if !replay_record(&mut frame, &mut states, n_groups) {
                            break; // corrupt record: treat as torn tail
                        }
                    }
                    Ok(None) => break, // clean EOF
                    Err(_) => break,   // torn tail
                }
            }
        }

        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        Ok(FlushCoordinator {
            inner: Arc::new(Mutex::new(WalInner {
                dir,
                wal,
                states,
                pending_chunks: (0..n_groups).map(|_| None).collect(),
                chunked,
                mode,
                dirty: false,
                appends: 0,
                syncs: 0,
            })),
            n_groups,
        })
    }

    /// Number of groups sharing this log.
    #[must_use]
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// The [`Storage`] handle for group `g`.
    ///
    /// # Panics
    /// If `g >= n_groups`.
    #[must_use]
    pub fn storage(&self, g: usize) -> FileStorage {
        assert!(g < self.n_groups, "group {g} out of range");
        FileStorage {
            inner: Arc::clone(&self.inner),
            group: g as u32,
        }
    }

    /// Handles for every group, in group order.
    #[must_use]
    pub fn storages(&self) -> Vec<FileStorage> {
        (0..self.n_groups).map(|g| self.storage(g)).collect()
    }

    /// Records appended to the shared WAL so far (all groups).
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.inner.lock().appends
    }

    /// WAL `sync_data` calls issued so far (all groups). With group
    /// commit, `appends / syncs` is the amortization factor.
    #[must_use]
    pub fn syncs(&self) -> u64 {
        self.inner.lock().syncs
    }

    /// Whether records are pending the next flush barrier.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.inner.lock().dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::command::{Command, StateUpdate};
    use gridpaxos_core::request::{ReplyBody, Request, RequestId, RequestKind};
    use gridpaxos_core::types::{ClientId, ProcessId, Seq};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gridpaxos-fstorage-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn ballot(r: u64) -> Ballot {
        Ballot::new(r, ProcessId(0))
    }

    fn decree(seq: u64) -> Decree {
        Decree::single(
            Command::Req(Request::new(
                RequestId::new(ClientId(1), Seq(seq)),
                RequestKind::Write,
                Bytes::from(vec![7u8; 32]),
            )),
            StateUpdate::Full(Bytes::from(vec![9u8; 16])),
            ReplyBody::Ok(Bytes::new()),
        )
    }

    #[test]
    fn survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let mut s = FileStorage::open_with_sync(&dir, false).unwrap();
            s.save_promised(ballot(3));
            for i in 1..=5u64 {
                s.save_accepted(Instance(i), ballot(3), &decree(i));
            }
            s.save_chosen_prefix(Instance(4));
        } // "crash"
        let s = FileStorage::open_with_sync(&dir, false).unwrap();
        let d = s.load();
        assert_eq!(d.promised, ballot(3));
        assert_eq!(d.accepted.len(), 5);
        assert_eq!(d.accepted[&Instance(2)].1, decree(2));
        assert_eq!(d.chosen_prefix, Instance(4));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkpoint_and_truncate_compact_the_wal() {
        let dir = tmpdir("compact");
        {
            let mut s = FileStorage::open_with_sync(&dir, false).unwrap();
            for i in 1..=20u64 {
                s.save_accepted(Instance(i), ballot(1), &decree(i));
            }
            s.save_chosen_prefix(Instance(20));
            s.save_checkpoint(&SnapshotBlob {
                upto: Instance(18),
                app: Bytes::from_static(b"app-state"),
                dedup: vec![],
            });
            let before = fs::metadata(dir.join("wal.log")).unwrap().len();
            s.truncate_upto(Instance(18));
            let after = fs::metadata(dir.join("wal.log")).unwrap().len();
            assert!(after < before, "compaction must shrink the WAL");
        }
        let s = FileStorage::open_with_sync(&dir, false).unwrap();
        let d = s.load();
        assert_eq!(d.accepted.len(), 2, "only instances 19, 20 retained");
        assert_eq!(d.checkpoint.as_ref().unwrap().upto, Instance(18));
        assert_eq!(d.chosen_prefix, Instance(20));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn chunked_checkpoint_survives_reopen_and_supersedes_monolithic() {
        let dir = tmpdir("chunked");
        {
            let mut s = FileStorage::open_with_sync(&dir, false).unwrap();
            for i in 1..=8u64 {
                s.save_accepted(Instance(i), ballot(1), &decree(i));
            }
            s.save_chosen_prefix(Instance(8));
            // An older monolithic checkpoint that the chunked image must
            // supersede.
            s.save_checkpoint(&SnapshotBlob {
                upto: Instance(2),
                app: Bytes::from_static(b"old"),
                dedup: vec![],
            });
            assert!(s.supports_chunked_checkpoint());
            s.checkpoint_begin(Instance(6), &[], 3);
            s.checkpoint_chunk(0, Bytes::from_static(b"aa"));
            s.checkpoint_chunk(1, Bytes::from_static(b"bbb"));
            // Uncommitted: load still sees the monolithic image.
            assert_eq!(s.load().checkpoint.unwrap().upto, Instance(2));
            s.checkpoint_chunk(2, Bytes::from_static(b"c"));
            s.checkpoint_commit();
            let d = s.load();
            assert_eq!(d.checkpoint.as_ref().unwrap().upto, Instance(6));
            assert_eq!(&d.checkpoint.unwrap().app[..], b"aabbbc");
            assert!(!dir.join("checkpoint.bin").exists(), "stale file removed");
            let ck = s.checkpoint_chunks().unwrap();
            assert_eq!(ck.chunks.len(), 3, "chunks retained for catch-up");
            s.truncate_upto(Instance(6));
        } // crash
        let s = FileStorage::open_with_sync(&dir, false).unwrap();
        let d = s.load();
        assert_eq!(d.checkpoint.as_ref().unwrap().upto, Instance(6));
        assert_eq!(&d.checkpoint.unwrap().app[..], b"aabbbc");
        assert_eq!(d.accepted.len(), 2, "only instances 7, 8 retained");
        assert_eq!(d.chosen_prefix, Instance(8));
        let ck = s.checkpoint_chunks().unwrap();
        assert_eq!(ck.upto, Instance(6));
        assert_eq!(
            ck.chunks,
            vec![
                Bytes::from_static(b"aa"),
                Bytes::from_static(b"bbb"),
                Bytes::from_static(b"c")
            ]
        );
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn monolithic_save_supersedes_chunked_on_disk() {
        let dir = tmpdir("chunked-supersede");
        {
            let mut s = FileStorage::open_with_sync(&dir, false).unwrap();
            s.checkpoint_begin(Instance(3), &[], 1);
            s.checkpoint_chunk(0, Bytes::from_static(b"chunked"));
            s.checkpoint_commit();
            s.save_checkpoint(&SnapshotBlob {
                upto: Instance(5),
                app: Bytes::from_static(b"mono"),
                dedup: vec![],
            });
            assert!(s.checkpoint_chunks().is_none());
            assert!(!dir.join("checkpoint.chunks").exists());
        }
        let s = FileStorage::open_with_sync(&dir, false).unwrap();
        let d = s.load();
        assert_eq!(d.checkpoint.as_ref().unwrap().upto, Instance(5));
        assert_eq!(&d.checkpoint.unwrap().app[..], b"mono");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_ignored() {
        let dir = tmpdir("torn");
        {
            let mut s = FileStorage::open_with_sync(&dir, false).unwrap();
            s.save_promised(ballot(2));
            s.save_accepted(Instance(1), ballot(2), &decree(1));
        }
        // Simulate a crash mid-append: chop bytes off the end.
        let path = dir.join("wal.log");
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 3]).unwrap();

        let s = FileStorage::open_with_sync(&dir, false).unwrap();
        let d = s.load();
        assert_eq!(d.promised, ballot(2), "intact records replayed");
        assert!(
            d.accepted.is_empty(),
            "the torn record is discarded, not misparsed"
        );
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn replica_recovers_from_file_storage() {
        use gridpaxos_core::config::Config;
        use gridpaxos_core::replica::Replica;
        use gridpaxos_core::service::NoopApp;
        use gridpaxos_core::types::Time;

        let dir = tmpdir("replica");
        // A singleton replica commits a few writes to disk...
        {
            let storage = FileStorage::open_with_sync(&dir, false).unwrap();
            let mut r = Replica::new(
                ProcessId(0),
                Config::cluster(1),
                Box::new(NoopApp::new()),
                Box::new(storage),
                1,
                Time::ZERO,
            );
            let _ = r.on_start(Time::ZERO);
            for seq in 1..=3u64 {
                let req = Request::new(
                    RequestId::new(ClientId(1), Seq(seq)),
                    RequestKind::Write,
                    Bytes::new(),
                );
                let _ = r.on_message(
                    gridpaxos_core::types::Addr::Client(ClientId(1)),
                    gridpaxos_core::msg::Msg::Request(req),
                    Time(seq),
                );
            }
            assert_eq!(r.chosen_prefix(), Instance(3));
        } // crash

        // ...and a recovered incarnation replays them from disk.
        let storage = FileStorage::open_with_sync(&dir, false).unwrap();
        let r = Replica::recover(
            ProcessId(0),
            Config::cluster(1),
            Box::new(NoopApp::new()),
            Box::new(storage),
            2,
            Time::ZERO,
        );
        assert_eq!(r.chosen_prefix(), Instance(3));
        let snap = r.service_snapshot();
        assert_eq!(u64::from_le_bytes(snap[..8].try_into().unwrap()), 3);
        fs::remove_dir_all(dir).ok();
    }

    /// Per-record sync mode must write exactly the bytes the original
    /// always-sync implementation wrote: bare tagged records, one frame
    /// each, no group envelopes — a WAL from before group commit replays
    /// identically and vice versa.
    #[test]
    fn per_record_wal_bytes_are_unchanged() {
        let dir = tmpdir("bytes");
        {
            let mut s = FileStorage::open_with_mode(&dir, SyncMode::PerRecord).unwrap();
            s.save_promised(ballot(3));
            s.save_accepted(Instance(1), ballot(3), &decree(1));
            s.save_chosen_prefix(Instance(1));
        }
        let got = fs::read(dir.join("wal.log")).unwrap();

        // Golden encoding, assembled by hand.
        let mut expect = Vec::new();
        let mut rec = BytesMut::new();
        rec.put_u8(TAG_PROMISED);
        put_ballot(&mut rec, &ballot(3));
        write_frame(&mut expect, &rec).unwrap();
        let mut rec = BytesMut::new();
        rec.put_u8(TAG_ACCEPTED);
        put_instance(&mut rec, &Instance(1));
        put_ballot(&mut rec, &ballot(3));
        put_decree(&mut rec, &decree(1));
        write_frame(&mut expect, &rec).unwrap();
        let mut rec = BytesMut::new();
        rec.put_u8(TAG_CHOSEN);
        put_instance(&mut rec, &Instance(1));
        write_frame(&mut expect, &rec).unwrap();
        assert_eq!(got, expect, "per-record WAL bytes changed");

        // Batched mode appends the same bytes; only the fsync schedule
        // differs.
        let dir2 = tmpdir("bytes-batched");
        {
            let mut s = FileStorage::open_with_mode(&dir2, SyncMode::Batched).unwrap();
            s.save_promised(ballot(3));
            s.save_accepted(Instance(1), ballot(3), &decree(1));
            s.save_chosen_prefix(Instance(1));
            s.flush();
        }
        assert_eq!(fs::read(dir2.join("wal.log")).unwrap(), expect);
        fs::remove_dir_all(dir).ok();
        fs::remove_dir_all(dir2).ok();
    }

    #[test]
    fn counters_expose_group_commit_amortization() {
        let dir = tmpdir("counters");
        let mut s = FileStorage::open_with_mode(&dir, SyncMode::Batched).unwrap();
        for i in 1..=10u64 {
            s.save_accepted(Instance(i), ballot(1), &decree(i));
        }
        assert_eq!(s.appends(), 10);
        assert_eq!(s.syncs(), 0, "no record forced its own fsync");
        assert!(s.is_dirty());
        s.flush();
        assert_eq!(s.syncs(), 1, "one barrier covered all ten records");
        assert!(!s.is_dirty());
        s.flush();
        assert_eq!(s.syncs(), 1, "clean flush is free");

        let dir2 = tmpdir("counters-pr");
        let mut p = FileStorage::open_with_mode(&dir2, SyncMode::PerRecord).unwrap();
        for i in 1..=10u64 {
            p.save_accepted(Instance(i), ballot(1), &decree(i));
        }
        assert_eq!((p.appends(), p.syncs()), (10, 10));
        assert!(!p.is_dirty(), "per-record mode is never dirty");
        fs::remove_dir_all(dir).ok();
        fs::remove_dir_all(dir2).ok();
    }

    #[test]
    fn shared_wal_coalesces_groups_and_survives_reopen() {
        let dir = tmpdir("shared");
        {
            let coord = FlushCoordinator::open(&dir, SyncMode::Batched, 3).unwrap();
            let mut handles = coord.storages();
            // Interleaved appends from three groups, one barrier.
            handles[0].save_promised(ballot(1));
            handles[1].save_promised(ballot(2));
            handles[2].save_promised(ballot(3));
            handles[1].save_accepted(Instance(1), ballot(2), &decree(1));
            handles[2].save_chosen_prefix(Instance(0));
            assert_eq!(coord.appends(), 5);
            assert!(coord.is_dirty());
            handles[0].flush(); // whichever group reaches its barrier first
            assert_eq!(coord.syncs(), 1, "one fsync covered all three groups");
            // The other groups observe clean storage and skip.
            assert!(!handles[1].is_dirty());
            assert!(!handles[2].is_dirty());
            handles[1].flush();
            handles[2].flush();
            assert_eq!(coord.syncs(), 1);
            // Per-group checkpoints land in distinct files.
            handles[1].save_checkpoint(&SnapshotBlob {
                upto: Instance(1),
                app: Bytes::from_static(b"g1"),
                dedup: vec![],
            });
            assert!(dir.join("checkpoint-g1.bin").exists());
            assert!(!dir.join("checkpoint.bin").exists());
        } // crash
        let coord = FlushCoordinator::open(&dir, SyncMode::Batched, 3).unwrap();
        let d0 = coord.storage(0).load();
        let d1 = coord.storage(1).load();
        let d2 = coord.storage(2).load();
        assert_eq!(d0.promised, ballot(1));
        assert_eq!(d1.promised, ballot(2));
        assert_eq!(d1.accepted[&Instance(1)].1, decree(1));
        assert_eq!(d1.checkpoint.as_ref().unwrap().upto, Instance(1));
        assert_eq!(d2.promised, ballot(3));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn shared_wal_compaction_retains_every_group() {
        let dir = tmpdir("shared-compact");
        {
            let coord = FlushCoordinator::open(&dir, SyncMode::Never, 2).unwrap();
            let mut handles = coord.storages();
            for i in 1..=6u64 {
                handles[0].save_accepted(Instance(i), ballot(1), &decree(i));
                handles[1].save_accepted(Instance(i), ballot(1), &decree(i + 100));
            }
            handles[0].save_chosen_prefix(Instance(6));
            // Group 0 compacts; group 1's records must survive the rewrite.
            handles[0].truncate_upto(Instance(4));
        }
        let coord = FlushCoordinator::open(&dir, SyncMode::Never, 2).unwrap();
        let d0 = coord.storage(0).load();
        let d1 = coord.storage(1).load();
        assert_eq!(
            d0.accepted.keys().copied().collect::<Vec<_>>(),
            vec![Instance(5), Instance(6)]
        );
        assert_eq!(d0.chosen_prefix, Instance(6));
        assert_eq!(d1.accepted.len(), 6, "other group untouched by compaction");
        assert_eq!(d1.accepted[&Instance(3)].1, decree(103));
        fs::remove_dir_all(dir).ok();
    }

    /// Crash-torture: truncate the WAL at *every* byte boundary inside a
    /// multi-record group-commit batch and assert replay recovers exactly
    /// the longest intact prefix of records — never a misparse, never a
    /// lost intact record.
    #[test]
    fn torture_truncation_replays_exact_prefix() {
        let dir = tmpdir("torture");
        // Record the WAL length after each append: the durability
        // boundaries replay must respect.
        let mut boundaries = vec![0u64];
        let mut prefix_states: Vec<DurableState> = vec![DurableState::default()];
        {
            let mut s = FileStorage::open_with_mode(&dir, SyncMode::Batched).unwrap();
            let mut model = DurableState::default();
            let save = |s: &mut FileStorage, model: &mut DurableState, step: usize| match step {
                0 => {
                    s.save_promised(ballot(7));
                    model.promised = ballot(7);
                }
                1..=3 => {
                    let i = step as u64;
                    s.save_accepted(Instance(i), ballot(7), &decree(i));
                    model.accepted.insert(Instance(i), (ballot(7), decree(i)));
                }
                _ => {
                    s.save_chosen_prefix(Instance(2));
                    model.chosen_prefix = Instance(2);
                }
            };
            for step in 0..5 {
                save(&mut s, &mut model, step);
                boundaries.push(fs::metadata(dir.join("wal.log")).unwrap().len());
                prefix_states.push(model.clone());
            }
            s.flush();
        }
        let raw = fs::read(dir.join("wal.log")).unwrap();
        assert_eq!(*boundaries.last().unwrap(), raw.len() as u64);

        for cut in 0..=raw.len() {
            let tdir = tmpdir(&format!("torture-cut{cut}"));
            fs::create_dir_all(&tdir).unwrap();
            fs::write(tdir.join("wal.log"), &raw[..cut]).unwrap();
            let s = FileStorage::open_with_mode(&tdir, SyncMode::Batched).unwrap();
            let got = s.load();
            // The longest intact prefix: every record whose frame ends at
            // or before the cut.
            let k = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            let want = &prefix_states[k];
            assert_eq!(
                (got.promised, got.chosen_prefix, got.accepted.len()),
                (want.promised, want.chosen_prefix, want.accepted.len()),
                "cut at byte {cut}: expected prefix of {k} records"
            );
            assert_eq!(got.accepted, want.accepted, "cut at byte {cut}");
            fs::remove_dir_all(tdir).ok();
        }
        fs::remove_dir_all(dir).ok();
    }
}
