//! Backpressure primitives for the reactor transport.
//!
//! Two independent mechanisms, composed by [`crate::reactor`]:
//!
//! * [`SendQueue`] — a **byte-bounded** per-connection outbound queue.
//!   A peer that stops reading cannot make the node buffer unboundedly;
//!   once the cap is reached, further frames are refused (the caller
//!   counts the drop — Paxos retransmission recovers coordination
//!   traffic, client retry timers recover replies). The queue tolerates
//!   partial writes: a frame interrupted by `EWOULDBLOCK` resumes at the
//!   exact byte offset on the next writable event.
//!
//! * [`AdmissionGate`] — a node-wide hysteresis switch over inbound
//!   load. Above the high-water mark the gate **sheds**: new client
//!   requests are answered immediately with `ReplyBody::Busy` instead of
//!   entering the protocol. Shedding persists until load falls to the
//!   low-water mark, so a node hovering at the threshold does not
//!   flap between admitting and refusing on every message.

use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{self, Write};

/// Outcome of [`SendQueue::flush_into`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushOutcome {
    /// Everything queued has reached the kernel.
    Drained,
    /// The socket refused more bytes (`EWOULDBLOCK`); frames remain
    /// queued and the connection needs `EPOLLOUT` to continue.
    Blocked,
}

/// A byte-bounded outbound frame queue with partial-write resumption.
#[derive(Debug)]
pub struct SendQueue {
    frames: VecDeque<Bytes>,
    /// Bytes of `frames[0]` already written to the socket.
    head_off: usize,
    /// Total unwritten bytes across all queued frames.
    queued: usize,
    cap: usize,
    dropped: u64,
}

impl SendQueue {
    /// An empty queue refusing frames once `cap` unwritten bytes are held.
    #[must_use]
    pub fn new(cap: usize) -> SendQueue {
        SendQueue {
            frames: VecDeque::new(),
            head_off: 0,
            queued: 0,
            cap,
            dropped: 0,
        }
    }

    /// Unwritten bytes currently held.
    #[must_use]
    pub fn queued_bytes(&self) -> usize {
        self.queued
    }

    /// Whether nothing is waiting to be written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frames refused because the queue was at capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether the queue is at or above its byte cap.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.queued >= self.cap
    }

    /// Enqueue one encoded frame. Returns `false` (and counts a drop) if
    /// the queue already holds `cap` or more unwritten bytes. A frame is
    /// never truncated: admission is all-or-nothing, so the cap can be
    /// exceeded by at most one frame.
    pub fn push(&mut self, frame: Bytes) -> bool {
        if self.is_full() {
            self.dropped += 1;
            return false;
        }
        self.queued += frame.len();
        self.frames.push_back(frame);
        true
    }

    /// Write as much queued data as the socket accepts, resuming any
    /// partially-written head frame. Uses plain `write` (never
    /// `write_all`) so a slow peer blocks the *connection*, not the
    /// reactor thread.
    pub fn flush_into(&mut self, w: &mut impl Write) -> io::Result<FlushOutcome> {
        while let Some(head) = self.frames.front() {
            let rest = &head[self.head_off..];
            match w.write(rest) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.queued -= n;
                    if n == rest.len() {
                        self.head_off = 0;
                        self.frames.pop_front();
                    } else {
                        self.head_off += n;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(FlushOutcome::Blocked);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(FlushOutcome::Drained)
    }
}

/// Node-wide admission control with high/low-water hysteresis.
///
/// `update(load)` feeds the current backlog (the reactor uses its inbox
/// length); the gate latches into shedding at `load >= high` and out of
/// it at `load <= low`.
#[derive(Debug)]
pub struct AdmissionGate {
    high: usize,
    low: usize,
    shedding: bool,
    shed_count: u64,
}

impl AdmissionGate {
    /// A gate engaging at `high` and releasing at `low`. If the caller
    /// passes `low >= high` the low mark is clamped below the high mark
    /// so the hysteresis band is never empty.
    #[must_use]
    pub fn new(high: usize, low: usize) -> AdmissionGate {
        let high = high.max(1);
        AdmissionGate {
            high,
            low: low.min(high - 1),
            shedding: false,
            shed_count: 0,
        }
    }

    /// Feed the current load; returns whether the gate is now shedding.
    pub fn update(&mut self, load: usize) -> bool {
        if self.shedding {
            if load <= self.low {
                self.shedding = false;
            }
        } else if load >= self.high {
            self.shedding = true;
        }
        self.shedding
    }

    /// Whether the gate is currently shedding (as of the last `update`).
    #[must_use]
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }

    /// Record one shed request (for metrics).
    pub fn count_shed(&mut self) {
        self.shed_count += 1;
    }

    /// Requests shed so far.
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shed_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer accepting at most `budget` bytes per call, then
    /// `WouldBlock` — a socket whose peer stalls.
    struct Throttled {
        accepted: Vec<u8>,
        budget: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
            }
            let n = buf.len().min(self.budget);
            self.budget -= n;
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn queue_never_exceeds_cap_under_stalled_reader() {
        let mut q = SendQueue::new(100);
        let frame = Bytes::from(vec![1u8; 40]);
        let mut stalled = Throttled {
            accepted: Vec::new(),
            budget: 0,
        };
        let mut accepted = 0u32;
        for _ in 0..1000 {
            if q.push(frame.clone()) {
                accepted += 1;
            }
            assert_eq!(q.flush_into(&mut stalled).unwrap(), FlushOutcome::Blocked);
            // Cap (100) may be exceeded by at most one whole frame (40).
            assert!(q.queued_bytes() <= 100 + 40);
        }
        assert_eq!(accepted, 3, "3 * 40 = 120 >= cap, fourth refused");
        assert_eq!(q.dropped(), 997);
        assert!(q.is_full());
    }

    #[test]
    fn partial_writes_resume_at_exact_offset() {
        let mut q = SendQueue::new(1 << 20);
        let a: Vec<u8> = (0..=255).collect();
        let b: Vec<u8> = (0..100).map(|i| i ^ 0xAA).collect();
        q.push(Bytes::from(a.clone()));
        q.push(Bytes::from(b.clone()));

        // Drain through a writer that takes 7 bytes per writable event.
        let mut out = Vec::new();
        loop {
            let mut w = Throttled {
                accepted: Vec::new(),
                budget: 7,
            };
            let outcome = q.flush_into(&mut w).unwrap();
            out.extend_from_slice(&w.accepted);
            if outcome == FlushOutcome::Drained {
                break;
            }
        }
        let mut want = a;
        want.extend_from_slice(&b);
        assert_eq!(out, want, "byte stream identical despite partial writes");
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
    }

    #[test]
    fn drained_queue_accepts_again() {
        let mut q = SendQueue::new(10);
        assert!(q.push(Bytes::from(vec![0u8; 10])));
        assert!(!q.push(Bytes::from(vec![0u8; 1])), "at cap");
        let mut w = Throttled {
            accepted: Vec::new(),
            budget: usize::MAX,
        };
        assert_eq!(q.flush_into(&mut w).unwrap(), FlushOutcome::Drained);
        assert!(q.push(Bytes::from(vec![0u8; 1])), "space again after drain");
    }

    #[test]
    fn gate_sheds_above_high_water_and_readmits_below_low() {
        let mut g = AdmissionGate::new(100, 50);
        assert!(!g.update(99), "below high: admitting");
        assert!(g.update(100), "at high: shedding");
        assert!(g.update(75), "hysteresis: still shedding between marks");
        assert!(g.update(51), "still above low");
        assert!(!g.update(50), "at low: re-admitting");
        assert!(!g.update(99), "stays open until high again");
        assert!(g.update(150));
    }

    #[test]
    fn gate_clamps_inverted_watermarks() {
        let mut g = AdmissionGate::new(10, 10);
        assert!(g.update(10));
        assert!(g.update(10), "low clamped below high: still shedding at 10");
        assert!(!g.update(9));
    }

    #[test]
    fn shed_counter_accumulates() {
        let mut g = AdmissionGate::new(2, 0);
        g.update(5);
        g.count_shed();
        g.count_shed();
        assert_eq!(g.shed_count(), 2);
    }
}
