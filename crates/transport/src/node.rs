//! Event loops that drive the sans-io cores over a real [`Transport`]:
//! [`ReplicaNode`] for service processes and [`SyncClient`] for blocking
//! client calls. Real wall-clock time is mapped onto the core's logical
//! [`Time`] from a per-process epoch.
//!
//! ## Group commit: the flush barrier
//!
//! The replica loop is *batched*: each cycle drains every already-queued
//! message (and all due timers) through the core first, buffering the
//! resulting `Send`/`ToAllReplicas` actions in an outbox instead of
//! transmitting them one by one. It then calls [`Replica::flush_storage`]
//! — one `sync_data` covering every WAL record the whole batch appended —
//! and only after that barrier hands the buffered frames to the
//! transport. Persist-before-send (§3.1/§3.3) therefore still holds
//! exactly: no `Promise`/`Accepted` reaches the wire before the storage
//! write it acknowledges is durable; the fsync is merely amortized over
//! the batch instead of paid per record.

use gridpaxos_core::action::{Action, TimerKind};
use gridpaxos_core::client::{ClientCore, TxnDriver, TxnOutcome, TxnScript};
use gridpaxos_core::msg::Msg;
use gridpaxos_core::replica::Replica;
use gridpaxos_core::request::{ReplyBody, RequestKind};
use gridpaxos_core::types::{Addr, ProcessId, Time};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of one blocking receive.
pub enum RecvResult {
    /// A message arrived from `0` (the sender's address).
    Msg(Addr, Msg),
    /// The timeout elapsed.
    Timeout,
    /// The transport is closed; the node should exit.
    Closed,
}

/// A bidirectional message transport for one process.
pub trait Transport: Send {
    /// Send `msg` to `to`. Best-effort: delivery failures are dropped (the
    /// protocol's retransmissions and timeouts take care of recovery).
    fn send(&self, to: Addr, msg: Msg);
    /// Block for up to `timeout` waiting for the next message.
    fn recv_timeout(&self, timeout: Duration) -> RecvResult;
    /// This process's address.
    fn local_addr(&self) -> Addr;
}

/// Maximum sleep per loop iteration so stop flags are honored promptly.
const MAX_WAIT: Duration = Duration::from_millis(25);

/// Cap on messages drained through the core per flush cycle, so one
/// barrier never starves the outbox indefinitely under sustained load.
const MAX_DRAIN: usize = 128;

/// A buffered outbound action, transmitted only after the flush barrier.
enum Out {
    One(Addr, Msg),
    All(Msg),
}

/// Fan a message out to every replica (optionally skipping `me`), moving
/// the original into the final send so an `n`-way broadcast pays `n - 1`
/// clones instead of `n`.
fn broadcast<T: Transport>(transport: &T, n: usize, me: Option<Addr>, msg: Msg) {
    let targets = (0..n)
        .map(|i| Addr::Replica(ProcessId(i as u32)))
        .filter(|to| Some(*to) != me);
    let mut pending: Option<Addr> = None;
    for to in targets {
        if let Some(prev) = pending.replace(to) {
            transport.send(prev, msg.clone());
        }
    }
    if let Some(last) = pending {
        transport.send(last, msg);
    }
}

/// Drives a [`Replica`] over a [`Transport`].
pub struct ReplicaNode<T: Transport> {
    replica: Replica,
    transport: T,
    epoch: Instant,
    timers: BinaryHeap<Reverse<(u64, u8, u64)>>, // (due ns, kind idx, gen)
    gens: HashMap<TimerKind, u64>,
    stop: Arc<AtomicBool>,
    /// Sends buffered during the current drain cycle; transmitted only
    /// after the storage flush barrier.
    outbox: Vec<Out>,
}

fn kind_idx(k: TimerKind) -> u8 {
    match k {
        TimerKind::Heartbeat => 0,
        TimerKind::LeaderCheck => 1,
        TimerKind::Retransmit => 2,
        TimerKind::Election => 3,
        TimerKind::ClientRetry => 4,
        TimerKind::BatchWindow => 5,
    }
}

fn idx_kind(i: u8) -> TimerKind {
    match i {
        0 => TimerKind::Heartbeat,
        1 => TimerKind::LeaderCheck,
        2 => TimerKind::Retransmit,
        3 => TimerKind::Election,
        5 => TimerKind::BatchWindow,
        _ => TimerKind::ClientRetry,
    }
}

impl<T: Transport> ReplicaNode<T> {
    /// Wrap a replica and its transport. `stop` terminates the loop.
    pub fn new(replica: Replica, transport: T, stop: Arc<AtomicBool>) -> ReplicaNode<T> {
        ReplicaNode {
            replica,
            transport,
            epoch: Instant::now(),
            timers: BinaryHeap::new(),
            gens: HashMap::new(),
            stop,
            outbox: Vec::new(),
        }
    }

    fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Interpret one handler invocation's actions. Sends are *buffered*,
    /// not transmitted: they leave via [`ReplicaNode::flush_and_transmit`]
    /// after the storage barrier.
    fn apply(&mut self, actions: Vec<Action>) {
        let now = self.now();
        for a in actions {
            match a {
                Action::Send { to, msg } => self.outbox.push(Out::One(to, msg)),
                Action::ToAllReplicas { msg } => self.outbox.push(Out::All(msg)),
                Action::SetTimer { kind, after } => {
                    let gen = self.gens.entry(kind).or_insert(0);
                    *gen += 1;
                    self.timers
                        .push(Reverse((now.0 + after.0, kind_idx(kind), *gen)));
                }
                Action::CancelTimer { kind } => {
                    *self.gens.entry(kind).or_insert(0) += 1;
                }
            }
        }
    }

    /// The group-commit barrier: make every WAL record the drained batch
    /// appended durable with one `flush()`, then hand the buffered frames
    /// to the transport. Nothing is sent while storage is dirty — that is
    /// the whole persist-before-send argument at batch granularity.
    fn flush_and_transmit(&mut self) {
        if self.outbox.is_empty() {
            return;
        }
        if self.replica.storage_dirty() {
            self.replica.flush_storage();
        }
        let me = self.transport.local_addr();
        let n = self.replica.config().n;
        for out in std::mem::take(&mut self.outbox) {
            match out {
                Out::One(to, msg) => self.transport.send(to, msg),
                Out::All(msg) => broadcast(&self.transport, n, Some(me), msg),
            }
        }
    }

    fn fire_due_timers(&mut self) {
        loop {
            let now = self.now();
            let Some(Reverse((due, ki, gen))) = self.timers.peek().copied() else {
                return;
            };
            if due > now.0 {
                return;
            }
            self.timers.pop();
            let kind = idx_kind(ki);
            if self.gens.get(&kind).copied() != Some(gen) {
                continue; // cancelled or replaced
            }
            let actions = self.replica.on_timer(kind, now);
            self.apply(actions);
        }
    }

    fn handle(&mut self, from: Addr, msg: Msg) {
        let now = self.now();
        let actions = self.replica.on_message(from, msg, now);
        self.apply(actions);
    }

    /// Run until the stop flag is raised or the transport closes. Returns
    /// the replica (e.g. to inspect state in tests).
    ///
    /// Each cycle is one group-commit batch: block for the first message,
    /// then drain everything already queued (and all due timers) through
    /// the core, then [`ReplicaNode::flush_and_transmit`] — one fsync per
    /// cycle, however many records the batch persisted.
    pub fn run(mut self) -> Replica {
        let start_actions = self.replica.on_start(self.now());
        self.apply(start_actions);
        self.flush_and_transmit();
        'outer: while !self.stop.load(Ordering::Relaxed) {
            self.fire_due_timers();
            // One incremental-checkpoint chunk per cycle: serialization
            // rides the drive loop in O(chunk) slices.
            self.replica.pump_checkpoint(1);
            self.flush_and_transmit();
            let wait = self
                .timers
                .peek()
                .map(|Reverse((due, _, _))| Duration::from_nanos(due.saturating_sub(self.now().0)))
                .unwrap_or(MAX_WAIT)
                .min(MAX_WAIT);
            match self.transport.recv_timeout(wait) {
                RecvResult::Msg(from, msg) => {
                    self.handle(from, msg);
                    // Batched recv: everything already waiting joins this
                    // cycle's batch and shares its single flush below.
                    let mut drained = 1;
                    while drained < MAX_DRAIN {
                        match self.transport.recv_timeout(Duration::ZERO) {
                            RecvResult::Msg(from, msg) => {
                                self.handle(from, msg);
                                drained += 1;
                            }
                            RecvResult::Timeout => break,
                            RecvResult::Closed => {
                                self.flush_and_transmit();
                                break 'outer;
                            }
                        }
                    }
                    self.fire_due_timers();
                    self.flush_and_transmit();
                }
                RecvResult::Timeout => {}
                RecvResult::Closed => break,
            }
        }
        self.flush_and_transmit();
        self.replica
    }
}

/// Spawn a replica node on its own OS thread. Fails only if the OS
/// refuses to create the thread.
pub fn spawn_replica<T: Transport + 'static>(
    replica: Replica,
    transport: T,
    stop: Arc<AtomicBool>,
) -> std::io::Result<std::thread::JoinHandle<Replica>> {
    std::thread::Builder::new()
        .name(format!("gridpaxos-{}", replica.id()))
        .spawn(move || ReplicaNode::new(replica, transport, stop).run())
}

/// A blocking client handle: one outstanding request, automatic
/// retransmission, synchronous call interface.
pub struct SyncClient<T: Transport> {
    core: ClientCore,
    transport: T,
    epoch: Instant,
    retry_deadline: Option<u64>,
    n: usize,
}

impl<T: Transport> SyncClient<T> {
    /// Wrap a client core and its transport. `n` is the replica count.
    pub fn new(core: ClientCore, transport: T, n: usize) -> SyncClient<T> {
        SyncClient {
            core,
            transport,
            epoch: Instant::now(),
            retry_deadline: None,
            n,
        }
    }

    fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_nanos() as u64)
    }

    fn apply(&mut self, actions: Vec<Action>) {
        let now = self.now();
        for a in actions {
            match a {
                Action::Send { to, msg } => self.transport.send(to, msg),
                Action::ToAllReplicas { msg } => {
                    broadcast(&self.transport, self.n, None, msg);
                }
                Action::SetTimer {
                    kind: TimerKind::ClientRetry,
                    after,
                } => self.retry_deadline = Some(now.0 + after.0),
                Action::CancelTimer {
                    kind: TimerKind::ClientRetry,
                } => self.retry_deadline = None,
                _ => {}
            }
        }
    }

    /// Await the completion of the outstanding request.
    fn await_reply(&mut self, overall_deadline: Duration) -> Option<ReplyBody> {
        let started = Instant::now();
        loop {
            if started.elapsed() > overall_deadline {
                return None;
            }
            // Fire the retransmission timer if due.
            if let Some(due) = self.retry_deadline {
                if self.now().0 >= due {
                    self.retry_deadline = None;
                    let actions = self.core.on_timer(TimerKind::ClientRetry, self.now());
                    self.apply(actions);
                }
            }
            let wait = self
                .retry_deadline
                .map(|due| Duration::from_nanos(due.saturating_sub(self.now().0)))
                .unwrap_or(MAX_WAIT)
                .min(MAX_WAIT);
            match self.transport.recv_timeout(wait) {
                RecvResult::Msg(_, msg) => {
                    let now = self.now();
                    let (done, actions) = self.core.on_message(msg, now);
                    self.apply(actions);
                    if let Some(done) = done {
                        return Some(done.body);
                    }
                }
                RecvResult::Timeout => {}
                RecvResult::Closed => return None,
            }
        }
    }

    /// Issue one request and block for its reply (10 s overall deadline).
    pub fn call(&mut self, kind: RequestKind, payload: bytes::Bytes) -> Option<ReplyBody> {
        let now = self.now();
        let actions = self.core.submit_op(kind, payload, now);
        self.apply(actions);
        self.await_reply(Duration::from_secs(10))
    }

    /// Run a whole transaction and block until it commits or aborts.
    pub fn run_txn(&mut self, script: TxnScript) -> Option<TxnOutcome> {
        let txn = self.core.next_txn_id();
        let mut driver = TxnDriver::new(script, txn);
        loop {
            let now = self.now();
            let actions = driver.step(&mut self.core, now)?;
            self.apply(actions);
            let body = self.await_reply(Duration::from_secs(10))?;
            // Reconstruct the completed op for the driver.
            let done = gridpaxos_core::client::CompletedOp {
                req: gridpaxos_core::request::Request::new(
                    gridpaxos_core::request::RequestId::new(
                        self.core.id(),
                        gridpaxos_core::types::Seq(0),
                    ),
                    RequestKind::Write,
                    bytes::Bytes::new(),
                ),
                body,
                leader: ProcessId(0),
                rtt: gridpaxos_core::types::Dur::ZERO,
                retries: 0,
            };
            // The driver keys on the body for terminal outcomes and counts
            // op replies otherwise; mark the request as a txn op so
            // mid-transaction replies advance it.
            let mut done = done;
            done.req.txn = Some(gridpaxos_core::request::TxnCtl::Op { txn });
            if let Some(outcome) = driver.on_complete(&done) {
                return Some(outcome);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inproc::Hub;
    use bytes::Bytes;
    use gridpaxos_core::ballot::Ballot;
    use gridpaxos_core::command::{Decree, SnapshotBlob};
    use gridpaxos_core::config::Config;
    use gridpaxos_core::request::ReplyBody;
    use gridpaxos_core::service::NoopApp;
    use gridpaxos_core::storage::{DurableState, MemStorage, Storage};
    use gridpaxos_core::types::{ClientId, Dur, Instance};
    use std::sync::atomic::AtomicU64;

    /// [`Storage`] instrumentation: mirrors the dirty bit into a shared
    /// flag the transport wrapper below can observe.
    struct FlagStorage {
        inner: MemStorage,
        dirty: Arc<AtomicBool>,
    }

    impl Storage for FlagStorage {
        fn save_promised(&mut self, b: Ballot) {
            self.inner.save_promised(b);
            self.dirty.store(true, Ordering::SeqCst);
        }
        fn save_accepted(&mut self, i: Instance, b: Ballot, d: &Decree) {
            self.inner.save_accepted(i, b, d);
            self.dirty.store(true, Ordering::SeqCst);
        }
        fn save_chosen_prefix(&mut self, upto: Instance) {
            self.inner.save_chosen_prefix(upto);
            self.dirty.store(true, Ordering::SeqCst);
        }
        fn save_checkpoint(&mut self, snap: &SnapshotBlob) {
            self.inner.save_checkpoint(snap);
            self.dirty.store(true, Ordering::SeqCst);
        }
        fn truncate_upto(&mut self, upto: Instance) {
            self.inner.truncate_upto(upto);
        }
        fn load(&self) -> DurableState {
            self.inner.load()
        }
        fn flush(&mut self) {
            self.dirty.store(false, Ordering::SeqCst);
        }
        fn is_dirty(&self) -> bool {
            self.dirty.load(Ordering::SeqCst)
        }
    }

    /// Transport instrumentation: every `Promise`/`Accepted` handed to the
    /// wire while the replica's storage is still dirty is a
    /// persist-before-send violation.
    struct GateTransport<T: Transport> {
        inner: T,
        dirty: Arc<AtomicBool>,
        gated_sends: Arc<AtomicU64>,
        violations: Arc<AtomicU64>,
    }

    impl<T: Transport> Transport for GateTransport<T> {
        fn send(&self, to: Addr, msg: Msg) {
            if matches!(msg, Msg::Promise { .. } | Msg::Accepted { .. }) {
                self.gated_sends.fetch_add(1, Ordering::SeqCst);
                if self.dirty.load(Ordering::SeqCst) {
                    self.violations.fetch_add(1, Ordering::SeqCst);
                }
            }
            self.inner.send(to, msg);
        }
        fn recv_timeout(&self, timeout: Duration) -> RecvResult {
            self.inner.recv_timeout(timeout)
        }
        fn local_addr(&self) -> Addr {
            self.inner.local_addr()
        }
    }

    /// Batch-granular persist-before-send: no `Promise`/`Accepted` frame
    /// may reach the transport before the `flush()` covering the record it
    /// acknowledges — the drive loop's outbox + barrier must guarantee it.
    #[test]
    fn no_promise_or_accepted_escapes_before_the_covering_flush() {
        let cfg = Config::cluster(3);
        let hub = Hub::new();
        let stop = Arc::new(AtomicBool::new(false));
        let gated = Arc::new(AtomicU64::new(0));
        let violations = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for i in 0..cfg.n {
            let id = ProcessId(i as u32);
            let dirty = Arc::new(AtomicBool::new(false));
            let storage = FlagStorage {
                inner: MemStorage::new(),
                dirty: Arc::clone(&dirty),
            };
            let replica = Replica::new(
                id,
                cfg.clone(),
                Box::new(NoopApp::new()),
                Box::new(storage),
                41 + u64::from(id.0),
                Time::ZERO,
            );
            let transport = GateTransport {
                inner: hub.endpoint(Addr::Replica(id)),
                dirty,
                gated_sends: Arc::clone(&gated),
                violations: Arc::clone(&violations),
            };
            handles.push(spawn_replica(replica, transport, Arc::clone(&stop)).expect("spawn"));
        }

        let cid = ClientId(900);
        let core = ClientCore::new(cid, cfg.n, Dur::from_millis(200));
        let mut client = SyncClient::new(core, hub.endpoint(Addr::Client(cid)), cfg.n);
        for seq in 0..5u8 {
            let body = client
                .call(RequestKind::Write, Bytes::copy_from_slice(&[seq]))
                .expect("write completes");
            assert!(matches!(body, ReplyBody::Ok(_)), "got {body:?}");
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("replica thread");
        }
        assert!(
            gated.load(Ordering::SeqCst) > 0,
            "the workload must actually exercise Promise/Accepted sends"
        );
        assert_eq!(
            violations.load(Ordering::SeqCst),
            0,
            "a Promise/Accepted frame reached the transport before its flush"
        );
    }

    #[test]
    fn timer_kind_index_roundtrips() {
        for k in [
            TimerKind::Heartbeat,
            TimerKind::LeaderCheck,
            TimerKind::Retransmit,
            TimerKind::Election,
            TimerKind::ClientRetry,
            TimerKind::BatchWindow,
        ] {
            assert_eq!(idx_kind(kind_idx(k)), k);
        }
    }
}
