//! Hand-rolled binary wire format for protocol messages.
//!
//! Little-endian fixed-width integers, `u32`-length-prefixed byte strings,
//! one tag byte per enum variant. No external serialization crate: the
//! format is small, explicit and fuzzable (see the proptest round-trips in
//! the test module).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gridpaxos_core::ballot::Ballot;
use gridpaxos_core::command::{
    AcceptedEntry, Command, Decree, DecreeEntry, DedupEntry, SnapshotBlob, StateUpdate,
};
use gridpaxos_core::msg::Msg;
use gridpaxos_core::request::{
    AbortReason, Reply, ReplyBody, Request, RequestId, RequestKind, TxnCtl,
};
use gridpaxos_core::types::{Addr, ClientId, GroupId, Instance, ProcessId, Seq, TxnId};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// Unknown tag byte for the named type.
    BadTag {
        /// Which type was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix exceeded the sanity limit.
    TooLong(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag:#x} for {what}"),
            WireError::TooLong(n) => write!(f, "length {n} exceeds limit"),
        }
    }
}

impl std::error::Error for WireError {}

/// Largest single byte-string we accept (16 MiB) — guards against
/// corrupted length prefixes allocating unbounded memory.
const MAX_BYTES: usize = 16 << 20;

type Result<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------
// Primitive helpers
// ---------------------------------------------------------------------

fn need(buf: &impl Buf, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut impl Buf) -> Result<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut impl Buf) -> Result<u32> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut impl Buf) -> Result<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn put_bytes(out: &mut BytesMut, b: &[u8]) {
    out.put_u32_le(b.len() as u32);
    out.put_slice(b);
}

fn get_bytes(buf: &mut Bytes) -> Result<Bytes> {
    let len = get_u32(buf)? as usize;
    if len > MAX_BYTES {
        return Err(WireError::TooLong(len));
    }
    need(buf, len)?;
    Ok(buf.split_to(len))
}

fn put_opt<T>(out: &mut BytesMut, v: &Option<T>, enc: impl FnOnce(&mut BytesMut, &T)) {
    match v {
        None => out.put_u8(0),
        Some(x) => {
            out.put_u8(1);
            enc(out, x);
        }
    }
}

fn get_opt<T>(buf: &mut Bytes, dec: impl FnOnce(&mut Bytes) -> Result<T>) -> Result<Option<T>> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(dec(buf)?)),
        tag => Err(WireError::BadTag {
            what: "option",
            tag,
        }),
    }
}

fn put_vec<T>(out: &mut BytesMut, v: &[T], mut enc: impl FnMut(&mut BytesMut, &T)) {
    out.put_u32_le(v.len() as u32);
    for x in v {
        enc(out, x);
    }
}

fn get_vec<T>(buf: &mut Bytes, mut dec: impl FnMut(&mut Bytes) -> Result<T>) -> Result<Vec<T>> {
    let len = get_u32(buf)? as usize;
    if len > MAX_BYTES {
        return Err(WireError::TooLong(len));
    }
    let mut v = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        v.push(dec(buf)?);
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Identifier and leaf types
// ---------------------------------------------------------------------

pub(crate) fn put_ballot(out: &mut BytesMut, b: &Ballot) {
    out.put_u64_le(b.round);
    out.put_u32_le(b.proposer.0);
}

pub(crate) fn get_ballot(buf: &mut Bytes) -> Result<Ballot> {
    let round = get_u64(buf)?;
    let proposer = ProcessId(get_u32(buf)?);
    Ok(Ballot { round, proposer })
}

pub(crate) fn put_instance(out: &mut BytesMut, i: &Instance) {
    out.put_u64_le(i.0);
}

pub(crate) fn get_instance(buf: &mut Bytes) -> Result<Instance> {
    Ok(Instance(get_u64(buf)?))
}

fn put_request_id(out: &mut BytesMut, id: &RequestId) {
    out.put_u64_le(id.client.0);
    out.put_u64_le(id.seq.0);
}

fn get_request_id(buf: &mut Bytes) -> Result<RequestId> {
    let client = ClientId(get_u64(buf)?);
    let seq = Seq(get_u64(buf)?);
    Ok(RequestId { client, seq })
}

/// Encode a process address (used in transport hello frames).
pub fn put_addr(out: &mut BytesMut, a: &Addr) {
    match a {
        Addr::Replica(p) => {
            out.put_u8(0);
            out.put_u32_le(p.0);
        }
        Addr::Client(c) => {
            out.put_u8(1);
            out.put_u64_le(c.0);
        }
    }
}

/// Decode a process address.
pub fn get_addr(buf: &mut Bytes) -> Result<Addr> {
    match get_u8(buf)? {
        0 => Ok(Addr::Replica(ProcessId(get_u32(buf)?))),
        1 => Ok(Addr::Client(ClientId(get_u64(buf)?))),
        tag => Err(WireError::BadTag { what: "addr", tag }),
    }
}

fn put_kind(out: &mut BytesMut, k: &RequestKind) {
    out.put_u8(match k {
        RequestKind::Read => 0,
        RequestKind::Write => 1,
        RequestKind::Original => 2,
    });
}

fn get_kind(buf: &mut Bytes) -> Result<RequestKind> {
    match get_u8(buf)? {
        0 => Ok(RequestKind::Read),
        1 => Ok(RequestKind::Write),
        2 => Ok(RequestKind::Original),
        tag => Err(WireError::BadTag {
            what: "request_kind",
            tag,
        }),
    }
}

fn put_txn_ctl(out: &mut BytesMut, t: &TxnCtl) {
    match t {
        TxnCtl::Op { txn } => {
            out.put_u8(0);
            out.put_u64_le(txn.0);
        }
        TxnCtl::Commit { txn, n_ops } => {
            out.put_u8(1);
            out.put_u64_le(txn.0);
            out.put_u32_le(*n_ops);
        }
        TxnCtl::Abort { txn } => {
            out.put_u8(2);
            out.put_u64_le(txn.0);
        }
    }
}

fn get_txn_ctl(buf: &mut Bytes) -> Result<TxnCtl> {
    match get_u8(buf)? {
        0 => Ok(TxnCtl::Op {
            txn: TxnId(get_u64(buf)?),
        }),
        1 => Ok(TxnCtl::Commit {
            txn: TxnId(get_u64(buf)?),
            n_ops: get_u32(buf)?,
        }),
        2 => Ok(TxnCtl::Abort {
            txn: TxnId(get_u64(buf)?),
        }),
        tag => Err(WireError::BadTag {
            what: "txn_ctl",
            tag,
        }),
    }
}

fn put_request(out: &mut BytesMut, r: &Request) {
    put_request_id(out, &r.id);
    put_kind(out, &r.kind);
    put_opt(out, &r.txn, put_txn_ctl);
    put_bytes(out, &r.op);
}

fn get_request(buf: &mut Bytes) -> Result<Request> {
    let id = get_request_id(buf)?;
    let kind = get_kind(buf)?;
    let txn = get_opt(buf, get_txn_ctl)?;
    let op = get_bytes(buf)?;
    Ok(Request { id, kind, txn, op })
}

fn put_abort_reason(out: &mut BytesMut, r: &AbortReason) {
    out.put_u8(match r {
        AbortReason::ClientAbort => 0,
        AbortReason::LeaderSwitch => 1,
        AbortReason::Conflict => 2,
        AbortReason::Unsupported => 3,
    });
}

fn get_abort_reason(buf: &mut Bytes) -> Result<AbortReason> {
    match get_u8(buf)? {
        0 => Ok(AbortReason::ClientAbort),
        1 => Ok(AbortReason::LeaderSwitch),
        2 => Ok(AbortReason::Conflict),
        3 => Ok(AbortReason::Unsupported),
        tag => Err(WireError::BadTag {
            what: "abort_reason",
            tag,
        }),
    }
}

fn put_reply_body(out: &mut BytesMut, b: &ReplyBody) {
    match b {
        ReplyBody::Ok(bytes) => {
            out.put_u8(0);
            put_bytes(out, bytes);
        }
        ReplyBody::TxnCommitted { txn } => {
            out.put_u8(1);
            out.put_u64_le(txn.0);
        }
        ReplyBody::TxnAborted { txn, reason } => {
            out.put_u8(2);
            out.put_u64_le(txn.0);
            put_abort_reason(out, reason);
        }
        ReplyBody::Empty => out.put_u8(3),
        ReplyBody::Busy => out.put_u8(4),
    }
}

fn get_reply_body(buf: &mut Bytes) -> Result<ReplyBody> {
    match get_u8(buf)? {
        0 => Ok(ReplyBody::Ok(get_bytes(buf)?)),
        1 => Ok(ReplyBody::TxnCommitted {
            txn: TxnId(get_u64(buf)?),
        }),
        2 => Ok(ReplyBody::TxnAborted {
            txn: TxnId(get_u64(buf)?),
            reason: get_abort_reason(buf)?,
        }),
        3 => Ok(ReplyBody::Empty),
        4 => Ok(ReplyBody::Busy),
        tag => Err(WireError::BadTag {
            what: "reply_body",
            tag,
        }),
    }
}

fn put_state_update(out: &mut BytesMut, u: &StateUpdate) {
    match u {
        StateUpdate::None => out.put_u8(0),
        StateUpdate::Full(b) => {
            out.put_u8(1);
            put_bytes(out, b);
        }
        StateUpdate::Delta(b) => {
            out.put_u8(2);
            put_bytes(out, b);
        }
        StateUpdate::Reproduce(b) => {
            out.put_u8(3);
            put_bytes(out, b);
        }
    }
}

fn get_state_update(buf: &mut Bytes) -> Result<StateUpdate> {
    match get_u8(buf)? {
        0 => Ok(StateUpdate::None),
        1 => Ok(StateUpdate::Full(get_bytes(buf)?)),
        2 => Ok(StateUpdate::Delta(get_bytes(buf)?)),
        3 => Ok(StateUpdate::Reproduce(get_bytes(buf)?)),
        tag => Err(WireError::BadTag {
            what: "state_update",
            tag,
        }),
    }
}

fn put_command(out: &mut BytesMut, c: &Command) {
    match c {
        Command::Noop => out.put_u8(0),
        Command::Req(r) => {
            out.put_u8(1);
            put_request(out, r);
        }
        Command::TxnCommit { id, txn, ops } => {
            out.put_u8(2);
            put_request_id(out, id);
            out.put_u64_le(txn.0);
            put_vec(out, ops, put_request);
        }
    }
}

fn get_command(buf: &mut Bytes) -> Result<Command> {
    match get_u8(buf)? {
        0 => Ok(Command::Noop),
        1 => Ok(Command::Req(get_request(buf)?)),
        2 => Ok(Command::TxnCommit {
            id: get_request_id(buf)?,
            txn: TxnId(get_u64(buf)?),
            ops: get_vec(buf, get_request)?,
        }),
        tag => Err(WireError::BadTag {
            what: "command",
            tag,
        }),
    }
}

pub(crate) fn put_decree(out: &mut BytesMut, d: &Decree) {
    put_vec(out, &d.entries, |o, e: &DecreeEntry| {
        put_command(o, &e.cmd);
        put_state_update(o, &e.update);
        put_reply_body(o, &e.reply);
    });
}

pub(crate) fn get_decree(buf: &mut Bytes) -> Result<Decree> {
    Ok(Decree {
        entries: get_vec(buf, |b| {
            Ok(DecreeEntry {
                cmd: get_command(b)?,
                update: get_state_update(b)?,
                reply: get_reply_body(b)?,
            })
        })?,
    })
}

fn put_accepted_entry(out: &mut BytesMut, e: &AcceptedEntry) {
    put_instance(out, &e.instance);
    put_ballot(out, &e.ballot);
    put_decree(out, &e.decree);
}

fn get_accepted_entry(buf: &mut Bytes) -> Result<AcceptedEntry> {
    Ok(AcceptedEntry {
        instance: get_instance(buf)?,
        ballot: get_ballot(buf)?,
        decree: get_decree(buf)?,
    })
}

pub(crate) fn put_dedup_table(out: &mut BytesMut, dedup: &[DedupEntry]) {
    put_vec(out, dedup, |o, e: &DedupEntry| {
        o.put_u64_le(e.client.0);
        o.put_u64_le(e.seq.0);
        put_reply_body(o, &e.reply);
    });
}

pub(crate) fn get_dedup_table(buf: &mut Bytes) -> Result<Vec<DedupEntry>> {
    get_vec(buf, |b| {
        Ok(DedupEntry {
            client: ClientId(get_u64(b)?),
            seq: Seq(get_u64(b)?),
            reply: get_reply_body(b)?,
        })
    })
}

pub(crate) fn put_snapshot(out: &mut BytesMut, s: &SnapshotBlob) {
    put_instance(out, &s.upto);
    put_bytes(out, &s.app);
    put_dedup_table(out, &s.dedup);
}

pub(crate) fn get_snapshot(buf: &mut Bytes) -> Result<SnapshotBlob> {
    Ok(SnapshotBlob {
        upto: get_instance(buf)?,
        app: get_bytes(buf)?,
        dedup: get_dedup_table(buf)?,
    })
}

fn put_inst_decree(out: &mut BytesMut, e: &(Instance, Decree)) {
    put_instance(out, &e.0);
    put_decree(out, &e.1);
}

fn get_inst_decree(buf: &mut Bytes) -> Result<(Instance, Decree)> {
    Ok((get_instance(buf)?, get_decree(buf)?))
}

// ---------------------------------------------------------------------
// Top-level message codec
// ---------------------------------------------------------------------

/// Encode a message into `out`.
pub fn encode_msg(msg: &Msg, out: &mut BytesMut) {
    match msg {
        Msg::Request(r) => {
            out.put_u8(0);
            put_request(out, r);
        }
        Msg::Reply(Reply { id, leader, body }) => {
            out.put_u8(1);
            put_request_id(out, id);
            out.put_u32_le(leader.0);
            put_reply_body(out, body);
        }
        Msg::Prepare {
            ballot,
            chosen_prefix,
            known_above,
        } => {
            out.put_u8(2);
            put_ballot(out, ballot);
            put_instance(out, chosen_prefix);
            put_vec(out, known_above, put_instance);
        }
        Msg::Promise {
            ballot,
            chosen_prefix,
            accepted,
            snapshot,
        } => {
            out.put_u8(3);
            put_ballot(out, ballot);
            put_instance(out, chosen_prefix);
            put_vec(out, accepted, put_accepted_entry);
            put_opt(out, snapshot, put_snapshot);
        }
        Msg::PrepareNack { ballot, promised } => {
            out.put_u8(4);
            put_ballot(out, ballot);
            put_ballot(out, promised);
        }
        Msg::Accept { ballot, entries } => {
            out.put_u8(5);
            put_ballot(out, ballot);
            put_vec(out, entries, put_inst_decree);
        }
        Msg::Accepted { ballot, instances } => {
            out.put_u8(6);
            put_ballot(out, ballot);
            put_vec(out, instances, put_instance);
        }
        Msg::AcceptNack { ballot, promised } => {
            out.put_u8(7);
            put_ballot(out, ballot);
            put_ballot(out, promised);
        }
        Msg::Chosen { ballot, upto } => {
            out.put_u8(8);
            put_ballot(out, ballot);
            put_instance(out, upto);
        }
        Msg::Confirm { ballot, read } => {
            out.put_u8(9);
            put_ballot(out, ballot);
            put_request_id(out, read);
        }
        Msg::ConfirmReq {
            ballot,
            epoch,
            backlog,
        } => {
            out.put_u8(15);
            put_ballot(out, ballot);
            out.put_u64_le(*epoch);
            out.put_u8(u8::from(*backlog));
        }
        Msg::ConfirmBatch { ballot, epoch } => {
            out.put_u8(16);
            put_ballot(out, ballot);
            out.put_u64_le(*epoch);
        }
        Msg::Heartbeat {
            ballot,
            chosen,
            hb_seq,
        } => {
            out.put_u8(10);
            put_ballot(out, ballot);
            put_instance(out, chosen);
            out.put_u64_le(*hb_seq);
        }
        Msg::HeartbeatAck { ballot, hb_seq } => {
            out.put_u8(13);
            put_ballot(out, ballot);
            out.put_u64_le(*hb_seq);
        }
        Msg::CatchUpReq { have } => {
            out.put_u8(11);
            put_instance(out, have);
        }
        Msg::CatchUp {
            ballot,
            entries,
            snapshot,
            upto,
        } => {
            out.put_u8(12);
            put_ballot(out, ballot);
            put_vec(out, entries, put_inst_decree);
            put_opt(out, snapshot, put_snapshot);
            put_instance(out, upto);
        }
        Msg::CatchUpChunk {
            ballot,
            upto,
            seq,
            total,
            dedup,
            data,
        } => {
            out.put_u8(17);
            put_ballot(out, ballot);
            put_instance(out, upto);
            out.put_u32_le(*seq);
            out.put_u32_le(*total);
            put_dedup_table(out, dedup);
            put_bytes(out, data);
        }
        Msg::Grouped { group, inner } => {
            debug_assert!(
                !matches!(**inner, Msg::Grouped { .. }),
                "group envelopes must not nest"
            );
            out.put_u8(14);
            out.put_u32_le(group.0);
            encode_msg(inner, out);
        }
    }
}

/// Decode a message from `buf`, consuming exactly one message.
pub fn decode_msg(buf: &mut Bytes) -> Result<Msg> {
    match get_u8(buf)? {
        0 => Ok(Msg::Request(get_request(buf)?)),
        1 => Ok(Msg::Reply(Reply {
            id: get_request_id(buf)?,
            leader: ProcessId(get_u32(buf)?),
            body: get_reply_body(buf)?,
        })),
        2 => Ok(Msg::Prepare {
            ballot: get_ballot(buf)?,
            chosen_prefix: get_instance(buf)?,
            known_above: get_vec(buf, get_instance)?,
        }),
        3 => Ok(Msg::Promise {
            ballot: get_ballot(buf)?,
            chosen_prefix: get_instance(buf)?,
            accepted: get_vec(buf, get_accepted_entry)?,
            snapshot: get_opt(buf, get_snapshot)?,
        }),
        4 => Ok(Msg::PrepareNack {
            ballot: get_ballot(buf)?,
            promised: get_ballot(buf)?,
        }),
        5 => Ok(Msg::Accept {
            ballot: get_ballot(buf)?,
            entries: get_vec(buf, get_inst_decree)?,
        }),
        6 => Ok(Msg::Accepted {
            ballot: get_ballot(buf)?,
            instances: get_vec(buf, get_instance)?,
        }),
        7 => Ok(Msg::AcceptNack {
            ballot: get_ballot(buf)?,
            promised: get_ballot(buf)?,
        }),
        8 => Ok(Msg::Chosen {
            ballot: get_ballot(buf)?,
            upto: get_instance(buf)?,
        }),
        9 => Ok(Msg::Confirm {
            ballot: get_ballot(buf)?,
            read: get_request_id(buf)?,
        }),
        15 => Ok(Msg::ConfirmReq {
            ballot: get_ballot(buf)?,
            epoch: get_u64(buf)?,
            backlog: get_u8(buf)? != 0,
        }),
        16 => Ok(Msg::ConfirmBatch {
            ballot: get_ballot(buf)?,
            epoch: get_u64(buf)?,
        }),
        10 => Ok(Msg::Heartbeat {
            ballot: get_ballot(buf)?,
            chosen: get_instance(buf)?,
            hb_seq: get_u64(buf)?,
        }),
        13 => Ok(Msg::HeartbeatAck {
            ballot: get_ballot(buf)?,
            hb_seq: get_u64(buf)?,
        }),
        11 => Ok(Msg::CatchUpReq {
            have: get_instance(buf)?,
        }),
        12 => Ok(Msg::CatchUp {
            ballot: get_ballot(buf)?,
            entries: get_vec(buf, get_inst_decree)?,
            snapshot: get_opt(buf, get_snapshot)?,
            upto: get_instance(buf)?,
        }),
        17 => Ok(Msg::CatchUpChunk {
            ballot: get_ballot(buf)?,
            upto: get_instance(buf)?,
            seq: get_u32(buf)?,
            total: get_u32(buf)?,
            dedup: get_dedup_table(buf)?,
            data: get_bytes(buf)?,
        }),
        14 => {
            let group = GroupId(get_u32(buf)?);
            let inner = decode_msg(buf)?;
            if matches!(inner, Msg::Grouped { .. }) {
                // Envelopes never nest; a nested tag is corruption.
                return Err(WireError::BadTag {
                    what: "nested grouped",
                    tag: 14,
                });
            }
            Ok(Msg::Grouped {
                group,
                inner: Box::new(inner),
            })
        }
        tag => Err(WireError::BadTag { what: "msg", tag }),
    }
}

/// Encode a message to a standalone buffer.
#[must_use]
pub fn encode_to_bytes(msg: &Msg) -> Bytes {
    let mut out = BytesMut::with_capacity(64);
    encode_msg(msg, &mut out);
    out.freeze()
}

/// Encode a message into a reusable scratch buffer, returning the frame.
///
/// The scratch is cleared and refilled in place, so once it has grown to
/// the connection's steady-state frame size the encode allocates nothing —
/// unlike [`encode_to_bytes`], which pays a fresh buffer per message.
/// Intended for per-connection use: each sender (e.g. a TCP writer thread)
/// owns its scratch, and the returned slice is only valid until the next
/// encode into the same scratch.
pub fn encode_with_scratch<'a>(msg: &Msg, scratch: &'a mut BytesMut) -> &'a [u8] {
    scratch.clear();
    encode_msg(msg, scratch);
    scratch
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(msg: &Msg) -> Msg {
        let mut b = encode_to_bytes(msg);
        let decoded = decode_msg(&mut b).expect("decodes");
        assert!(b.is_empty(), "trailing bytes after decode");
        decoded
    }

    #[test]
    fn simple_messages_roundtrip() {
        let msgs = vec![
            Msg::Heartbeat {
                ballot: Ballot::new(3, ProcessId(1)),
                chosen: Instance(42),
                hb_seq: 7,
            },
            Msg::HeartbeatAck {
                ballot: Ballot::new(3, ProcessId(1)),
                hb_seq: 7,
            },
            Msg::CatchUpReq { have: Instance(7) },
            Msg::PrepareNack {
                ballot: Ballot::new(1, ProcessId(0)),
                promised: Ballot::new(2, ProcessId(2)),
            },
            Msg::Confirm {
                ballot: Ballot::new(9, ProcessId(2)),
                read: RequestId::new(ClientId(5), Seq(77)),
            },
            Msg::ConfirmReq {
                ballot: Ballot::new(9, ProcessId(2)),
                epoch: 41,
                backlog: true,
            },
            Msg::ConfirmReq {
                ballot: Ballot::new(9, ProcessId(2)),
                epoch: 42,
                backlog: false,
            },
            Msg::ConfirmBatch {
                ballot: Ballot::new(9, ProcessId(2)),
                epoch: u64::MAX,
            },
        ];
        for m in msgs {
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn confirm_round_messages_survive_truncation() {
        for msg in [
            Msg::ConfirmReq {
                ballot: Ballot::new(3, ProcessId(1)),
                epoch: 9,
                backlog: true,
            },
            Msg::ConfirmBatch {
                ballot: Ballot::new(3, ProcessId(1)),
                epoch: 9,
            },
        ] {
            let full = encode_to_bytes(&msg);
            for cut in 0..full.len() {
                let mut b = full.slice(0..cut);
                assert!(decode_msg(&mut b).is_err(), "prefix of {cut} bytes decoded");
            }
            let mut b = full.clone();
            assert_eq!(decode_msg(&mut b).unwrap(), msg);
        }
    }

    #[test]
    fn scratch_encoding_matches_fresh_encoding_and_reuses_capacity() {
        let mut scratch = BytesMut::new();
        let msgs = [
            Msg::Heartbeat {
                ballot: Ballot::new(3, ProcessId(1)),
                chosen: Instance(42),
                hb_seq: 7,
            },
            Msg::ConfirmReq {
                ballot: Ballot::new(3, ProcessId(1)),
                epoch: 1,
                backlog: false,
            },
            Msg::Confirm {
                ballot: Ballot::new(9, ProcessId(2)),
                read: RequestId::new(ClientId(5), Seq(77)),
            },
        ];
        for m in &msgs {
            let frame = encode_with_scratch(m, &mut scratch).to_vec();
            assert_eq!(frame, encode_to_bytes(m).to_vec());
            let mut b = Bytes::from(frame);
            assert_eq!(&decode_msg(&mut b).unwrap(), m);
        }
        // Once warm, re-encoding reuses the scratch's backing storage: the
        // data pointer must not move across subsequent (smaller) frames.
        let ptr = encode_with_scratch(&msgs[0], &mut scratch).as_ptr();
        for m in &msgs {
            assert_eq!(encode_with_scratch(m, &mut scratch).as_ptr(), ptr);
        }
    }

    #[test]
    fn decode_rejects_bad_tags() {
        let mut b = Bytes::from_static(&[200]);
        assert!(matches!(
            decode_msg(&mut b),
            Err(WireError::BadTag { what: "msg", .. })
        ));
    }

    /// A realistic incremental state update: the kind of tagged,
    /// length-prefixed key/value records a service delta actually carries
    /// (cf. the kvstore's delta codec), so truncation sweeps cross several
    /// nested length prefixes of varying sizes.
    fn realistic_delta() -> Bytes {
        let mut d = BytesMut::new();
        for (i, (key, val)) in [
            (&b"user:1042"[..], &b"{\"balance\":3141,\"v\":17}"[..]),
            (&b"session:9f"[..], &b""[..]),
            (
                &b"k"[..],
                &b"a-longer-value-with-some-entropy-0123456789"[..],
            ),
        ]
        .iter()
        .enumerate()
        {
            d.put_u8(i as u8); // record tag
            d.put_u32_le(key.len() as u32);
            d.put_slice(key);
            d.put_u32_le(val.len() as u32);
            d.put_slice(val);
        }
        d.freeze()
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let msg = Msg::Promise {
            ballot: Ballot::new(4, ProcessId(1)),
            chosen_prefix: Instance(9),
            accepted: vec![AcceptedEntry {
                instance: Instance(10),
                ballot: Ballot::new(4, ProcessId(1)),
                decree: Decree::single(
                    Command::Req(Request::new(
                        RequestId::new(ClientId(3), Seq(8)),
                        RequestKind::Write,
                        Bytes::from_static(b"payload"),
                    )),
                    StateUpdate::Delta(realistic_delta()),
                    ReplyBody::Ok(Bytes::from_static(b"ok")),
                ),
            }],
            snapshot: Some(SnapshotBlob {
                upto: Instance(9),
                app: Bytes::from_static(b"app-state"),
                dedup: vec![DedupEntry {
                    client: ClientId(3),
                    seq: Seq(8),
                    reply: ReplyBody::Empty,
                }],
            }),
        };
        let full = encode_to_bytes(&msg);
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..full.len() {
            let mut b = full.slice(0..cut);
            assert!(decode_msg(&mut b).is_err(), "prefix of {cut} bytes decoded");
        }
        let mut b = full.clone();
        assert_eq!(decode_msg(&mut b).unwrap(), msg);
    }

    #[test]
    fn addr_roundtrip() {
        for a in [
            Addr::Replica(ProcessId(7)),
            Addr::Client(ClientId(u64::MAX)),
        ] {
            let mut out = BytesMut::new();
            put_addr(&mut out, &a);
            let mut b = out.freeze();
            assert_eq!(get_addr(&mut b).unwrap(), a);
        }
    }

    #[test]
    fn grouped_envelope_roundtrips() {
        let inner = Msg::Request(Request::new(
            RequestId::new(ClientId(11), Seq(3)),
            RequestKind::Write,
            Bytes::from_static(b"sharded-op"),
        ));
        let msg = Msg::Grouped {
            group: GroupId(7),
            inner: Box::new(inner),
        };
        assert_eq!(roundtrip(&msg), msg);

        // Truncation sweep across the envelope too.
        let full = encode_to_bytes(&msg);
        for cut in 0..full.len() {
            let mut b = full.slice(0..cut);
            assert!(decode_msg(&mut b).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn nested_grouped_envelope_is_rejected() {
        // Hand-encode tag 14 wrapping tag 14: the decoder must refuse.
        let mut out = BytesMut::new();
        out.put_u8(14);
        out.put_u32_le(1);
        out.put_u8(14);
        out.put_u32_le(2);
        encode_msg(&Msg::CatchUpReq { have: Instance(0) }, &mut out);
        let mut b = out.freeze();
        assert!(matches!(
            decode_msg(&mut b),
            Err(WireError::BadTag {
                what: "nested grouped",
                tag: 14
            })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut out = BytesMut::new();
        out.put_u8(0); // Msg::Request
        out.put_u64_le(1); // client
        out.put_u64_le(1); // seq
        out.put_u8(0); // kind
        out.put_u8(0); // no txn
        out.put_u32_le(u32::MAX); // absurd op length
        let mut b = out.freeze();
        assert!(matches!(decode_msg(&mut b), Err(WireError::TooLong(_))));
    }

    // ------------------------------------------------------------------
    // Property tests: arbitrary message round-trips
    // ------------------------------------------------------------------

    fn arb_bytes() -> impl Strategy<Value = Bytes> {
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Bytes::from)
    }

    fn arb_ballot() -> impl Strategy<Value = Ballot> {
        (any::<u64>(), any::<u32>()).prop_map(|(r, p)| Ballot::new(r, ProcessId(p)))
    }

    fn arb_request_id() -> impl Strategy<Value = RequestId> {
        (any::<u64>(), any::<u64>()).prop_map(|(c, s)| RequestId::new(ClientId(c), Seq(s)))
    }

    fn arb_kind() -> impl Strategy<Value = RequestKind> {
        prop_oneof![
            Just(RequestKind::Read),
            Just(RequestKind::Write),
            Just(RequestKind::Original)
        ]
    }

    fn arb_txn_ctl() -> impl Strategy<Value = TxnCtl> {
        prop_oneof![
            any::<u64>().prop_map(|t| TxnCtl::Op { txn: TxnId(t) }),
            (any::<u64>(), any::<u32>()).prop_map(|(t, n)| TxnCtl::Commit {
                txn: TxnId(t),
                n_ops: n
            }),
            any::<u64>().prop_map(|t| TxnCtl::Abort { txn: TxnId(t) }),
        ]
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        (
            arb_request_id(),
            arb_kind(),
            proptest::option::of(arb_txn_ctl()),
            arb_bytes(),
        )
            .prop_map(|(id, kind, txn, op)| Request { id, kind, txn, op })
    }

    fn arb_reply_body() -> impl Strategy<Value = ReplyBody> {
        prop_oneof![
            arb_bytes().prop_map(ReplyBody::Ok),
            any::<u64>().prop_map(|t| ReplyBody::TxnCommitted { txn: TxnId(t) }),
            (any::<u64>(), 0..4u8).prop_map(|(t, r)| ReplyBody::TxnAborted {
                txn: TxnId(t),
                reason: match r {
                    0 => AbortReason::ClientAbort,
                    1 => AbortReason::LeaderSwitch,
                    2 => AbortReason::Conflict,
                    _ => AbortReason::Unsupported,
                },
            }),
            Just(ReplyBody::Empty),
            Just(ReplyBody::Busy),
        ]
    }

    fn arb_update() -> impl Strategy<Value = StateUpdate> {
        prop_oneof![
            Just(StateUpdate::None),
            arb_bytes().prop_map(StateUpdate::Full),
            arb_bytes().prop_map(StateUpdate::Delta),
            arb_bytes().prop_map(StateUpdate::Reproduce),
        ]
    }

    fn arb_command() -> impl Strategy<Value = Command> {
        prop_oneof![
            Just(Command::Noop),
            arb_request().prop_map(Command::Req),
            (
                arb_request_id(),
                any::<u64>(),
                proptest::collection::vec(arb_request(), 0..4)
            )
                .prop_map(|(id, t, ops)| Command::TxnCommit {
                    id,
                    txn: TxnId(t),
                    ops
                }),
        ]
    }

    fn arb_decree() -> impl Strategy<Value = Decree> {
        proptest::collection::vec((arb_command(), arb_update(), arb_reply_body()), 0..3).prop_map(
            |entries| Decree {
                entries: entries
                    .into_iter()
                    .map(|(cmd, update, reply)| DecreeEntry { cmd, update, reply })
                    .collect(),
            },
        )
    }

    fn arb_snapshot() -> impl Strategy<Value = SnapshotBlob> {
        (
            any::<u64>(),
            arb_bytes(),
            proptest::collection::vec((any::<u64>(), any::<u64>(), arb_reply_body()), 0..4),
        )
            .prop_map(|(u, app, d)| SnapshotBlob {
                upto: Instance(u),
                app,
                dedup: d
                    .into_iter()
                    .map(|(c, s, r)| DedupEntry {
                        client: ClientId(c),
                        seq: Seq(s),
                        reply: r,
                    })
                    .collect(),
            })
    }

    fn arb_msg() -> impl Strategy<Value = Msg> {
        prop_oneof![
            arb_request().prop_map(Msg::Request),
            (arb_request_id(), any::<u32>(), arb_reply_body()).prop_map(|(id, l, body)| {
                Msg::Reply(Reply {
                    id,
                    leader: ProcessId(l),
                    body,
                })
            }),
            (
                arb_ballot(),
                any::<u64>(),
                proptest::collection::vec(any::<u64>(), 0..4)
            )
                .prop_map(|(b, p, ka)| Msg::Prepare {
                    ballot: b,
                    chosen_prefix: Instance(p),
                    known_above: ka.into_iter().map(Instance).collect(),
                }),
            (
                arb_ballot(),
                any::<u64>(),
                proptest::collection::vec((any::<u64>(), arb_ballot(), arb_decree()), 0..3),
                proptest::option::of(arb_snapshot())
            )
                .prop_map(|(b, p, acc, snap)| Msg::Promise {
                    ballot: b,
                    chosen_prefix: Instance(p),
                    accepted: acc
                        .into_iter()
                        .map(|(i, ab, d)| AcceptedEntry {
                            instance: Instance(i),
                            ballot: ab,
                            decree: d,
                        })
                        .collect(),
                    snapshot: snap,
                }),
            (
                arb_ballot(),
                proptest::collection::vec((any::<u64>(), arb_decree()), 0..3)
            )
                .prop_map(|(b, es)| Msg::Accept {
                    ballot: b,
                    entries: es.into_iter().map(|(i, d)| (Instance(i), d)).collect(),
                }),
            (arb_ballot(), proptest::collection::vec(any::<u64>(), 0..5)).prop_map(|(b, is)| {
                Msg::Accepted {
                    ballot: b,
                    instances: is.into_iter().map(Instance).collect(),
                }
            }),
            (arb_ballot(), arb_ballot()).prop_map(|(b, p)| Msg::AcceptNack {
                ballot: b,
                promised: p
            }),
            (arb_ballot(), any::<u64>()).prop_map(|(b, u)| Msg::Chosen {
                ballot: b,
                upto: Instance(u)
            }),
            (arb_ballot(), arb_request_id()).prop_map(|(b, r)| Msg::Confirm { ballot: b, read: r }),
            (arb_ballot(), any::<u64>(), any::<bool>()).prop_map(|(b, e, bk)| Msg::ConfirmReq {
                ballot: b,
                epoch: e,
                backlog: bk,
            }),
            (arb_ballot(), any::<u64>()).prop_map(|(b, e)| Msg::ConfirmBatch {
                ballot: b,
                epoch: e
            }),
            (arb_ballot(), any::<u64>(), any::<u64>()).prop_map(|(b, c, h)| Msg::Heartbeat {
                ballot: b,
                chosen: Instance(c),
                hb_seq: h,
            }),
            (arb_ballot(), any::<u64>()).prop_map(|(b, h)| Msg::HeartbeatAck {
                ballot: b,
                hb_seq: h
            }),
            any::<u64>().prop_map(|h| Msg::CatchUpReq { have: Instance(h) }),
            (
                arb_ballot(),
                proptest::collection::vec((any::<u64>(), arb_decree()), 0..3),
                proptest::option::of(arb_snapshot()),
                any::<u64>()
            )
                .prop_map(|(b, es, snap, u)| Msg::CatchUp {
                    ballot: b,
                    entries: es.into_iter().map(|(i, d)| (Instance(i), d)).collect(),
                    snapshot: snap,
                    upto: Instance(u),
                }),
            (
                arb_ballot(),
                any::<u64>(),
                any::<u32>(),
                any::<u32>(),
                proptest::collection::vec((any::<u64>(), any::<u64>(), arb_reply_body()), 0..4),
                arb_bytes()
            )
                .prop_map(|(b, u, s, t, d, data)| Msg::CatchUpChunk {
                    ballot: b,
                    upto: Instance(u),
                    seq: s,
                    total: t,
                    dedup: d
                        .into_iter()
                        .map(|(c, sq, r)| DedupEntry {
                            client: ClientId(c),
                            seq: Seq(sq),
                            reply: r,
                        })
                        .collect(),
                    data,
                }),
            // Group envelope around the message shapes that actually cross
            // the wire enveloped in multi-group deployments.
            (
                any::<u32>(),
                prop_oneof![
                    arb_request().prop_map(Msg::Request),
                    (arb_request_id(), any::<u32>(), arb_reply_body()).prop_map(|(id, l, body)| {
                        Msg::Reply(Reply {
                            id,
                            leader: ProcessId(l),
                            body,
                        })
                    }),
                    (arb_ballot(), any::<u64>(), any::<u64>()).prop_map(|(b, c, h)| {
                        Msg::Heartbeat {
                            ballot: b,
                            chosen: Instance(c),
                            hb_seq: h,
                        }
                    }),
                ]
            )
                .prop_map(|(g, inner)| Msg::Grouped {
                    group: GroupId(g),
                    inner: Box::new(inner),
                }),
        ]
    }

    proptest! {
        #[test]
        fn any_message_roundtrips(msg in arb_msg()) {
            let mut b = encode_to_bytes(&msg);
            let decoded = decode_msg(&mut b).expect("decode");
            prop_assert!(b.is_empty(), "trailing bytes");
            prop_assert_eq!(decoded, msg);
        }

        #[test]
        fn arbitrary_junk_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut b = Bytes::from(junk);
            let _ = decode_msg(&mut b); // must not panic
        }
    }
}
