//! Sharded (multi-group) deployment over any [`Transport`].
//!
//! A node hosts `G` independent replica state machines — one consensus
//! group each — behind a single transport endpoint. A demux thread owns
//! the real transport: inbound frames are routed to the destination
//! group's channel by their [`Msg::Grouped`] envelope (bare messages go to
//! group 0), and outbound messages from every group drain through a shared
//! channel, so the `Transport` needs no `Sync` bound. Each group runs its
//! own [`crate::node::ReplicaNode`] event loop on its own thread, giving
//! per-group parallel execution on multicore nodes — the throughput lever
//! the sharding extension exists for.

use crate::fstorage::{FlushCoordinator, SyncMode};
use crate::node::{spawn_replica, RecvResult, SyncClient, Transport};
use crate::tcp::TcpNode;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gridpaxos_core::client::{ClientCore, ShardRouter};
use gridpaxos_core::config::Config;
use gridpaxos_core::msg::Msg;
use gridpaxos_core::multi::{group_config, group_seed};
use gridpaxos_core::replica::Replica;
use gridpaxos_core::service::App;
use gridpaxos_core::storage::{MemStorage, Storage};
use gridpaxos_core::types::{Addr, ClientId, Dur, GroupId, ProcessId, Time};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long the demux thread blocks per receive before draining the
/// outbound queue again. Bounds the extra latency a queued outbound
/// message can see.
const DEMUX_TICK: Duration = Duration::from_millis(1);

/// The [`Transport`] facade handed to one group's replica event loop:
/// receives that group's demuxed messages, tags everything it sends with
/// the group envelope (when the node is actually multi-group).
pub struct GroupPort {
    group: GroupId,
    n_groups: usize,
    local: Addr,
    rx: Receiver<(Addr, Msg)>,
    out: Sender<(Addr, Msg)>,
}

impl Transport for GroupPort {
    fn send(&self, to: Addr, msg: Msg) {
        debug_assert!(
            !matches!(msg, Msg::Grouped { .. }),
            "replicas never emit pre-wrapped messages"
        );
        let msg = if self.n_groups > 1 {
            Msg::Grouped {
                group: self.group,
                inner: Box::new(msg),
            }
        } else {
            msg
        };
        let _ = self.out.send((to, msg));
    }

    fn recv_timeout(&self, timeout: Duration) -> RecvResult {
        match self.rx.recv_timeout(timeout) {
            Ok((from, msg)) => RecvResult::Msg(from, msg),
            Err(RecvTimeoutError::Timeout) => RecvResult::Timeout,
            Err(RecvTimeoutError::Disconnected) => RecvResult::Closed,
        }
    }

    fn local_addr(&self) -> Addr {
        self.local
    }
}

/// Join handles for one sharded node.
pub struct ShardedNode {
    /// One replica event-loop thread per group, in group order.
    pub replicas: Vec<std::thread::JoinHandle<Replica>>,
    /// The demux thread (exits once `stop` is raised or the transport
    /// closes).
    pub router: std::thread::JoinHandle<()>,
}

impl ShardedNode {
    /// Join all threads, returning the per-group replicas.
    pub fn join(self) -> Vec<Replica> {
        let replicas = self
            .replicas
            .into_iter()
            .map(|h| match h.join() {
                Ok(replica) => replica,
                // Propagate a group thread's panic to the caller intact.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
        let _ = self.router.join();
        replicas
    }
}

/// Spawn a node hosting `group_replicas` (group `g` at index `g`) behind
/// `transport`. All replicas must carry the same [`ProcessId`] — they are
/// the same node's share of `G` different consensus groups.
pub fn spawn_sharded_node<T: Transport + 'static>(
    group_replicas: Vec<Replica>,
    transport: T,
    stop: Arc<AtomicBool>,
) -> io::Result<ShardedNode> {
    let n_groups = group_replicas.len();
    assert!(n_groups >= 1, "need at least one group");
    let local = Addr::Replica(group_replicas[0].id());
    let (out_tx, out_rx) = unbounded::<(Addr, Msg)>();
    let mut group_txs = Vec::with_capacity(n_groups);
    let mut replicas = Vec::with_capacity(n_groups);
    for (gi, replica) in group_replicas.into_iter().enumerate() {
        assert_eq!(
            Addr::Replica(replica.id()),
            local,
            "one node hosts one process id across all groups"
        );
        let (tx, rx) = unbounded();
        group_txs.push(tx);
        let port = GroupPort {
            group: GroupId(gi as u32),
            n_groups,
            local,
            rx,
            out: out_tx.clone(),
        };
        replicas.push(spawn_replica(replica, port, Arc::clone(&stop))?);
    }

    let router = std::thread::Builder::new()
        .name(format!("gp-demux-{local}"))
        .spawn(move || {
            loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                // Ship everything the groups queued for the wire.
                while let Ok((to, msg)) = out_rx.try_recv() {
                    transport.send(to, msg);
                }
                match transport.recv_timeout(DEMUX_TICK) {
                    RecvResult::Msg(from, Msg::Grouped { group, inner }) => {
                        // Unknown group: drop (a peer from a differently
                        // sized deployment).
                        if let Some(tx) = group_txs.get(group.0 as usize) {
                            let _ = tx.send((from, *inner));
                        }
                    }
                    RecvResult::Msg(from, msg) => {
                        let _ = group_txs[0].send((from, msg));
                    }
                    RecvResult::Timeout => {}
                    RecvResult::Closed => break,
                }
            }
            // Final drain so shutdown doesn't strand queued replies.
            while let Ok((to, msg)) = out_rx.try_recv() {
                transport.send(to, msg);
            }
        })?;

    Ok(ShardedNode { replicas, router })
}

/// A whole multi-group replica cluster over loopback TCP: `cfg.n` nodes,
/// each hosting `n_groups` replica state machines.
pub struct ShardedTcpCluster {
    /// Listen addresses of the replica nodes.
    pub addrs: HashMap<ProcessId, SocketAddr>,
    stop: Arc<AtomicBool>,
    nodes: Vec<ShardedNode>,
    n: usize,
    n_groups: usize,
    router: Option<ShardRouter>,
    next_client: AtomicU64,
    /// Per-node WAL coordinators (durable launches only): counters for
    /// asserting fsync amortization.
    coordinators: HashMap<ProcessId, FlushCoordinator>,
}

impl ShardedTcpCluster {
    /// Launch the cluster on ephemeral loopback ports with in-memory
    /// storage. `router` is handed to every client created via
    /// [`ShardedTcpCluster::client`]; with `None` all requests route to
    /// group 0.
    pub fn launch(
        cfg: Config,
        n_groups: usize,
        app_factory: impl Fn() -> Box<dyn App> + Send + Sync,
        router: Option<ShardRouter>,
    ) -> io::Result<ShardedTcpCluster> {
        Self::launch_with_storage(cfg, n_groups, app_factory, router, |_| {
            (0..n_groups)
                .map(|_| Box::new(MemStorage::new()) as Box<dyn Storage>)
                .collect()
        })
    }

    /// Launch a *durable* cluster: each node's `n_groups` replicas share
    /// one write-ahead log under `data_root/node-<id>` via a
    /// [`FlushCoordinator`], so a drain cycle's flush barrier costs one
    /// fsync for the whole node, not one per group. Nodes whose
    /// directories hold prior state are recovered, not created fresh.
    pub fn launch_durable(
        cfg: Config,
        n_groups: usize,
        app_factory: impl Fn() -> Box<dyn App> + Send + Sync,
        router: Option<ShardRouter>,
        data_root: impl AsRef<std::path::Path>,
        mode: SyncMode,
    ) -> io::Result<ShardedTcpCluster> {
        let root = data_root.as_ref().to_path_buf();
        let mut coordinators = HashMap::new();
        for i in 0..cfg.n {
            let id = ProcessId(i as u32);
            let coord =
                FlushCoordinator::open(root.join(format!("node-{}", id.0)), mode, n_groups)?;
            coordinators.insert(id, coord);
        }
        let mut cluster = Self::launch_with_storage(cfg, n_groups, app_factory, router, |id| {
            coordinators[&id]
                .storages()
                .into_iter()
                .map(|s| Box::new(s) as Box<dyn Storage>)
                .collect()
        })?;
        cluster.coordinators = coordinators;
        Ok(cluster)
    }

    /// Launch with custom per-node storage: `storage_factory(id)` returns
    /// one [`Storage`] per group, group `g` at index `g`. Groups whose
    /// storage holds prior state are recovered rather than created fresh.
    pub fn launch_with_storage(
        cfg: Config,
        n_groups: usize,
        app_factory: impl Fn() -> Box<dyn App> + Send + Sync,
        router: Option<ShardRouter>,
        storage_factory: impl Fn(ProcessId) -> Vec<Box<dyn Storage>>,
    ) -> io::Result<ShardedTcpCluster> {
        let n = cfg.n;
        let mut addrs = HashMap::new();
        let mut pending = Vec::new();
        for i in 0..n {
            let id = ProcessId(i as u32);
            let ephemeral = SocketAddr::from(([127, 0, 0, 1], 0));
            let (node, bound) = TcpNode::bind_replica(id, ephemeral, HashMap::new())?;
            addrs.insert(id, bound);
            pending.push((id, node));
        }
        for (_, node) in &mut pending {
            node.peers = addrs.clone();
        }

        let stop = Arc::new(AtomicBool::new(false));
        let mut nodes = Vec::new();
        for (id, transport) in pending {
            let storages = storage_factory(id);
            assert_eq!(storages.len(), n_groups, "one storage per group");
            let group_replicas = storages
                .into_iter()
                .enumerate()
                .map(|(gi, storage)| {
                    let g = GroupId(gi as u32);
                    let prior = storage.load();
                    let has_prior = !prior.promised.is_zero()
                        || !prior.accepted.is_empty()
                        || prior.checkpoint.is_some()
                        || prior.chosen_prefix.0 > 0;
                    if has_prior {
                        Replica::recover(
                            id,
                            group_config(&cfg, g),
                            app_factory(),
                            storage,
                            group_seed(0xace0 + u64::from(id.0), g),
                            Time::ZERO,
                        )
                    } else {
                        Replica::new(
                            id,
                            group_config(&cfg, g),
                            app_factory(),
                            storage,
                            group_seed(0xace0 + u64::from(id.0), g),
                            Time::ZERO,
                        )
                    }
                })
                .collect();
            nodes.push(spawn_sharded_node(
                group_replicas,
                transport,
                Arc::clone(&stop),
            )?);
        }
        Ok(ShardedTcpCluster {
            addrs,
            stop,
            nodes,
            n,
            n_groups,
            router,
            // Unique across incarnations: replicas' dedup tables outlive
            // any single client.
            next_client: AtomicU64::new(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(1)
                    | 1,
            ),
            coordinators: HashMap::new(),
        })
    }

    /// Number of consensus groups per node.
    #[must_use]
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// The WAL coordinator for node `id` (durable launches only).
    #[must_use]
    pub fn coordinator(&self, id: ProcessId) -> Option<&FlushCoordinator> {
        self.coordinators.get(&id)
    }

    /// Create a blocking shard-aware client connected to the whole group.
    #[must_use]
    pub fn client(&self) -> SyncClient<TcpNode> {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let node = TcpNode::client(id, self.addrs.clone());
        let core = ClientCore::new(id, self.n, Dur::from_millis(500))
            .with_groups(self.n_groups, self.router.clone());
        SyncClient::new(core, node, self.n)
    }

    /// Stop everything and join, returning each node's per-group replicas
    /// (`result[node][group]`).
    pub fn shutdown(self) -> Vec<Vec<Replica>> {
        self.stop.store(true, Ordering::Relaxed);
        self.nodes.into_iter().map(ShardedNode::join).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inproc::Hub;
    use bytes::Bytes;
    use gridpaxos_core::request::{ReplyBody, RequestKind};
    use gridpaxos_core::service::NoopApp;

    /// Shard on the first payload byte.
    fn byte_router() -> ShardRouter {
        ShardRouter::new(|req| req.op.first().map(|b| u64::from(*b)))
    }

    fn noop_factory() -> Box<dyn App> {
        Box::new(NoopApp::new())
    }

    #[test]
    fn sharded_hub_cluster_serves_both_groups() {
        let cfg = Config::cluster(3);
        let n_groups = 2;
        let hub = Hub::new();
        let stop = Arc::new(AtomicBool::new(false));
        let mut nodes = Vec::new();
        for i in 0..cfg.n {
            let id = ProcessId(i as u32);
            let group_replicas = (0..n_groups)
                .map(|gi| {
                    let g = GroupId(gi as u32);
                    Replica::new(
                        id,
                        group_config(&cfg, g),
                        noop_factory(),
                        Box::new(MemStorage::new()) as Box<dyn Storage>,
                        group_seed(7 + u64::from(id.0), g),
                        Time::ZERO,
                    )
                })
                .collect();
            let endpoint = hub.endpoint(Addr::Replica(id));
            nodes.push(
                spawn_sharded_node(group_replicas, endpoint, Arc::clone(&stop))
                    .expect("spawn sharded node"),
            );
        }

        let cid = ClientId(400);
        let core = ClientCore::new(cid, cfg.n, Dur::from_millis(200))
            .with_groups(n_groups, Some(byte_router()));
        let mut client = SyncClient::new(core, hub.endpoint(Addr::Client(cid)), cfg.n);

        // Even first byte → group 0, odd → group 1: both must serve.
        for key in [0u8, 1, 2, 3] {
            let body = client
                .call(RequestKind::Write, Bytes::copy_from_slice(&[key]))
                .expect("write completes");
            assert!(matches!(body, ReplyBody::Ok(_)), "got {body:?}");
        }

        stop.store(true, Ordering::Relaxed);
        let per_node: Vec<Vec<Replica>> = nodes.into_iter().map(ShardedNode::join).collect();
        // Each group chose exactly its two writes somewhere; group logs are
        // independent, so per-group chosen prefixes agree across nodes.
        for g in 0..n_groups {
            let prefixes: Vec<_> = per_node.iter().map(|rs| rs[g].chosen_prefix()).collect();
            assert!(
                prefixes.iter().all(|p| p.0 >= 1),
                "group {g} chose nothing: {prefixes:?}"
            );
        }
    }

    /// A durable multi-group cluster in batched mode: the shared WAL
    /// amortizes fsyncs across groups, and a full restart recovers every
    /// group's state from disk.
    #[test]
    fn durable_sharded_cluster_amortizes_fsyncs_and_recovers() {
        let root = std::env::temp_dir().join(format!(
            "gridpaxos-shard-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let cfg = Config::cluster(3);
        let n_groups = 4;

        let first_chosen: Vec<_>;
        {
            let cluster = ShardedTcpCluster::launch_durable(
                cfg.clone(),
                n_groups,
                noop_factory,
                Some(byte_router()),
                &root,
                SyncMode::Batched,
            )
            .expect("launch durable");
            let mut client = cluster.client();
            for key in 0u8..8 {
                let body = client
                    .call(RequestKind::Write, Bytes::copy_from_slice(&[key]))
                    .expect("write completes");
                assert!(matches!(body, ReplyBody::Ok(_)), "got {body:?}");
            }
            for i in 0..cfg.n {
                let coord = cluster.coordinator(ProcessId(i as u32)).expect("coord");
                assert!(coord.appends() > 0, "node {i} persisted nothing");
                assert!(
                    coord.syncs() <= coord.appends(),
                    "node {i}: more syncs ({}) than appends ({})?",
                    coord.syncs(),
                    coord.appends()
                );
            }
            let per_node = cluster.shutdown();
            first_chosen = (0..n_groups)
                .map(|g| {
                    per_node
                        .iter()
                        .map(|rs| rs[g].chosen_prefix())
                        .max()
                        .unwrap()
                })
                .collect();
            assert!(
                first_chosen.iter().all(|p| p.0 >= 1),
                "every group served at least one write: {first_chosen:?}"
            );
        }

        // Restart from the same directories: recovery must replay every
        // group's chosen prefix from the shared WAL.
        let cluster = ShardedTcpCluster::launch_durable(
            cfg,
            n_groups,
            noop_factory,
            Some(byte_router()),
            &root,
            SyncMode::Batched,
        )
        .expect("relaunch durable");
        let per_node = cluster.shutdown();
        for (g, want) in first_chosen.iter().enumerate() {
            let recovered = per_node
                .iter()
                .map(|rs| rs[g].chosen_prefix())
                .max()
                .unwrap();
            assert!(
                recovered >= *want,
                "group {g}: recovered prefix {recovered:?} < pre-crash {want:?}"
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn sharded_tcp_cluster_round_trips() {
        let cluster =
            ShardedTcpCluster::launch(Config::cluster(3), 2, noop_factory, Some(byte_router()))
                .expect("launch");
        let mut client = cluster.client();
        for key in [0u8, 1, 2, 3, 4, 5] {
            let body = client
                .call(RequestKind::Write, Bytes::copy_from_slice(&[key]))
                .expect("write completes");
            assert!(matches!(body, ReplyBody::Ok(_)), "got {body:?}");
        }
        let per_node = cluster.shutdown();
        assert_eq!(per_node.len(), 3);
        assert!(per_node.iter().all(|rs| rs.len() == 2));
    }
}
