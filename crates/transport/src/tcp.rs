//! TCP transport: the deployment substrate the paper's prototype used
//! ("The communication between service replicas, and between clients and
//! service replicas, uses TCP sockets").
//!
//! Every replica listens on a socket. A connection starts with a *hello*
//! frame carrying the dialer's protocol address; after that, frames are
//! wire-encoded messages. Replies to clients travel back over the client's
//! own inbound connection, so clients never need to listen.

use crate::framing::{read_frame, write_frame};
use crate::node::{RecvResult, Transport};
use crate::wire::{decode_msg, encode_with_scratch, get_addr, put_addr};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gridpaxos_core::msg::Msg;
use gridpaxos_core::types::{Addr, ClientId, ProcessId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

type Inbox = (Addr, Msg);

/// A TCP-backed [`Transport`] endpoint.
pub struct TcpNode {
    local: Addr,
    inbox_rx: Receiver<Inbox>,
    inbox_tx: Sender<Inbox>,
    /// Open outbound writers by peer address. The channel carries decoded
    /// messages: each connection's writer thread owns a reusable scratch
    /// buffer and serializes there, so the replica/client thread pays no
    /// per-message encode allocation.
    conns: Arc<Mutex<HashMap<Addr, Sender<Msg>>>>,
    /// Listen addresses of the replicas (for dialing).
    pub(crate) peers: HashMap<ProcessId, SocketAddr>,
}

impl TcpNode {
    /// Bind a replica endpoint: listen on `listen`, learn the peer replica
    /// listen addresses for dialing. Returns the node and the actual bound
    /// address (useful with port 0).
    pub fn bind_replica(
        id: ProcessId,
        listen: SocketAddr,
        peers: HashMap<ProcessId, SocketAddr>,
    ) -> io::Result<(TcpNode, SocketAddr)> {
        let listener = TcpListener::bind(listen)?;
        let bound = listener.local_addr()?;
        let (inbox_tx, inbox_rx) = unbounded();
        let node = TcpNode {
            local: Addr::Replica(id),
            inbox_rx,
            inbox_tx: inbox_tx.clone(),
            conns: Arc::new(Mutex::new(HashMap::new())),
            peers,
        };
        let conns = Arc::clone(&node.conns);
        let local = node.local;
        std::thread::Builder::new()
            .name(format!("gp-listen-{id}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    spawn_connection(stream, None, local, inbox_tx.clone(), Arc::clone(&conns));
                }
            })?;
        Ok((node, bound))
    }

    /// Create a client endpoint that can dial the given replicas.
    #[must_use]
    pub fn client(id: ClientId, replicas: HashMap<ProcessId, SocketAddr>) -> TcpNode {
        let (inbox_tx, inbox_rx) = unbounded();
        TcpNode {
            local: Addr::Client(id),
            inbox_rx,
            inbox_tx,
            conns: Arc::new(Mutex::new(HashMap::new())),
            peers: replicas,
        }
    }

    /// Get (or lazily establish) the outbound writer for `to`.
    fn writer_for(&self, to: Addr) -> Option<Sender<Msg>> {
        if let Some(tx) = self.conns.lock().get(&to) {
            return Some(tx.clone());
        }
        // Only replicas can be dialed (clients don't listen).
        let sock = match to {
            Addr::Replica(p) => *self.peers.get(&p)?,
            Addr::Client(_) => return None,
        };
        let stream = TcpStream::connect_timeout(&sock, Duration::from_millis(500)).ok()?;
        spawn_connection(
            stream,
            Some(to),
            self.local,
            self.inbox_tx.clone(),
            Arc::clone(&self.conns),
        )
    }
}

/// Start reader + writer threads for a connection. `dialed` is `Some(peer)`
/// when we initiated (we send the hello); `None` when accepted (we read the
/// hello first). Returns the outbound sender.
fn spawn_connection(
    stream: TcpStream,
    dialed: Option<Addr>,
    local: Addr,
    inbox: Sender<Inbox>,
    conns: Arc<Mutex<HashMap<Addr, Sender<Msg>>>>,
) -> Option<Sender<Msg>> {
    // Both accepted and dialed sockets pass through here, so every
    // connection runs with Nagle disabled: batching is done explicitly by
    // the writer below (and by the drive loop's group commit), not by the
    // kernel delaying small frames.
    stream.set_nodelay(true).ok();
    let (out_tx, out_rx): (Sender<Msg>, Receiver<Msg>) = unbounded();

    let write_stream = stream.try_clone().ok()?;
    let hello = {
        let mut b = BytesMut::new();
        put_addr(&mut b, &local);
        b.freeze()
    };
    // Writer thread: hello (if dialing), then queued messages. All frames
    // queued for this peer at the moment the thread wakes are coalesced
    // into one batch buffer and leave in a single `write` syscall — a
    // drain cycle's worth of Accepts/Accepteds to the same peer costs one
    // write, not one per frame.
    let send_hello = dialed.is_some();
    std::thread::spawn(move || {
        let mut stream = write_stream;
        let mut batch: Vec<u8> = Vec::with_capacity(4096);
        if send_hello {
            if write_frame(&mut batch, &hello).is_err() || stream.write_all(&batch).is_err() {
                return;
            }
            batch.clear();
        }
        let mut scratch = BytesMut::new();
        while let Ok(msg) = out_rx.recv() {
            let frame = encode_with_scratch(&msg, &mut scratch);
            if write_frame(&mut batch, frame).is_err() {
                return;
            }
            // Coalesce everything already queued (bounded so one slow
            // peer can't grow the batch without limit).
            let mut coalesced = 1;
            while coalesced < 256 {
                let Ok(more) = out_rx.try_recv() else { break };
                let frame = encode_with_scratch(&more, &mut scratch);
                if write_frame(&mut batch, frame).is_err() {
                    return;
                }
                coalesced += 1;
            }
            if stream.write_all(&batch).is_err() {
                return;
            }
            batch.clear();
            if batch.capacity() > 1 << 20 {
                batch = Vec::with_capacity(4096); // don't hoard a burst's buffer
            }
        }
    });

    if let Some(peer) = dialed {
        conns.lock().insert(peer, out_tx.clone());
        let out_for_reader = out_tx.clone();
        std::thread::spawn(move || {
            reader_loop(stream, peer, inbox);
            conns.lock().remove(&peer);
            drop(out_for_reader);
        });
        Some(out_tx)
    } else {
        // Accepted: learn the peer from its hello, then register.
        std::thread::spawn(move || {
            let Ok(read_stream) = stream.try_clone() else {
                return; // fd duplication failed: abandon the connection
            };
            let mut r = BufReader::new(read_stream);
            let Ok(Some(mut hello)) = read_frame(&mut r) else {
                return;
            };
            let Ok(peer) = get_addr(&mut hello) else {
                return;
            };
            conns.lock().insert(peer, out_tx);
            reader_loop_buf(r, peer, inbox);
            conns.lock().remove(&peer);
        });
        None
    }
}

fn reader_loop(stream: TcpStream, peer: Addr, inbox: Sender<Inbox>) {
    let r = BufReader::new(stream);
    reader_loop_buf(r, peer, inbox);
}

fn reader_loop_buf(mut r: BufReader<TcpStream>, peer: Addr, inbox: Sender<Inbox>) {
    loop {
        match read_frame(&mut r) {
            Ok(Some(mut frame)) => match decode_msg(&mut frame) {
                Ok(msg) => {
                    if inbox.send((peer, msg)).is_err() {
                        return;
                    }
                }
                Err(_) => return, // protocol violation: drop the connection
            },
            Ok(None) | Err(_) => return,
        }
    }
}

impl Transport for TcpNode {
    fn send(&self, to: Addr, msg: Msg) {
        if let Some(tx) = self.writer_for(to) {
            let _ = tx.send(msg);
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> RecvResult {
        match self.inbox_rx.recv_timeout(timeout) {
            Ok((from, msg)) => RecvResult::Msg(from, msg),
            Err(RecvTimeoutError::Timeout) => RecvResult::Timeout,
            Err(RecvTimeoutError::Disconnected) => RecvResult::Closed,
        }
    }

    fn local_addr(&self) -> Addr {
        self.local
    }
}

/// A convenience harness: a whole replica group over loopback TCP.
pub struct TcpCluster {
    /// Listen addresses of the replicas.
    pub addrs: HashMap<ProcessId, SocketAddr>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    handles: Vec<std::thread::JoinHandle<gridpaxos_core::replica::Replica>>,
    n: usize,
    next_client: std::sync::atomic::AtomicU64,
}

impl TcpCluster {
    /// Launch `cfg.n` replicas of the service built by `app_factory` on
    /// ephemeral loopback ports, with in-memory storage.
    pub fn launch(
        cfg: gridpaxos_core::config::Config,
        app_factory: impl Fn() -> Box<dyn gridpaxos_core::service::App> + Send + Sync,
    ) -> io::Result<TcpCluster> {
        Self::launch_with_storage(cfg, app_factory, |_| {
            Box::new(gridpaxos_core::storage::MemStorage::new())
        })
    }

    /// Launch with custom per-replica storage (e.g. [`crate::FileStorage`]
    /// for a durable cluster). Replicas whose storage holds prior state
    /// are *recovered* rather than created fresh.
    pub fn launch_with_storage(
        cfg: gridpaxos_core::config::Config,
        app_factory: impl Fn() -> Box<dyn gridpaxos_core::service::App> + Send + Sync,
        storage_factory: impl Fn(ProcessId) -> Box<dyn gridpaxos_core::storage::Storage> + Send + Sync,
    ) -> io::Result<TcpCluster> {
        let n = cfg.n;
        // Bind all listeners first so every node knows every address.
        let mut nodes = Vec::new();
        let mut addrs = HashMap::new();
        let mut pending = Vec::new();
        for i in 0..n {
            let id = ProcessId(i as u32);
            let ephemeral = SocketAddr::from(([127, 0, 0, 1], 0));
            let (node, bound) = TcpNode::bind_replica(id, ephemeral, HashMap::new())?;
            addrs.insert(id, bound);
            pending.push((id, node));
        }
        for (_, node) in &mut pending {
            node.peers = addrs.clone();
        }
        nodes.extend(pending);

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for (id, node) in nodes {
            let storage = storage_factory(id);
            let prior = storage.load();
            let has_prior = !prior.promised.is_zero()
                || !prior.accepted.is_empty()
                || prior.checkpoint.is_some()
                || prior.chosen_prefix.0 > 0;
            let replica = if has_prior {
                gridpaxos_core::replica::Replica::recover(
                    id,
                    cfg.clone(),
                    app_factory(),
                    storage,
                    0xace0 + u64::from(id.0),
                    gridpaxos_core::types::Time::ZERO,
                )
            } else {
                gridpaxos_core::replica::Replica::new(
                    id,
                    cfg.clone(),
                    app_factory(),
                    storage,
                    0xace0 + u64::from(id.0),
                    gridpaxos_core::types::Time::ZERO,
                )
            };
            handles.push(crate::node::spawn_replica(
                replica,
                node,
                Arc::clone(&stop),
            )?);
        }
        Ok(TcpCluster {
            addrs,
            stop,
            handles,
            n,
            // Client ids must be unique across cluster incarnations (the
            // replicas' dedup tables survive restarts), so derive the base
            // from the wall clock.
            next_client: std::sync::atomic::AtomicU64::new(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(1)
                    | 1,
            ),
        })
    }

    /// Create a blocking client connected to the whole group.
    #[must_use]
    pub fn client(&self) -> crate::node::SyncClient<TcpNode> {
        let id = ClientId(
            self.next_client
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        let node = TcpNode::client(id, self.addrs.clone());
        let core = gridpaxos_core::client::ClientCore::new(
            id,
            self.n,
            gridpaxos_core::types::Dur::from_millis(500),
        );
        crate::node::SyncClient::new(core, node, self.n)
    }

    /// Stop all replicas and join their threads, returning the replicas
    /// for inspection.
    pub fn shutdown(self) -> Vec<gridpaxos_core::replica::Replica> {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        self.handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(replica) => replica,
                // Propagate a replica thread's panic to the caller intact.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }
}
