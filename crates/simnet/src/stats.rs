//! Small statistics helpers: means, percentiles and the 99% confidence
//! intervals the paper reports next to every number.

/// Summary statistics over a sample of (latency) values.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Half-width of the 99% confidence interval of the mean.
    pub ci99: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// z-value for a two-sided 99% confidence interval of the mean.
const Z99: f64 = 2.576;

/// Summarize a sample. Returns `Summary::default()` for an empty slice.
#[must_use]
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary::default();
    }
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let std = var.sqrt();
    let ci99 = Z99 * std / (n as f64).sqrt();

    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Summary {
        n,
        mean,
        std,
        ci99,
        min: sorted[0],
        p50: percentile_sorted(&sorted, 0.50),
        p99: percentile_sorted(&sorted, 0.99),
        max: sorted[n - 1],
    }
}

/// Percentile (0..=1) of an already-sorted sample, nearest-rank method.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_zeroes() {
        assert_eq!(summarize(&[]), Summary::default());
    }

    #[test]
    fn single_sample_has_no_spread() {
        let s = summarize(&[5.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci99, 0.0);
        assert_eq!(s.p50, 5.0);
    }

    #[test]
    fn known_sample_statistics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        // Sample std of 1..5 is sqrt(2.5).
        assert!((s.std - 2.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = summarize(&[1.0, 2.0, 3.0, 2.0, 1.0, 3.0]);
        let big_data: Vec<f64> = (0..600).map(|i| 1.0 + (i % 3) as f64).collect();
        let big = summarize(&big_data);
        assert!(big.ci99 < small.ci99);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_sorted(&sorted, 0.50), 50.0);
        assert_eq!(percentile_sorted(&sorted, 0.99), 99.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 100.0);
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
    }
}
