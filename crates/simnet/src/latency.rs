//! Link latency models.
//!
//! The paper's three configurations differ only in where processes sit:
//! a Gigabit-Ethernet cluster (§4, "Sysnet"), clients far from co-located
//! replicas (Berkeley → Princeton) and replicas spread across a WAN. We
//! model one-way link latency with simple distributions; the log-normal
//! is the classic fit for PlanetLab-style wide-area jitter.

use gridpaxos_core::types::Dur;
use rand::rngs::SmallRng;
use rand::Rng;

/// A one-way latency distribution. All parameters in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Constant latency.
    Constant(f64),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound (ms).
        lo: f64,
        /// Upper bound (ms).
        hi: f64,
    },
    /// Normal with mean and standard deviation, truncated at `0.01 * mean`.
    Normal {
        /// Mean (ms).
        mean: f64,
        /// Standard deviation (ms).
        std: f64,
    },
    /// Log-normal parameterized by the *median* and a shape factor sigma
    /// (sigma of the underlying normal). Heavy upper tail — wide-area.
    LogNormal {
        /// Median latency (ms).
        median: f64,
        /// Shape (sigma of ln-space).
        sigma: f64,
    },
}

impl LatencyModel {
    /// Draw one latency sample.
    pub fn sample(&self, rng: &mut SmallRng) -> Dur {
        let ms = match *self {
            LatencyModel::Constant(c) => c,
            LatencyModel::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    rng.gen_range(lo..hi)
                }
            }
            LatencyModel::Normal { mean, std } => {
                let z = sample_standard_normal(rng);
                (mean + std * z).max(mean * 0.01)
            }
            LatencyModel::LogNormal { median, sigma } => {
                let z = sample_standard_normal(rng);
                median * (sigma * z).exp()
            }
        };
        Dur::from_millis_f64(ms.max(0.0))
    }

    /// The distribution's nominal central value (ms) — used for reporting
    /// and for deriving timeout configurations.
    #[must_use]
    pub fn nominal_ms(&self) -> f64 {
        match *self {
            LatencyModel::Constant(c) => c,
            LatencyModel::Uniform { lo, hi } => (lo + hi) / 2.0,
            LatencyModel::Normal { mean, .. } => mean,
            LatencyModel::LogNormal { median, .. } => median,
        }
    }
}

/// Box–Muller standard normal draw.
fn sample_standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(0.09);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), Dur::from_millis_f64(0.09));
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let m = LatencyModel::Uniform { lo: 1.0, hi: 2.0 };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r).as_millis_f64();
            assert!((1.0..=2.0).contains(&d), "{d}");
        }
    }

    #[test]
    fn normal_mean_converges() {
        let m = LatencyModel::Normal {
            mean: 10.0,
            std: 1.0,
        };
        let mut r = rng();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| m.sample(&mut r).as_millis_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_never_negative() {
        let m = LatencyModel::Normal {
            mean: 1.0,
            std: 10.0,
        };
        let mut r = rng();
        for _ in 0..5000 {
            assert!(m.sample(&mut r).as_millis_f64() >= 0.0);
        }
    }

    #[test]
    fn lognormal_median_converges_and_tails_high() {
        let m = LatencyModel::LogNormal {
            median: 40.0,
            sigma: 0.2,
        };
        let mut r = rng();
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| m.sample(&mut r).as_millis_f64()).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        assert!((median - 40.0).abs() < 1.0, "median {median}");
        // Heavy upper tail: max well above median, min not symmetric.
        assert!(xs[n - 1] - 40.0 > 40.0 - xs[0]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel::LogNormal {
            median: 40.0,
            sigma: 0.2,
        };
        let a: Vec<Dur> = {
            let mut r = rng();
            (0..10).map(|_| m.sample(&mut r)).collect()
        };
        let b: Vec<Dur> = {
            let mut r = rng();
            (0..10).map(|_| m.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
