//! Measurement collection: request/transaction latencies, throughput and
//! message accounting.

use crate::stats::{summarize, Summary};
use gridpaxos_core::request::{Request, RequestKind};
use gridpaxos_core::types::{Dur, Time};
use std::collections::HashMap;

/// Everything a simulation run measures.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Request round-trip times in milliseconds, keyed by kind
    /// (`"read"`, `"write"`, `"original"`).
    pub rtt_ms: HashMap<&'static str, Vec<f64>>,
    /// Transaction response times in milliseconds (first op sent →
    /// commit acknowledged).
    pub txn_ms: Vec<f64>,
    /// Committed transactions.
    pub txn_commits: u64,
    /// Aborted transactions.
    pub txn_aborts: u64,
    /// Completed operations (any kind).
    pub completed_ops: u64,
    /// Time measurement started (first client kicked off).
    pub measure_start: Option<Time>,
    /// Completion time of the last operation.
    pub last_op_done: Option<Time>,
    /// Messages delivered, by protocol tag.
    pub msgs_by_tag: HashMap<&'static str, u64>,
    /// Messages dropped by the lossy network.
    pub dropped_msgs: u64,
    /// Client retransmissions observed.
    pub retries: u64,
    /// WAL records persisted across all replicas.
    pub wal_appends: u64,
    /// Stable-storage syncs charged across all replicas (durability model
    /// only). Per-record mode pays one per append; group commit pays one
    /// per flush barrier, so `fsyncs / wal_appends` is the amortization.
    pub fsyncs: u64,
}

/// Measurement key for a request.
#[must_use]
pub fn kind_key(req: &Request) -> &'static str {
    match req.kind {
        RequestKind::Read => "read",
        RequestKind::Write => "write",
        RequestKind::Original => "original",
    }
}

impl Metrics {
    /// Record one completed operation.
    pub fn record_op(&mut self, req: &Request, rtt: Dur, now: Time, retries: u32) {
        self.rtt_ms
            .entry(kind_key(req))
            .or_default()
            .push(rtt.as_millis_f64());
        self.completed_ops += 1;
        self.retries += u64::from(retries);
        self.last_op_done = Some(self.last_op_done.map_or(now, |t| t.max(now)));
    }

    /// Record one finished transaction.
    pub fn record_txn(&mut self, elapsed: Dur, committed: bool) {
        if committed {
            self.txn_ms.push(elapsed.as_millis_f64());
            self.txn_commits += 1;
        } else {
            self.txn_aborts += 1;
        }
    }

    /// Latency summary for a request kind.
    #[must_use]
    pub fn rtt_summary(&self, kind: &str) -> Summary {
        summarize(self.rtt_ms.get(kind).map_or(&[][..], Vec::as_slice))
    }

    /// Latency summary over transactions.
    #[must_use]
    pub fn txn_summary(&self) -> Summary {
        summarize(&self.txn_ms)
    }

    /// Operations per second over the measurement window.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        self.per_sec(self.completed_ops)
    }

    /// Committed transactions per second over the measurement window.
    #[must_use]
    pub fn txns_per_sec(&self) -> f64 {
        self.per_sec(self.txn_commits)
    }

    fn per_sec(&self, count: u64) -> f64 {
        match (self.measure_start, self.last_op_done) {
            (Some(a), Some(b)) if b > a => count as f64 / b.since(a).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Confirm-path messages delivered per completed read: every per-read
    /// `confirm` plus the epoch-batched `confirm_req`/`confirm_batch`
    /// exchanges, divided by completed reads. The per-read protocol pays
    /// `n - 1` confirms per read, so this sits near 2.0 for `n = 3`;
    /// epoch batching drives it below 1.0 at saturation (one round
    /// validates many reads). `NaN` when no reads completed.
    #[must_use]
    pub fn confirm_msgs_per_read(&self) -> f64 {
        let confirm_msgs: u64 = ["confirm", "confirm_req", "confirm_batch"]
            .iter()
            .filter_map(|t| self.msgs_by_tag.get(t))
            .sum();
        let reads = self.rtt_ms.get("read").map_or(0, Vec::len);
        confirm_msgs as f64 / reads as f64
    }

    /// Fsyncs charged per completed operation. Per-record durability sits
    /// well above 1.0 for writes (accept + chosen-prefix records each pay
    /// a sync on several replicas); group commit drives it below 1.0 once
    /// batches form. `NaN` when no operations completed.
    #[must_use]
    pub fn fsyncs_per_op(&self) -> f64 {
        self.fsyncs as f64 / self.completed_ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::request::RequestId;
    use gridpaxos_core::types::{ClientId, Seq};

    fn req(kind: RequestKind) -> Request {
        Request::new(
            RequestId::new(ClientId(1), Seq(1)),
            kind,
            bytes::Bytes::new(),
        )
    }

    #[test]
    fn ops_accumulate_per_kind() {
        let mut m = Metrics {
            measure_start: Some(Time::ZERO),
            ..Metrics::default()
        };
        m.record_op(
            &req(RequestKind::Read),
            Dur::from_millis(1),
            Time(2_000_000_000),
            0,
        );
        m.record_op(
            &req(RequestKind::Write),
            Dur::from_millis(2),
            Time(4_000_000_000),
            1,
        );
        assert_eq!(m.rtt_summary("read").n, 1);
        assert_eq!(m.rtt_summary("write").n, 1);
        assert_eq!(m.rtt_summary("original").n, 0);
        assert_eq!(m.completed_ops, 2);
        assert_eq!(m.retries, 1);
        // 2 ops over 4 seconds.
        assert!((m.ops_per_sec() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn txn_accounting_separates_aborts() {
        let mut m = Metrics {
            measure_start: Some(Time::ZERO),
            last_op_done: Some(Time(1_000_000_000)),
            ..Metrics::default()
        };
        m.record_txn(Dur::from_millis(3), true);
        m.record_txn(Dur::from_millis(9), false);
        assert_eq!(m.txn_commits, 1);
        assert_eq!(m.txn_aborts, 1);
        assert_eq!(m.txn_summary().n, 1, "aborted txns don't pollute latency");
        assert!((m.txns_per_sec() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn confirm_msgs_per_read_counts_all_confirm_traffic() {
        let mut m = Metrics::default();
        for _ in 0..4 {
            m.record_op(
                &req(RequestKind::Read),
                Dur::from_millis(1),
                Time(1_000_000),
                0,
            );
        }
        m.msgs_by_tag.insert("confirm", 2);
        m.msgs_by_tag.insert("confirm_req", 1);
        m.msgs_by_tag.insert("confirm_batch", 1);
        m.msgs_by_tag.insert("accept", 99); // unrelated traffic ignored
        assert!((m.confirm_msgs_per_read() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_zero_without_window() {
        let m = Metrics::default();
        assert_eq!(m.ops_per_sec(), 0.0);
    }
}
