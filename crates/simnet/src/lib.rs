//! # gridpaxos-simnet
//!
//! Deterministic discrete-event network simulator for the `gridpaxos`
//! protocol core. This is the substitute for the paper's physical
//! testbeds: the UCSD *Sysnet* cluster and the two PlanetLab deployments
//! (§4) become [`topology::Topology`] presets with calibrated latency
//! models, and machine saturation becomes a per-replica single-server
//! queue with CPU costs ([`cpu::CpuModel`]).
//!
//! Because the protocol core is sans-io, the simulator runs the *identical*
//! code a real deployment runs — only the clock and the wires are virtual.
//! Every run is seeded and reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cpu;
pub mod latency;
pub mod metrics;
pub mod runner;
pub mod sched;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod workload;
pub mod world;

pub use cpu::CpuModel;
pub use latency::LatencyModel;
pub use metrics::Metrics;
pub use runner::{
    measure_rrt, measure_throughput, measure_txn_rrt, measure_txn_throughput, Experiment,
};
pub use sched::TimerGens;
pub use stats::{summarize, Summary};
pub use topology::Topology;
pub use trace::{Trace, TraceEvent};
pub use workload::{Driver, OpLoop, TxnLoop};
pub use world::{DurabilityMode, SimOpts, World};
