//! The discrete-event simulation kernel.
//!
//! A [`World`] owns the replicas and clients (all sans-io state machines
//! from `gridpaxos-core`), a virtual clock, and an event queue. Messages
//! take link latencies drawn from the [`crate::topology::Topology`];
//! replicas pay CPU costs from the [`crate::cpu::CpuModel`], which models
//! each replica as a single-server queue (events wait while the process is
//! busy). Everything is seeded, so runs are bit-for-bit reproducible.

use crate::cpu::CpuModel;
use crate::metrics::Metrics;
use crate::topology::{SiteId, Topology};
use crate::trace::{Trace, TraceEvent};
use crate::workload::Driver;
use gridpaxos_core::action::{Action, TimerKind};
use gridpaxos_core::client::{ClientCore, ShardRouter};
use gridpaxos_core::config::Config;
use gridpaxos_core::msg::Msg;
use gridpaxos_core::multi::MultiReplica;
use gridpaxos_core::replica::Replica;
use gridpaxos_core::service::App;
use gridpaxos_core::storage::{MemStorage, Storage};
use gridpaxos_core::types::{Addr, ClientId, Dur, GroupId, ProcessId, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// How the simulation charges for stable storage (the WAL fsyncs a real
/// durable deployment pays).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Storage is free — pure protocol/latency simulation (the default;
    /// matches the behavior before the durability model existed).
    #[default]
    None,
    /// One `fsync` per persisted record, blocking the replica's CPU:
    /// classic persist-before-send, the conservative durable deployment.
    PerRecord,
    /// Group commit: an `fsync` runs beside the CPU and covers every
    /// record appended before it starts. Messages produced by an event
    /// that persisted records depart only once the covering flush
    /// completes (persist-before-send at batch granularity); the CPU is
    /// free to process the next event meanwhile. Events whose records are
    /// covered by an already-pending flush join it instead of paying
    /// their own — that is the amortization.
    Batched,
}

/// Options for building a [`World`].
pub struct SimOpts {
    /// Network topology (placement + latency models).
    pub topology: Topology,
    /// Per-replica CPU cost model.
    pub cpu: CpuModel,
    /// Master seed; every source of randomness derives from it.
    pub seed: u64,
    /// Client retransmission timeout.
    pub client_retry: Dur,
    /// Stable-storage cost model.
    pub durability: DurabilityMode,
}

impl SimOpts {
    /// Sensible defaults for a topology: Sysnet CPU costs and a retry
    /// timeout of 40× the nominal client→replica latency (clamped to at
    /// least 50 ms).
    #[must_use]
    pub fn for_topology(topology: Topology, seed: u64) -> SimOpts {
        let m = topology.nominal_ms(Addr::Client(ClientId(0)), Addr::Replica(ProcessId(0)));
        let retry = Dur::from_millis_f64((m * 40.0).max(50.0));
        SimOpts {
            topology,
            cpu: CpuModel::sysnet(),
            seed,
            client_retry: retry,
            durability: DurabilityMode::None,
        }
    }
}

enum Payload {
    Deliver {
        from: Addr,
        to: Addr,
        msg: Msg,
    },
    Timer {
        who: Addr,
        group: GroupId,
        kind: TimerKind,
        gen: u64,
    },
    ClientStart(ClientId),
    Crash(ProcessId),
    Recover(ProcessId),
}

struct Scheduled {
    at: Time,
    seq: u64,
    payload: Payload,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[allow(clippy::large_enum_variant)] // n slots per world; boxing would cost a hop per event
enum Slot {
    Up(MultiReplica),
    /// Crashed node: each group's stable storage, in group order.
    Down(Vec<Box<dyn Storage>>),
}

struct SimClient {
    core: ClientCore,
    driver: Box<dyn Driver>,
}

/// A network partition: while active, messages between replicas in
/// different groups are dropped (both directions). Replicas not listed in
/// any group are unreachable from everyone. Client links are unaffected —
/// clients broadcast to all replicas, as in the paper's model.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Groups of replica ids that can talk among themselves.
    pub groups: Vec<Vec<u32>>,
    /// Activation time.
    pub from: Time,
    /// Healing time.
    pub until: Time,
}

impl Partition {
    fn severs(&self, a: ProcessId, b: ProcessId, now: Time) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        let group_of = |p: ProcessId| self.groups.iter().position(|g| g.contains(&p.0));
        match (group_of(a), group_of(b)) {
            (Some(x), Some(y)) => x != y,
            _ => true, // unlisted replicas are cut off entirely
        }
    }
}

/// The simulated universe.
pub struct World {
    /// Virtual clock.
    pub now: Time,
    /// Collected measurements.
    pub metrics: Metrics,
    cfg: Config,
    opts: SimOpts,
    n_groups: usize,
    router: Option<ShardRouter>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    replicas: Vec<Slot>,
    busy_until: Vec<Time>,
    /// Per node in batched durability mode: the latest scheduled flush as
    /// `(start, done)`. A flush whose start lies in the future still
    /// absorbs newly appended records; once started it no longer does.
    flush_sched: Vec<Option<(Time, Time)>>,
    clients: HashMap<ClientId, SimClient>,
    next_client_id: u64,
    timer_gen: crate::sched::TimerGens<(Addr, GroupId, TimerKind)>,
    rng: SmallRng,
    app_factory: Box<dyn Fn() -> Box<dyn App> + Send>,
    partitions: Vec<Partition>,
    trace: Option<Trace>,
}

impl World {
    /// Build a world with `opts.topology.n_replicas()` replicas of the
    /// service produced by `app_factory`, and start them (the bootstrap
    /// election runs as simulated traffic).
    pub fn new(
        cfg: Config,
        opts: SimOpts,
        app_factory: Box<dyn Fn() -> Box<dyn App> + Send>,
    ) -> World {
        World::new_sharded(cfg, opts, app_factory, 1, None)
    }

    /// Build a multi-group world: every node hosts `n_groups` independent
    /// consensus groups, and clients added via [`World::add_client`] route
    /// requests with `router`. With `n_groups == 1` this is exactly
    /// [`World::new`] — the same protocol, byte for byte.
    pub fn new_sharded(
        cfg: Config,
        opts: SimOpts,
        app_factory: Box<dyn Fn() -> Box<dyn App> + Send>,
        n_groups: usize,
        router: Option<ShardRouter>,
    ) -> World {
        let n = opts.topology.n_replicas();
        assert_eq!(cfg.n, n, "config and topology disagree on group size");
        assert!(n_groups >= 1, "need at least one group");
        let mut w = World {
            now: Time::ZERO,
            metrics: Metrics::default(),
            queue: BinaryHeap::new(),
            seq: 0,
            replicas: Vec::with_capacity(n),
            busy_until: vec![Time::ZERO; n],
            flush_sched: vec![None; n],
            clients: HashMap::new(),
            next_client_id: 1,
            timer_gen: crate::sched::TimerGens::new(),
            rng: SmallRng::seed_from_u64(opts.seed),
            cfg,
            opts,
            n_groups,
            router,
            app_factory,
            partitions: Vec::new(),
            trace: None,
        };
        for i in 0..n {
            let mut storages = || Box::new(MemStorage::new()) as Box<dyn Storage>;
            let r = MultiReplica::new(
                ProcessId(i as u32),
                w.cfg.clone(),
                n_groups,
                w.app_factory.as_ref(),
                &mut storages,
                w.opts.seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64),
                Time::ZERO,
            );
            w.replicas.push(Slot::Up(r));
        }
        for i in 0..n {
            let actions = match &mut w.replicas[i] {
                Slot::Up(r) => r.on_start(Time::ZERO),
                Slot::Down(_) => unreachable!("fresh replicas are up"),
            };
            w.dispatch(Addr::Replica(ProcessId(i as u32)), actions, Time::ZERO);
        }
        w
    }

    // ------------------------------------------------------------------
    // Setup
    // ------------------------------------------------------------------

    /// Add a client running `driver`, optionally pinned to a site, first
    /// kicked at `start_at`.
    pub fn add_client(
        &mut self,
        driver: Box<dyn Driver>,
        site: Option<SiteId>,
        start_at: Time,
    ) -> ClientId {
        let id = ClientId(self.next_client_id);
        self.next_client_id += 1;
        if let Some(s) = site {
            self.opts.topology.client_sites.insert(id, s);
        }
        let core = ClientCore::new(id, self.cfg.n, self.opts.client_retry)
            .with_groups(self.n_groups, self.router.clone());
        self.clients.insert(id, SimClient { core, driver });
        self.schedule(start_at, Payload::ClientStart(id));
        id
    }

    /// Crash replica `p` at time `t` (its stable storage survives).
    pub fn crash_at(&mut self, p: ProcessId, t: Time) {
        self.schedule(t, Payload::Crash(p));
    }

    /// Recover replica `p` at time `t` from its retained storage.
    pub fn recover_at(&mut self, p: ProcessId, t: Time) {
        self.schedule(t, Payload::Recover(p));
    }

    /// Partition the replica group between `from` and `until`.
    pub fn partition(&mut self, groups: Vec<Vec<u32>>, from: Time, until: Time) {
        self.partitions.push(Partition {
            groups,
            from,
            until,
        });
    }

    /// Start recording a bounded event trace (see [`Trace::render`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, if tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// The current group-0 leader, if exactly one replica believes it
    /// leads that group. (Single-group worlds: *the* leader.)
    #[must_use]
    pub fn leader(&self) -> Option<ProcessId> {
        self.leader_of(GroupId::ZERO)
    }

    /// The current leader of group `g`, if exactly one replica believes it
    /// leads that group.
    #[must_use]
    pub fn leader_of(&self, g: GroupId) -> Option<ProcessId> {
        let mut found = None;
        for (i, s) in self.replicas.iter().enumerate() {
            if let Slot::Up(m) = s {
                if m.group(g).is_some_and(Replica::is_leader) {
                    if found.is_some() {
                        return None; // transiently two self-believed leaders
                    }
                    found = Some(ProcessId(i as u32));
                }
            }
        }
        found
    }

    /// Access a live replica's group-0 state machine.
    #[must_use]
    pub fn replica(&self, p: ProcessId) -> Option<&Replica> {
        self.group_replica(p, GroupId::ZERO)
    }

    /// Access one group of a live replica.
    #[must_use]
    pub fn group_replica(&self, p: ProcessId, g: GroupId) -> Option<&Replica> {
        match &self.replicas[p.0 as usize] {
            Slot::Up(m) => m.group(g),
            Slot::Down(_) => None,
        }
    }

    /// `(chosen_prefix, service_snapshot)` of every live replica's group 0
    /// — equal across replicas when the system is quiescent and caught up.
    #[must_use]
    pub fn replica_states(&self) -> Vec<(gridpaxos_core::types::Instance, bytes::Bytes)> {
        self.replica_states_of(GroupId::ZERO)
    }

    /// `(chosen_prefix, service_snapshot)` of group `g` on every live
    /// replica.
    #[must_use]
    pub fn replica_states_of(
        &self,
        g: GroupId,
    ) -> Vec<(gridpaxos_core::types::Instance, bytes::Bytes)> {
        self.replicas
            .iter()
            .filter_map(|s| match s {
                Slot::Up(m) => m
                    .group(g)
                    .map(|r| (r.chosen_prefix(), r.service_snapshot())),
                Slot::Down(_) => None,
            })
            .collect()
    }

    /// Number of consensus groups per node.
    #[must_use]
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Whether every client workload has finished.
    #[must_use]
    pub fn all_clients_done(&self) -> bool {
        self.clients.values().all(|c| c.driver.done())
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Run until the virtual clock reaches `deadline` (or the event queue
    /// drains).
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Run until every client workload finishes; give up at `deadline`.
    /// Returns true when all clients completed.
    pub fn run_to_completion(&mut self, deadline: Time) -> bool {
        while !self.all_clients_done() {
            let Some(Reverse(ev)) = self.queue.peek() else {
                return false; // starved: clients waiting but no events
            };
            if ev.at > deadline {
                return false;
            }
            self.step();
        }
        true
    }

    /// Process exactly one event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time ran backwards");
        self.now = ev.at;
        match ev.payload {
            Payload::Deliver { from, to, msg } => {
                if let Some(tr) = &mut self.trace {
                    tr.record(
                        self.now,
                        TraceEvent::Deliver {
                            from,
                            to,
                            tag: msg.tag(),
                        },
                    );
                }
                self.deliver(from, to, msg)
            }
            Payload::Timer {
                who,
                group,
                kind,
                gen,
            } => self.fire_timer(who, group, kind, gen),
            Payload::ClientStart(c) => {
                let start = self.now;
                self.metrics.measure_start =
                    Some(self.metrics.measure_start.map_or(start, |t| t.min(start)));
                self.kick_client(c);
            }
            Payload::Crash(p) => {
                if let Some(tr) = &mut self.trace {
                    tr.record(self.now, TraceEvent::Crash(Addr::Replica(p)));
                }
                let slot = &mut self.replicas[p.0 as usize];
                if let Slot::Up(_) = slot {
                    let Slot::Up(m) = std::mem::replace(slot, Slot::Down(Vec::new())) else {
                        unreachable!()
                    };
                    *slot = Slot::Down(m.into_storages());
                }
            }
            Payload::Recover(p) => {
                if let Some(tr) = &mut self.trace {
                    tr.record(self.now, TraceEvent::Recover(Addr::Replica(p)));
                }
                let slot = &mut self.replicas[p.0 as usize];
                if let Slot::Down(storages) = slot {
                    if storages.is_empty() {
                        return true; // double-recover of a node that never crashed
                    }
                    let storages = std::mem::take(storages);
                    let mut m = MultiReplica::recover(
                        p,
                        self.cfg.clone(),
                        storages,
                        self.app_factory.as_ref(),
                        self.opts
                            .seed
                            .wrapping_add(0xec0e4)
                            .wrapping_add(u64::from(p.0)),
                        self.now,
                    );
                    let actions = m.on_start(self.now);
                    self.replicas[p.0 as usize] = Slot::Up(m);
                    self.busy_until[p.0 as usize] = self.now;
                    self.flush_sched[p.0 as usize] = None;
                    let now = self.now;
                    self.dispatch(Addr::Replica(p), actions, now);
                }
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn schedule(&mut self, at: Time, payload: Payload) {
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at: at.max(self.now),
            seq: self.seq,
            payload,
        }));
    }

    fn deliver(&mut self, from: Addr, to: Addr, msg: Msg) {
        match to {
            Addr::Replica(p) => {
                let idx = p.0 as usize;
                // Single-server queueing: wait until the process is free.
                // One node's groups share the node's CPU — the multicore
                // speedup of a real sharded node is modeled by the bench's
                // per-group topology scaling, not here.
                let busy = self.busy_until[idx];
                if busy > self.now {
                    self.schedule(busy, Payload::Deliver { from, to, msg });
                    return;
                }
                let Slot::Up(m) = &mut self.replicas[idx] else {
                    return; // crashed: message lost
                };
                *self.metrics.msgs_by_tag.entry(msg.tag()).or_default() += 1;
                let recv_cost = self.opts.cpu.recv_cost(&msg);
                let writes_before = m.total_writes();
                let actions = m.on_message(from, msg, self.now);
                let persists = m.total_writes() - writes_before;
                let cpu_done = self.now.after(recv_cost).after(actions_send_cost(
                    &self.opts.cpu,
                    &actions,
                    self.cfg.n,
                ));
                let (busy, send_at) = self.durability_gate(idx, persists, cpu_done);
                self.busy_until[idx] = busy;
                self.dispatch_at(to, actions, send_at, cpu_done);
            }
            Addr::Client(c) => {
                *self.metrics.msgs_by_tag.entry(msg.tag()).or_default() += 1;
                let now = self.now;
                let Some(cl) = self.clients.get_mut(&c) else {
                    return;
                };
                let (done, actions) = cl.core.on_message(msg, now);
                self.dispatch_flat(to, actions, now);
                if let Some(done) = done {
                    let Some(cl) = self.clients.get_mut(&c) else {
                        return;
                    };
                    self.metrics
                        .record_op(&done.req, done.rtt, now, done.retries);
                    cl.driver.on_complete(&done, now, &mut self.metrics);
                    self.kick_client(c);
                }
            }
        }
    }

    fn fire_timer(&mut self, who: Addr, group: GroupId, kind: TimerKind, gen: u64) {
        if !self.timer_gen.is_live(&(who, group, kind), gen) {
            return; // cancelled or replaced
        }
        match who {
            Addr::Replica(p) => {
                let idx = p.0 as usize;
                let busy = self.busy_until[idx];
                if busy > self.now {
                    self.schedule(
                        busy,
                        Payload::Timer {
                            who,
                            group,
                            kind,
                            gen,
                        },
                    );
                    return;
                }
                let Slot::Up(m) = &mut self.replicas[idx] else {
                    return;
                };
                let writes_before = m.total_writes();
                let actions = m.on_timer(group, kind, self.now);
                let persists = m.total_writes() - writes_before;
                let cpu_done =
                    self.now
                        .after(actions_send_cost(&self.opts.cpu, &actions, self.cfg.n));
                let (busy, send_at) = self.durability_gate(idx, persists, cpu_done);
                self.busy_until[idx] = busy;
                self.dispatch_at(who, actions, send_at, cpu_done);
            }
            Addr::Client(c) => {
                let now = self.now;
                let Some(cl) = self.clients.get_mut(&c) else {
                    return;
                };
                let actions = cl.core.on_timer(kind, now);
                self.dispatch_flat(who, actions, now);
            }
        }
    }

    fn kick_client(&mut self, c: ClientId) {
        let now = self.now;
        let Some(cl) = self.clients.get_mut(&c) else {
            return;
        };
        if cl.driver.done() {
            return;
        }
        if let Some(actions) = cl.driver.kick(&mut cl.core, now) {
            self.dispatch_flat(Addr::Client(c), actions, now);
        }
    }

    /// Charge the durability model for `persists` records written by an
    /// event whose CPU work ends at `cpu_done`. Returns
    /// `(busy_until, send_at)`: when the replica's CPU frees up, and when
    /// the event's outbound messages may depart (persist-before-send —
    /// never before the records they acknowledge are durable).
    fn durability_gate(&mut self, idx: usize, persists: u64, cpu_done: Time) -> (Time, Time) {
        if persists == 0 {
            return (cpu_done, cpu_done);
        }
        self.metrics.wal_appends += persists;
        match self.opts.durability {
            DurabilityMode::None => (cpu_done, cpu_done),
            DurabilityMode::PerRecord => {
                // Each record's sync blocks the CPU before the handler's
                // messages leave — the classic serial fsync path.
                self.metrics.fsyncs += persists;
                let done = cpu_done.after(self.opts.cpu.fsync.mul(persists));
                (done, done)
            }
            DurabilityMode::Batched => {
                let done = match self.flush_sched[idx] {
                    // A flush that has not started yet still absorbs these
                    // records: join it instead of paying a new sync.
                    Some((start, done)) if start >= cpu_done => done,
                    prev => {
                        let start = prev.map_or(Time::ZERO, |(_, d)| d).max(cpu_done);
                        let done = start.after(self.opts.cpu.fsync);
                        self.flush_sched[idx] = Some((start, done));
                        self.metrics.fsyncs += 1;
                        done
                    }
                };
                // The disk works beside the CPU: the replica is free at
                // cpu_done, only the sends wait for the barrier.
                (cpu_done, done)
            }
        }
    }

    /// Dispatch untagged actions (clients, which run no per-group state):
    /// their timers key under group 0.
    fn dispatch_flat(&mut self, from: Addr, actions: Vec<Action>, depart: Time) {
        let tagged = actions.into_iter().map(|a| (GroupId::ZERO, a)).collect();
        self.dispatch(from, tagged, depart);
    }

    fn dispatch(&mut self, from: Addr, actions: Vec<(GroupId, Action)>, depart: Time) {
        self.dispatch_at(from, actions, depart, depart);
    }

    /// Like [`World::dispatch`] with separate departure times: messages
    /// leave at `send_at` (after any covering flush barrier), timers are
    /// armed relative to `timer_at` (the CPU completion — the durability
    /// barrier delays sends, not the process's clock).
    fn dispatch_at(
        &mut self,
        from: Addr,
        actions: Vec<(GroupId, Action)>,
        send_at: Time,
        timer_at: Time,
    ) {
        for (g, a) in actions {
            match a {
                Action::Send { to, msg } => self.send_one(from, to, msg, send_at),
                Action::ToAllReplicas { msg } => {
                    for i in 0..self.cfg.n {
                        let to = Addr::Replica(ProcessId(i as u32));
                        if to != from {
                            self.send_one(from, to, msg.clone(), send_at);
                        }
                    }
                }
                Action::SetTimer { kind, after } => {
                    let gen = self.timer_gen.arm((from, g, kind));
                    self.schedule(
                        timer_at.after(after),
                        Payload::Timer {
                            who: from,
                            group: g,
                            kind,
                            gen,
                        },
                    );
                }
                Action::CancelTimer { kind } => {
                    self.timer_gen.cancel((from, g, kind));
                }
            }
        }
    }

    fn send_one(&mut self, from: Addr, to: Addr, msg: Msg, depart: Time) {
        if let (Addr::Replica(a), Addr::Replica(b)) = (from, to) {
            if self.partitions.iter().any(|p| p.severs(a, b, depart)) {
                self.metrics.dropped_msgs += 1;
                return;
            }
        }
        if self.opts.topology.loss > 0.0 && self.rng.gen::<f64>() < self.opts.topology.loss {
            self.metrics.dropped_msgs += 1;
            return;
        }
        let latency = self.opts.topology.sample(from, to, &mut self.rng);
        // Transmission delay: big payloads (e.g. full-state updates) take
        // real time on the wire.
        let tx = Dur((msg.approx_wire_len() as f64 * self.opts.topology.ns_per_byte) as u64);
        self.schedule(
            depart.after(latency).after(tx),
            Payload::Deliver { from, to, msg },
        );
    }
}

/// Total CPU cost of emitting every message in `actions`.
fn actions_send_cost(
    cpu: &CpuModel,
    actions: &[(GroupId, Action)],
    n: usize,
) -> gridpaxos_core::types::Dur {
    let mut total = gridpaxos_core::types::Dur::ZERO;
    for (_, a) in actions {
        match a {
            Action::Send { msg, .. } => {
                total = total.saturating_add(cpu.send_cost_one(msg));
            }
            Action::ToAllReplicas { msg } => {
                total =
                    total.saturating_add(cpu.send_cost_one(msg).mul(n.saturating_sub(1) as u64));
            }
            _ => {}
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use crate::workload::OpLoop;
    use gridpaxos_core::request::RequestKind;
    use gridpaxos_core::service::NoopApp;

    const START: Time = Time(200_000_000);
    const DEADLINE: Time = Time(3_600_000_000_000);

    fn build(seed: u64) -> World {
        let cfg = Config::cluster(3);
        let opts = SimOpts::for_topology(Topology::sysnet(3), seed);
        World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())))
    }

    #[test]
    fn same_seed_same_universe() {
        let run = |seed: u64| {
            let mut w = build(seed);
            w.add_client(Box::new(OpLoop::new(RequestKind::Write, 100)), None, START);
            assert!(w.run_to_completion(DEADLINE));
            (
                w.now,
                w.metrics.completed_ops,
                w.metrics.rtt_summary("write").mean,
                w.replica_states(),
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.0, b.0, "identical virtual end time");
        assert_eq!(a.2, b.2, "bit-identical latencies");
        assert_eq!(a.3, b.3, "identical states");
        let c = run(8);
        assert_ne!(a.2, c.2, "different seed, different jitter");
    }

    #[test]
    fn election_runs_during_startup() {
        let mut w = build(1);
        w.run_until(Time(Dur::from_millis(100).0));
        assert_eq!(w.leader(), Some(ProcessId(0)), "bootstrap leader elected");
        let states = w.replica_states();
        assert_eq!(states.len(), 3);
    }

    #[test]
    fn crash_takes_replica_down_and_recover_brings_it_back() {
        let mut w = build(2);
        w.crash_at(ProcessId(2), Time(Dur::from_millis(50).0));
        w.recover_at(ProcessId(2), Time(Dur::from_millis(150).0));
        w.run_until(Time(Dur::from_millis(100).0));
        assert!(w.replica(ProcessId(2)).is_none(), "down after crash");
        assert_eq!(w.replica_states().len(), 2);
        w.run_until(Time(Dur::from_millis(200).0));
        assert!(w.replica(ProcessId(2)).is_some(), "up after recover");
    }

    #[test]
    fn run_to_completion_times_out_when_starved() {
        let mut w = build(3);
        // A client that can never finish: the majority is dead from the start.
        w.crash_at(ProcessId(1), Time(1));
        w.crash_at(ProcessId(2), Time(1));
        w.add_client(Box::new(OpLoop::new(RequestKind::Write, 10)), None, START);
        assert!(
            !w.run_to_completion(Time(Dur::from_secs(5).0)),
            "must report failure at the deadline"
        );
        assert_eq!(w.metrics.completed_ops, 0);
    }

    #[test]
    fn message_accounting_by_tag() {
        let mut w = build(4);
        w.add_client(Box::new(OpLoop::new(RequestKind::Write, 20)), None, START);
        assert!(w.run_to_completion(DEADLINE));
        assert!(*w.metrics.msgs_by_tag.get("request").unwrap_or(&0) >= 20 * 3);
        assert!(*w.metrics.msgs_by_tag.get("accept").unwrap_or(&0) >= 20);
        assert!(*w.metrics.msgs_by_tag.get("reply").unwrap_or(&0) >= 20);
    }

    #[test]
    fn trace_records_deliveries_and_faults() {
        let mut w = build(6);
        w.enable_trace(10_000);
        w.add_client(Box::new(OpLoop::new(RequestKind::Write, 5)), None, START);
        w.crash_at(ProcessId(2), Time(Dur::from_millis(50).0));
        w.recover_at(ProcessId(2), Time(Dur::from_millis(400).0));
        assert!(w.run_to_completion(DEADLINE));
        let settle = w.now.after(Dur::from_millis(500));
        w.run_until(settle);
        let trace = w.trace().expect("tracing enabled");
        assert!(trace.total > 0);
        let rendered = trace.render();
        assert!(rendered.contains("CRASH"));
        assert!(rendered.contains("RECOVER"));
        assert!(rendered.contains("request"));
        assert!(rendered.contains("accept"));
    }

    #[test]
    fn sharded_world_partitions_writes_across_groups() {
        // Two groups, routed on the first payload byte. Each group must
        // choose its own writes, converge independently, and elect its
        // rotated bootstrap leader.
        let cfg = Config::cluster(3);
        let opts = SimOpts::for_topology(Topology::sysnet(3), 21);
        let router = ShardRouter::new(|req| req.op.first().map(|b| u64::from(*b)));
        let mut w = World::new_sharded(
            cfg,
            opts,
            Box::new(|| Box::new(NoopApp::new())),
            2,
            Some(router),
        );
        w.add_client(
            Box::new(OpLoop::with_payload(
                RequestKind::Write,
                20,
                bytes::Bytes::from_static(&[0]),
            )),
            None,
            START,
        );
        w.add_client(
            Box::new(OpLoop::with_payload(
                RequestKind::Write,
                20,
                bytes::Bytes::from_static(&[1]),
            )),
            None,
            START,
        );
        assert!(w.run_to_completion(DEADLINE));
        assert_eq!(w.metrics.completed_ops, 40);

        // Rotated bootstrap leadership: group 0 led by r0, group 1 by r1.
        assert_eq!(w.leader_of(GroupId(0)), Some(ProcessId(0)));
        assert_eq!(w.leader_of(GroupId(1)), Some(ProcessId(1)));

        // Let in-flight chosen notifications settle, then check per-group
        // convergence and that both groups did real work.
        let settle = w.now.after(Dur::from_millis(500));
        w.run_until(settle);
        for g in [GroupId(0), GroupId(1)] {
            let states = w.replica_states_of(g);
            assert_eq!(states.len(), 3);
            assert!(
                states.windows(2).all(|s| s[0] == s[1]),
                "group {g} replicas diverged: {states:?}"
            );
            assert!(states[0].0 .0 >= 1, "group {g} chose nothing");
        }
    }

    #[test]
    fn sharded_world_crash_recover_preserves_all_groups() {
        let cfg = Config::cluster(3);
        let opts = SimOpts::for_topology(Topology::sysnet(3), 22);
        let router = ShardRouter::new(|req| req.op.first().map(|b| u64::from(*b)));
        let mut w = World::new_sharded(
            cfg,
            opts,
            Box::new(|| Box::new(NoopApp::new())),
            2,
            Some(router),
        );
        w.crash_at(ProcessId(2), Time(Dur::from_millis(50).0));
        w.recover_at(ProcessId(2), Time(Dur::from_millis(150).0));
        w.run_until(Time(Dur::from_millis(100).0));
        assert!(w.group_replica(ProcessId(2), GroupId(1)).is_none());
        w.run_until(Time(Dur::from_millis(200).0));
        for g in [GroupId(0), GroupId(1)] {
            assert!(
                w.group_replica(ProcessId(2), g).is_some(),
                "group {g} must come back"
            );
        }
    }

    /// The durability cost model: per-record mode pays one blocking fsync
    /// per persisted record; group commit coalesces records into shared
    /// barriers, cutting both the sync count and the total stall — so the
    /// same closed-loop workload finishes faster.
    #[test]
    fn group_commit_amortizes_fsyncs_and_beats_per_record() {
        let run = |mode: DurabilityMode| {
            // Cap decree batching: with an unbounded batch the per-record
            // mode amortizes through the leader's own queueing and the
            // comparison measures nothing.
            let mut cfg = Config::cluster(3).with_max_batch(4);
            cfg.batch_window = Dur::ZERO;
            let opts = SimOpts {
                durability: mode,
                ..SimOpts::for_topology(Topology::sysnet(3), 31)
            };
            let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
            for _ in 0..8 {
                w.add_client(Box::new(OpLoop::new(RequestKind::Write, 25)), None, START);
            }
            assert!(w.run_to_completion(DEADLINE), "workload under {mode:?}");
            (w.metrics.wal_appends, w.metrics.fsyncs, w.now)
        };

        let (appends_pr, fsyncs_pr, end_pr) = run(DurabilityMode::PerRecord);
        assert!(appends_pr > 0, "writes must persist records");
        assert_eq!(
            fsyncs_pr, appends_pr,
            "per-record: every append pays its own sync"
        );

        // Append counts differ across modes (timing feeds back into the
        // leader's decree batching), so compare sync *ratios*, not counts.
        let (appends_b, fsyncs_b, end_b) = run(DurabilityMode::Batched);
        assert!(appends_b > 0, "writes must persist records");
        assert!(fsyncs_b > 0, "batched mode still syncs");
        assert!(
            fsyncs_b < appends_b,
            "group commit must amortize: {fsyncs_b} syncs for {appends_b} appends"
        );
        assert!(
            end_b < end_pr,
            "batched ({end_b:?}) must finish before per-record ({end_pr:?})"
        );

        let (_, fsyncs_none, end_none) = run(DurabilityMode::None);
        assert_eq!(fsyncs_none, 0, "free storage charges nothing");
        assert!(end_none < end_b, "free storage is the lower bound");
    }

    #[test]
    fn client_sites_affect_latency() {
        // A client pinned to the replica site sees lower RTT than the
        // default remote client site.
        let run_at = |site: Option<usize>| {
            let mut w = build(5);
            w.add_client(
                Box::new(OpLoop::new(RequestKind::Original, 50)),
                site,
                START,
            );
            assert!(w.run_to_completion(DEADLINE));
            w.metrics.rtt_summary("original").mean
        };
        let near = run_at(Some(0));
        let far = run_at(None);
        assert!(near < far, "near {near} vs far {far}");
    }
}
