//! Deterministic timer bookkeeping shared by event-driven harnesses.
//!
//! The sans-io replica asks its environment to arm and cancel named timers
//! ([`gridpaxos_core::replica::Action::SetTimer`] /
//! [`gridpaxos_core::replica::Action::CancelTimer`]). An event-driven
//! harness (the simulator's [`crate::world::World`], the model checker in
//! `crates/check`) cannot delete an already-scheduled firing from its
//! queue cheaply, so both use the same *generation* scheme: every arm or
//! cancel bumps a per-key counter, each scheduled firing carries the
//! generation it was armed with, and a firing whose generation is stale is
//! discarded on delivery. This module is that scheme, factored out so the
//! two harnesses cannot drift.

use std::collections::HashMap;
use std::hash::Hash;

/// Generation counters for a set of logical timers, keyed by `K`
/// (typically `(owner, timer kind)` or `(owner, group, kind)`).
#[derive(Debug, Default, Clone)]
pub struct TimerGens<K: Eq + Hash> {
    gens: HashMap<K, u64>,
}

impl<K: Eq + Hash> TimerGens<K> {
    /// Empty table: every timer is unarmed.
    #[must_use]
    pub fn new() -> TimerGens<K> {
        TimerGens {
            gens: HashMap::new(),
        }
    }

    /// Arm (or re-arm) the timer at `key`, invalidating any firing already
    /// in flight. Returns the generation to stamp on the new firing.
    pub fn arm(&mut self, key: K) -> u64 {
        let gen = self.gens.entry(key).or_insert(0);
        *gen += 1;
        *gen
    }

    /// Cancel the timer at `key`: any firing in flight becomes stale.
    pub fn cancel(&mut self, key: K) {
        *self.gens.entry(key).or_insert(0) += 1;
    }

    /// Whether a firing stamped `gen` for `key` is still the live one.
    #[must_use]
    pub fn is_live(&self, key: &K, gen: u64) -> bool {
        self.gens.get(key).copied() == Some(gen)
    }

    /// Drop all state for timers whose key matches `pred` (e.g. every
    /// timer owned by a crashed replica).
    pub fn retain(&mut self, pred: impl FnMut(&K, &mut u64) -> bool) {
        self.gens.retain(pred);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_cancel_liveness() {
        let mut t: TimerGens<(u8, u8)> = TimerGens::new();
        let g1 = t.arm((1, 0));
        assert!(t.is_live(&(1, 0), g1));
        // Re-arming invalidates the old firing.
        let g2 = t.arm((1, 0));
        assert!(!t.is_live(&(1, 0), g1));
        assert!(t.is_live(&(1, 0), g2));
        // Cancel invalidates without producing a new live generation.
        t.cancel((1, 0));
        assert!(!t.is_live(&(1, 0), g2));
        // Unrelated keys are independent; unknown keys are never live.
        let g3 = t.arm((2, 1));
        assert!(t.is_live(&(2, 1), g3));
        assert!(!t.is_live(&(9, 9), 0));
    }
}
