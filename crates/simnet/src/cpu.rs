//! Per-process CPU cost model.
//!
//! The paper's throughput curves (Figures 5–6, 9) saturate because real
//! machines spend CPU per message; a pure latency simulation would scale
//! forever. We model each replica as a single-server queue: handling an
//! event occupies the process for a cost derived from the message kind and
//! the number of messages it emits. This yields the characteristic
//! closed-loop saturation (Figure 6's peak between 32 and 64 clients) with
//! realistic read/write asymmetry — a write makes the leader send accepts,
//! process accepted acks and send chosen notifications, while a read only
//! costs confirm processing.

use gridpaxos_core::msg::Msg;
use gridpaxos_core::types::Dur;

/// CPU cost parameters (all per-event costs).
#[derive(Clone, Copy, Debug)]
pub struct CpuModel {
    /// Cost to process an incoming client request (parse, classify,
    /// execute the no-op service method).
    pub client_request: Dur,
    /// Cost to process an incoming coordination message.
    pub coord_msg: Dur,
    /// Cost to serialize and push one outgoing message.
    pub send: Dur,
    /// Extra cost per logged decree entry in an accept message — the
    /// state-serialization and write-ahead-logging work each replicated
    /// request costs, on both the sending leader and the accepting backup.
    /// This is what makes write throughput saturate below read throughput,
    /// as in the paper's Figures 5–6.
    pub accept_entry: Dur,
    /// Cost of one stable-storage sync (`fsync`). Only charged when the
    /// simulation opts into a durability model
    /// ([`crate::world::DurabilityMode`]): per persisted record in
    /// per-record mode, per flush barrier in batched (group-commit) mode.
    /// Dominates everything above by orders of magnitude on real disks —
    /// which is exactly why group commit is worth modeling.
    pub fsync: Dur,
}

impl CpuModel {
    /// Calibrated for the paper's Pentium IV 2.8 GHz Sysnet machines:
    /// peak service throughput in the tens of thousands of requests per
    /// second with 3 replicas, writes saturating below reads.
    #[must_use]
    pub fn sysnet() -> CpuModel {
        CpuModel {
            client_request: Dur::from_nanos(16_000),
            coord_msg: Dur::from_nanos(1_300),
            send: Dur::from_nanos(700),
            accept_entry: Dur::from_nanos(800),
            // ~half a 7200 rpm rotation + controller overhead: the
            // write-cache-disabled commodity disks of the paper's era.
            fsync: Dur::from_nanos(2_000_000),
        }
    }

    /// A message-bound profile: per-message overhead (syscall, wakeup,
    /// parse) dominates and request execution is cheap — the regime of
    /// small-payload services behind an unbatched socket layer, where the
    /// kernel crossings cost more than the service method. Coordination
    /// messages are priced above the (no-op) client requests because they
    /// also run the protocol path — ballot validation plus a read-table
    /// mutation and completion check per confirm. Under this model
    /// coordination fan-in, not request parsing, is the saturating
    /// resource, which is exactly the load the epoch-batched confirm
    /// rounds target; used by the `read-batching` experiment for both of
    /// its arms.
    #[must_use]
    pub fn msg_bound() -> CpuModel {
        CpuModel {
            client_request: Dur::from_nanos(8_000),
            coord_msg: Dur::from_nanos(12_000),
            send: Dur::from_nanos(2_000),
            accept_entry: Dur::from_nanos(800),
            fsync: Dur::from_nanos(2_000_000),
        }
    }

    /// No CPU cost at all: pure latency simulation (useful for protocol
    /// tests where queueing is noise).
    #[must_use]
    pub fn free() -> CpuModel {
        CpuModel {
            client_request: Dur::ZERO,
            coord_msg: Dur::ZERO,
            send: Dur::ZERO,
            accept_entry: Dur::ZERO,
            fsync: Dur::ZERO,
        }
    }

    /// Cost to receive and handle `msg`. The group envelope is priced as
    /// its payload — demuxing a 4-byte tag is noise next to the handling.
    #[must_use]
    pub fn recv_cost(&self, msg: &Msg) -> Dur {
        match msg {
            Msg::Request(_) => self.client_request,
            Msg::Accept { entries, .. } => self
                .coord_msg
                .saturating_add(self.accept_entry.mul(total_entries(entries))),
            Msg::Grouped { inner, .. } => self.recv_cost(inner),
            _ => self.coord_msg,
        }
    }

    /// Cost to emit one copy of `msg`.
    #[must_use]
    pub fn send_cost_one(&self, msg: &Msg) -> Dur {
        match msg {
            Msg::Accept { entries, .. } => self
                .send
                .saturating_add(self.accept_entry.mul(total_entries(entries))),
            Msg::Grouped { inner, .. } => self.send_cost_one(inner),
            _ => self.send,
        }
    }
}

fn total_entries(
    entries: &[(
        gridpaxos_core::types::Instance,
        gridpaxos_core::command::Decree,
    )],
) -> u64 {
    entries.iter().map(|(_, d)| d.entries.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::ballot::Ballot;
    use gridpaxos_core::types::Instance;

    #[test]
    fn requests_cost_more_than_coordination() {
        let c = CpuModel::sysnet();
        let req = Msg::Request(gridpaxos_core::request::Request::new(
            gridpaxos_core::request::RequestId::new(
                gridpaxos_core::types::ClientId(1),
                gridpaxos_core::types::Seq(1),
            ),
            gridpaxos_core::request::RequestKind::Read,
            bytes::Bytes::new(),
        ));
        let hb = Msg::Heartbeat {
            ballot: Ballot::ZERO,
            chosen: Instance::ZERO,
            hb_seq: 0,
        };
        assert!(c.recv_cost(&req) > c.recv_cost(&hb));
    }

    #[test]
    fn accept_cost_scales_with_batched_entries() {
        use gridpaxos_core::command::{Command, Decree};
        use gridpaxos_core::request::{ReplyBody, Request, RequestId, RequestKind};
        use gridpaxos_core::types::{ClientId, Seq};
        let c = CpuModel::sysnet();
        let entry = || {
            (
                Command::Req(Request::new(
                    RequestId::new(ClientId(1), Seq(1)),
                    RequestKind::Write,
                    bytes::Bytes::new(),
                )),
                gridpaxos_core::command::StateUpdate::None,
                ReplyBody::Empty,
            )
        };
        let mut d = Decree::noop();
        for _ in 0..3 {
            let (cmd, update, reply) = entry();
            d.entries
                .push(gridpaxos_core::command::DecreeEntry { cmd, update, reply });
        }
        let small = Msg::Accept {
            ballot: Ballot::ZERO,
            entries: vec![(Instance(1), Decree::noop())],
        };
        let big = Msg::Accept {
            ballot: Ballot::ZERO,
            entries: vec![(Instance(1), d)],
        };
        assert!(c.recv_cost(&big) > c.recv_cost(&small));
        assert!(c.send_cost_one(&big) > c.send_cost_one(&small));
        assert_eq!(
            c.recv_cost(&big).0 - c.recv_cost(&small).0,
            c.accept_entry.0 * 3
        );
    }

    #[test]
    fn free_model_is_free() {
        let c = CpuModel::free();
        let hb = Msg::Heartbeat {
            ballot: Ballot::ZERO,
            chosen: Instance::ZERO,
            hb_seq: 0,
        };
        assert_eq!(c.recv_cost(&hb), Dur::ZERO);
        assert_eq!(c.send_cost_one(&hb), Dur::ZERO);
    }
}
