//! Network topologies: who sits where, and what the links cost.
//!
//! Processes are grouped into *sites*; a latency model is attached to each
//! ordered site pair. The three presets reproduce the paper's three
//! evaluation configurations (§4).

use crate::latency::LatencyModel;
#[cfg(test)]
use gridpaxos_core::types::ProcessId;
use gridpaxos_core::types::{Addr, ClientId, Dur};
use rand::rngs::SmallRng;
use std::collections::HashMap;

/// A site index.
pub type SiteId = usize;

/// Placement of replicas and clients onto sites, plus the site-to-site
/// latency matrix.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Site of each replica (index = replica id).
    pub replica_sites: Vec<SiteId>,
    /// Site of specific clients; clients not listed use
    /// [`Topology::default_client_site`].
    pub client_sites: HashMap<ClientId, SiteId>,
    /// Site used by clients without an explicit placement.
    pub default_client_site: SiteId,
    /// `links[a][b]` = one-way latency model from site `a` to site `b`.
    pub links: Vec<Vec<LatencyModel>>,
    /// Message loss probability per hop (applies to inter-site links).
    pub loss: f64,
    /// Transmission cost in nanoseconds per wire byte, added on top of the
    /// propagation latency (Gigabit Ethernet ≈ 0.8 ns/B; a 100 Mbit WAN
    /// path ≈ 80 ns/B). Makes large shipped states cost real time — the
    /// overhead §3.3 argues should be engineered away with deltas or
    /// reproduction records.
    pub ns_per_byte: f64,
    /// Human-readable name (reports).
    pub name: &'static str,
}

impl Topology {
    /// Number of replicas placed.
    #[must_use]
    pub fn n_replicas(&self) -> usize {
        self.replica_sites.len()
    }

    fn site_of(&self, a: Addr) -> SiteId {
        match a {
            Addr::Replica(p) => self.replica_sites[p.0 as usize],
            Addr::Client(c) => *self
                .client_sites
                .get(&c)
                .unwrap_or(&self.default_client_site),
        }
    }

    /// Draw the one-way latency for a message from `from` to `to`.
    pub fn sample(&self, from: Addr, to: Addr, rng: &mut SmallRng) -> Dur {
        let (a, b) = (self.site_of(from), self.site_of(to));
        self.links[a][b].sample(rng)
    }

    /// Nominal one-way latency (ms) between the sites of two processes.
    #[must_use]
    pub fn nominal_ms(&self, from: Addr, to: Addr) -> f64 {
        let (a, b) = (self.site_of(from), self.site_of(to));
        self.links[a][b].nominal_ms()
    }

    /// Build a symmetric latency matrix from an upper-triangular
    /// description: `pairs[(a, b)]` for `a < b`, `diag` within a site.
    fn symmetric(
        n_sites: usize,
        diag: LatencyModel,
        pairs: &[(SiteId, SiteId, LatencyModel)],
    ) -> Vec<Vec<LatencyModel>> {
        let mut m = vec![vec![diag; n_sites]; n_sites];
        for &(a, b, l) in pairs {
            m[a][b] = l;
            m[b][a] = l;
        }
        m
    }

    // ------------------------------------------------------------------
    // The paper's three configurations
    // ------------------------------------------------------------------

    /// Configuration 1 — the UCSD *Sysnet* cluster: everything on one
    /// Gigabit-Ethernet site. Calibrated so that the no-op service RRTs
    /// land near the paper's measurements (original 0.181 ms, read
    /// 0.263 ms, write 0.338 ms): client↔replica one-way ≈ 86 µs,
    /// replica↔replica ≈ 76 µs, small uniform jitter.
    ///
    /// Sites: 0 = servers, 1 = client machines.
    #[must_use]
    pub fn sysnet(n: usize) -> Topology {
        Topology {
            replica_sites: vec![0; n],
            client_sites: HashMap::new(),
            default_client_site: 1,
            links: Self::symmetric(
                2,
                LatencyModel::Uniform {
                    lo: 0.071,
                    hi: 0.079,
                }, // server↔server
                &[(
                    0,
                    1,
                    LatencyModel::Uniform {
                        lo: 0.078,
                        hi: 0.086,
                    },
                )],
            ),
            loss: 0.0,
            ns_per_byte: 0.8,
            name: "sysnet",
        }
    }

    /// Configuration 2 — clients at Berkeley, all replicas at Princeton:
    /// "the clients are remote from the service replicas but the service
    /// replicas are located relatively close to one another." One-way WAN
    /// ≈ 45.9 ms (RRT of original requests was 91.85 ms), LAN between the
    /// Princeton machines ≈ 0.25 ms.
    ///
    /// Sites: 0 = Princeton (replicas), 1 = Berkeley (clients).
    #[must_use]
    pub fn berkeley_princeton(n: usize) -> Topology {
        Topology {
            replica_sites: vec![0; n],
            client_sites: HashMap::new(),
            default_client_site: 1,
            links: Self::symmetric(
                2,
                LatencyModel::Uniform { lo: 0.2, hi: 0.3 },
                &[(
                    0,
                    1,
                    LatencyModel::LogNormal {
                        median: 45.8,
                        sigma: 0.004,
                    },
                )],
            ),
            loss: 0.0,
            ns_per_byte: 80.0,
            name: "berkeley-princeton",
        }
    }

    /// The §4.3 setting for `t > 1`: "the server replicas are on one local
    /// area, low latency network, and the clients are in other networks
    /// connected to the servers' network via a wide-area, higher latency
    /// network with a large variance in message delivery time".
    ///
    /// Sites: 0 = server LAN, 1 = clients (log-normal WAN with shape
    /// `sigma` controlling the variance).
    #[must_use]
    pub fn lan_replicas_wan_clients(n: usize, median_ms: f64, sigma: f64) -> Topology {
        Topology {
            replica_sites: vec![0; n],
            client_sites: HashMap::new(),
            default_client_site: 1,
            links: Self::symmetric(
                2,
                LatencyModel::Uniform {
                    lo: 0.072,
                    hi: 0.080,
                },
                &[(
                    0,
                    1,
                    LatencyModel::LogNormal {
                        median: median_ms,
                        sigma,
                    },
                )],
            ),
            loss: 0.0,
            ns_per_byte: 0.8,
            name: "lan-replicas-wan-clients",
        }
    }

    /// A heterogeneous variant of the §4.3 setting: the replicas share a
    /// LAN, but the *clients'* WAN paths to individual replicas differ —
    /// the leader and one backup are well connected (`fast_ms` median),
    /// the remaining backups sit behind a worse path (`slow_ms` median).
    /// As `t` grows, X-Paxos needs confirms from more backups, so reads
    /// increasingly wait on the slow paths, while the basic protocol
    /// (which only talks to the leader over the WAN) is unaffected — the
    /// degradation §4.3 predicts.
    ///
    /// Sites: `0..n` = one per replica (LAN between them), `n` = clients.
    #[must_use]
    pub fn heterogeneous_wan(n: usize, fast_ms: f64, slow_ms: f64, sigma: f64) -> Topology {
        let n_sites = n + 1;
        let lan = LatencyModel::Uniform {
            lo: 0.072,
            hi: 0.080,
        };
        let mut links = vec![vec![lan; n_sites]; n_sites];
        for (i, row) in links.iter_mut().enumerate().take(n) {
            // Leader (replica 0) and replica 1 get the fast client path.
            let median = if i <= 1 { fast_ms } else { slow_ms };
            row[n] = LatencyModel::LogNormal { median, sigma };
        }
        let client_row: Vec<LatencyModel> = (0..n).map(|i| links[i][n]).collect();
        links[n][..n].copy_from_slice(&client_row);
        Topology {
            replica_sites: (0..n).collect(),
            client_sites: HashMap::new(),
            default_client_site: n,
            links,
            loss: 0.0,
            ns_per_byte: 0.8,
            name: "heterogeneous-wan",
        }
    }

    /// Configuration 3 — replicas spread across a WAN to mask correlated
    /// failures: leader at UIUC, backups at Utah and UT Austin, clients at
    /// Berkeley (and Intel Oregon). One-way latencies approximating the
    /// paper's RRTs (original 70.82 ms ⇒ Berkeley↔UIUC ≈ 35.4 ms; write
    /// 106.73 ms ⇒ replica↔replica ≈ 17.9 ms; read 75.49 ms constrains
    /// the client↔backup + backup↔leader path).
    ///
    /// Sites: 0 = UIUC (r0, the bootstrap leader), 1 = Utah (r1),
    /// 2 = UT Austin (r2), 3 = Berkeley (clients).
    #[must_use]
    pub fn wan_spread() -> Topology {
        let jitter = |median: f64| LatencyModel::LogNormal {
            median,
            sigma: 0.01,
        };
        Topology {
            replica_sites: vec![0, 1, 2],
            client_sites: HashMap::new(),
            default_client_site: 3,
            links: Self::symmetric(
                4,
                LatencyModel::Uniform { lo: 0.2, hi: 0.3 },
                &[
                    (0, 1, jitter(17.5)), // UIUC – Utah
                    (0, 2, jitter(18.3)), // UIUC – Texas
                    (1, 2, jitter(16.0)), // Utah – Texas
                    (0, 3, jitter(35.4)), // UIUC – Berkeley
                    (1, 3, jitter(21.5)), // Utah – Berkeley
                    (2, 3, jitter(24.0)), // Texas – Berkeley
                ],
            ),
            loss: 0.0,
            ns_per_byte: 80.0,
            name: "wan-spread",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sysnet_places_everything_close() {
        let t = Topology::sysnet(3);
        assert_eq!(t.n_replicas(), 3);
        let mut rng = SmallRng::seed_from_u64(1);
        let rr = t.sample(
            Addr::Replica(ProcessId(0)),
            Addr::Replica(ProcessId(1)),
            &mut rng,
        );
        let cr = t.sample(
            Addr::Client(ClientId(1)),
            Addr::Replica(ProcessId(0)),
            &mut rng,
        );
        assert!(rr.as_millis_f64() < 0.1);
        assert!(cr.as_millis_f64() < 0.1);
        // Client→replica slightly slower than replica→replica (M > m).
        assert!(
            t.nominal_ms(Addr::Client(ClientId(1)), Addr::Replica(ProcessId(0)))
                > t.nominal_ms(Addr::Replica(ProcessId(0)), Addr::Replica(ProcessId(1)))
        );
    }

    #[test]
    fn berkeley_princeton_wan_dwarfs_lan() {
        let t = Topology::berkeley_princeton(3);
        let wan = t.nominal_ms(Addr::Client(ClientId(1)), Addr::Replica(ProcessId(0)));
        let lan = t.nominal_ms(Addr::Replica(ProcessId(0)), Addr::Replica(ProcessId(1)));
        assert!(wan > 40.0);
        assert!(lan < 1.0);
        assert!(wan / lan > 100.0, "coordination must be comparatively free");
    }

    #[test]
    fn wan_spread_has_expensive_coordination() {
        let t = Topology::wan_spread();
        let m = t.nominal_ms(Addr::Client(ClientId(1)), Addr::Replica(ProcessId(0)));
        let coord = t.nominal_ms(Addr::Replica(ProcessId(0)), Addr::Replica(ProcessId(1)));
        assert!((m - 35.4).abs() < 0.1);
        assert!(coord > 10.0, "replica coordination is WAN-priced");
    }

    #[test]
    fn explicit_client_placement_overrides_default() {
        let mut t = Topology::wan_spread();
        t.client_sites.insert(ClientId(7), 1); // a client at Utah
        let near = t.nominal_ms(Addr::Client(ClientId(7)), Addr::Replica(ProcessId(1)));
        let far = t.nominal_ms(Addr::Client(ClientId(8)), Addr::Replica(ProcessId(1)));
        assert!(near < 1.0);
        assert!(far > 20.0);
    }

    #[test]
    fn symmetric_links_are_symmetric() {
        let t = Topology::wan_spread();
        for a in 0..3u32 {
            for b in 0..3u32 {
                assert_eq!(
                    t.nominal_ms(Addr::Replica(ProcessId(a)), Addr::Replica(ProcessId(b))),
                    t.nominal_ms(Addr::Replica(ProcessId(b)), Addr::Replica(ProcessId(a)))
                );
            }
        }
    }
}
