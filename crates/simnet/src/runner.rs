//! High-level experiment runners: the reusable building blocks behind the
//! paper's tables and figures. Each function sets up a [`World`], runs the
//! workload to completion and returns the measurements.

use crate::cpu::CpuModel;
use crate::metrics::Metrics;
use crate::stats::Summary;
use crate::topology::Topology;
use crate::workload::{OpLoop, TxnLoop};
use crate::world::{SimOpts, World};
use gridpaxos_core::client::TxnScript;
use gridpaxos_core::config::{Config, ReadMode, TxnMode};
use gridpaxos_core::request::RequestKind;
use gridpaxos_core::service::{App, NoopApp};
use gridpaxos_core::types::{Dur, Time};

/// What to run.
pub struct Experiment {
    /// Replica configuration (protocol modes, timeouts).
    pub cfg: Config,
    /// Network.
    pub topology: Topology,
    /// CPU model.
    pub cpu: CpuModel,
    /// Seed.
    pub seed: u64,
    /// Wall-clock budget for the virtual run.
    pub deadline: Dur,
}

impl Experiment {
    /// Default experiment on a topology: cluster-tuned config for the
    /// Sysnet topology, WAN-tuned otherwise; bootstrap leader `r0`; X-Paxos
    /// reads on.
    #[must_use]
    pub fn on(topology: Topology, seed: u64) -> Experiment {
        let n = topology.n_replicas();
        let wan = topology.nominal_ms(
            gridpaxos_core::types::Addr::Client(gridpaxos_core::types::ClientId(0)),
            gridpaxos_core::types::Addr::Replica(gridpaxos_core::types::ProcessId(0)),
        ) > 5.0;
        let cfg = if wan {
            Config::wan(n)
        } else {
            Config::cluster(n)
        };
        Experiment {
            cfg,
            topology,
            cpu: CpuModel::sysnet(),
            seed,
            deadline: Dur::from_secs(3600),
        }
    }

    /// Override the read mode.
    #[must_use]
    pub fn read_mode(mut self, m: ReadMode) -> Experiment {
        self.cfg.read_mode = m;
        self
    }

    /// Override the transaction mode.
    #[must_use]
    pub fn txn_mode(mut self, m: TxnMode) -> Experiment {
        self.cfg.txn_mode = m;
        self
    }

    /// Build the world with a custom service factory.
    pub fn build(self, app: Box<dyn Fn() -> Box<dyn App> + Send>) -> World {
        let opts = SimOpts {
            cpu: self.cpu,
            ..SimOpts::for_topology(self.topology, self.seed)
        };
        World::new(self.cfg, opts, app)
    }

    fn build_noop(self) -> World {
        self.build(Box::new(|| Box::new(NoopApp::new())))
    }
}

/// Clients start only after the bootstrap election has settled — the
/// paper's "start signal" sent by the leader.
const CLIENT_START: Time = Time(200_000_000); // 200 ms into the run

/// Measure request response time: one client, `total` sequential requests
/// of `kind` (the paper used 20 per sample and hundreds of samples; pass
/// the product). Returns the latency summary in milliseconds.
#[must_use]
pub fn measure_rrt(exp: Experiment, kind: RequestKind, total: u64) -> Summary {
    measure_rrt_with(exp, Box::new(|| Box::new(NoopApp::new())), kind, total)
}

/// [`measure_rrt`] with a custom service (e.g. the state-size instrument).
#[must_use]
pub fn measure_rrt_with(
    exp: Experiment,
    app: Box<dyn Fn() -> Box<dyn App> + Send>,
    kind: RequestKind,
    total: u64,
) -> Summary {
    let deadline = exp.deadline;
    let mut w = exp.build(app);
    w.add_client(Box::new(OpLoop::new(kind, total)), None, CLIENT_START);
    let ok = w.run_to_completion(Time::ZERO.after(deadline));
    assert!(ok, "rrt run did not complete within the deadline");
    w.metrics.rtt_summary(crate::metrics::kind_key(
        &gridpaxos_core::request::Request::new(
            gridpaxos_core::request::RequestId::new(
                gridpaxos_core::types::ClientId(0),
                gridpaxos_core::types::Seq(0),
            ),
            kind,
            bytes::Bytes::new(),
        ),
    ))
}

/// Measure service throughput: `clients` concurrent closed-loop clients,
/// each sending `per_client` requests of `kind` (the paper used
/// `1000/c`). Returns requests per second plus the run's metrics.
#[must_use]
pub fn measure_throughput(
    exp: Experiment,
    kind: RequestKind,
    clients: usize,
    per_client: u64,
) -> (f64, Metrics) {
    let deadline = exp.deadline;
    let mut w = exp.build_noop();
    for _ in 0..clients {
        w.add_client(Box::new(OpLoop::new(kind, per_client)), None, CLIENT_START);
    }
    let ok = w.run_to_completion(Time::ZERO.after(deadline));
    assert!(ok, "throughput run did not complete within the deadline");
    let tput = w.metrics.ops_per_sec();
    (tput, w.metrics)
}

/// Measure transaction response time: one client, `total` transactions of
/// `script`. Returns the TRT summary in milliseconds.
#[must_use]
pub fn measure_txn_rrt(exp: Experiment, script: TxnScript, total: u64) -> Summary {
    let deadline = exp.deadline;
    let mut w = exp.build_noop();
    w.add_client(Box::new(TxnLoop::new(script, total)), None, CLIENT_START);
    let ok = w.run_to_completion(Time::ZERO.after(deadline));
    assert!(ok, "txn rrt run did not complete within the deadline");
    w.metrics.txn_summary()
}

/// Measure transaction throughput: `clients` concurrent clients, each
/// running `per_client` transactions of `script`. Returns committed
/// transactions per second plus metrics.
#[must_use]
pub fn measure_txn_throughput(
    exp: Experiment,
    script: TxnScript,
    clients: usize,
    per_client: u64,
) -> (f64, Metrics) {
    let deadline = exp.deadline;
    let mut w = exp.build_noop();
    for _ in 0..clients {
        w.add_client(
            Box::new(TxnLoop::new(script.clone(), per_client)),
            None,
            CLIENT_START,
        );
    }
    let ok = w.run_to_completion(Time::ZERO.after(deadline));
    assert!(
        ok,
        "txn throughput run did not complete within the deadline"
    );
    let tput = w.metrics.txns_per_sec();
    (tput, w.metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sysnet_rrt_matches_paper_shape() {
        // §4.1: original 0.181 ms < read 0.263 ms < write 0.338 ms.
        let orig = measure_rrt(
            Experiment::on(Topology::sysnet(3), 1),
            RequestKind::Original,
            200,
        );
        let read = measure_rrt(
            Experiment::on(Topology::sysnet(3), 1),
            RequestKind::Read,
            200,
        );
        let write = measure_rrt(
            Experiment::on(Topology::sysnet(3), 1),
            RequestKind::Write,
            200,
        );
        assert!(
            orig.mean < read.mean && read.mean < write.mean,
            "orig {:.3} < read {:.3} < write {:.3}",
            orig.mean,
            read.mean,
            write.mean
        );
        // Within a loose band of the paper's absolute numbers.
        assert!((0.10..0.30).contains(&orig.mean), "orig {:.3}", orig.mean);
        assert!((0.18..0.40).contains(&read.mean), "read {:.3}", read.mean);
        assert!(
            (0.25..0.50).contains(&write.mean),
            "write {:.3}",
            write.mean
        );
        // X-Paxos saves a meaningful fraction vs the basic protocol.
        let saving = 1.0 - read.mean / write.mean;
        assert!(saving > 0.10, "X-Paxos saving {saving:.2}");
    }

    #[test]
    fn sysnet_read_throughput_beats_write_throughput() {
        // §4.1: "the throughput of reads was at least 13% higher than that
        // of writes".
        let (reads, _) = measure_throughput(
            Experiment::on(Topology::sysnet(3), 2),
            RequestKind::Read,
            8,
            125,
        );
        let (writes, _) = measure_throughput(
            Experiment::on(Topology::sysnet(3), 2),
            RequestKind::Write,
            8,
            125,
        );
        assert!(
            reads > writes * 1.10,
            "reads {reads:.0}/s vs writes {writes:.0}/s"
        );
    }

    #[test]
    fn wan_spread_xpaxos_beats_consensus_reads() {
        // §4.1 configuration 3: read RRT well below write RRT.
        let read = measure_rrt(
            Experiment::on(Topology::wan_spread(), 3),
            RequestKind::Read,
            40,
        );
        let write = measure_rrt(
            Experiment::on(Topology::wan_spread(), 3),
            RequestKind::Write,
            40,
        );
        assert!(
            write.mean - read.mean > 15.0,
            "read {:.1} ms vs write {:.1} ms",
            read.mean,
            write.mean
        );
    }

    #[test]
    fn tpaxos_reduces_transaction_latency() {
        // Table 1's shape: optimized < read/write < write-only.
        let script = TxnScript::write_only(3);
        let unopt = measure_txn_rrt(
            Experiment::on(Topology::sysnet(3), 4).txn_mode(TxnMode::PerOp),
            script.clone(),
            100,
        );
        let opt = measure_txn_rrt(
            Experiment::on(Topology::sysnet(3), 4).txn_mode(TxnMode::TPaxos),
            script,
            100,
        );
        assert!(
            opt.mean < unopt.mean * 0.80,
            "T-Paxos {:.3} ms vs per-op {:.3} ms",
            opt.mean,
            unopt.mean
        );
    }

    #[test]
    fn replicas_converge_after_throughput_run() {
        let exp = Experiment::on(Topology::sysnet(3), 5);
        let deadline = exp.deadline;
        let mut w = exp.build_noop();
        for _ in 0..4 {
            w.add_client(
                Box::new(OpLoop::new(RequestKind::Write, 50)),
                None,
                CLIENT_START,
            );
        }
        assert!(w.run_to_completion(Time::ZERO.after(deadline)));
        // Let heartbeats flush the last chosen notifications.
        let settle = w.now.after(Dur::from_secs(1));
        w.run_until(settle);
        let states = w.replica_states();
        assert_eq!(states.len(), 3);
        assert!(states.windows(2).all(|p| p[0] == p[1]), "replicas diverged");
    }
}
