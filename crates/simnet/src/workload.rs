//! Workload drivers: the closed-loop clients of the paper's evaluation.
//!
//! "Each test client sends a specified number of one kind of request
//! sequentially to the service replicas ... A client will not send a new
//! request until it receives the reply associated with the previous one."

use crate::metrics::Metrics;
use bytes::Bytes;
use gridpaxos_core::action::Action;
use gridpaxos_core::client::{ClientCore, CompletedOp, TxnDriver, TxnOutcome, TxnScript};
use gridpaxos_core::request::RequestKind;
use gridpaxos_core::types::Time;

/// A client workload. The world calls [`Driver::kick`] whenever the client
/// is idle (at start and after each completion) and forwards every
/// completed operation to [`Driver::on_complete`].
pub trait Driver: Send {
    /// Issue the next submission through `core`, or `None` when done.
    fn kick(&mut self, core: &mut ClientCore, now: Time) -> Option<Vec<Action>>;
    /// Observe a completed operation.
    fn on_complete(&mut self, done: &CompletedOp, now: Time, metrics: &mut Metrics);
    /// Whether the workload has finished.
    fn done(&self) -> bool;
}

/// Sends `total` requests of one kind, closed-loop — the workload behind
/// Figures 5–8 and the response-time measurements.
#[derive(Debug)]
pub struct OpLoop {
    kind: RequestKind,
    payload: Bytes,
    remaining: u64,
    outstanding: bool,
}

impl OpLoop {
    /// `total` requests of `kind` with an empty payload (the evaluation's
    /// no-op service methods).
    #[must_use]
    pub fn new(kind: RequestKind, total: u64) -> OpLoop {
        OpLoop {
            kind,
            payload: Bytes::new(),
            remaining: total,
            outstanding: false,
        }
    }

    /// Same, with a payload for real services.
    #[must_use]
    pub fn with_payload(kind: RequestKind, total: u64, payload: Bytes) -> OpLoop {
        OpLoop {
            kind,
            payload,
            remaining: total,
            outstanding: false,
        }
    }
}

impl Driver for OpLoop {
    fn kick(&mut self, core: &mut ClientCore, now: Time) -> Option<Vec<Action>> {
        if self.remaining == 0 || self.outstanding {
            return None;
        }
        self.remaining -= 1;
        self.outstanding = true;
        Some(core.submit_op(self.kind, self.payload.clone(), now))
    }

    fn on_complete(&mut self, _done: &CompletedOp, _now: Time, _metrics: &mut Metrics) {
        self.outstanding = false;
    }

    fn done(&self) -> bool {
        self.remaining == 0 && !self.outstanding
    }
}

/// Runs `total` transactions of a fixed script, closed-loop — the workload
/// behind Table 1 and Figure 9. Aborted transactions are recorded and
/// retried (the client re-runs the whole transaction), so `total`
/// *committed* transactions are eventually produced unless the retry
/// budget runs out.
pub struct TxnLoop {
    script: TxnScript,
    remaining: u64,
    current: Option<TxnDriver>,
    started_at: Time,
    retries_left: u64,
}

impl TxnLoop {
    /// `total` committed transactions of `script`.
    #[must_use]
    pub fn new(script: TxnScript, total: u64) -> TxnLoop {
        TxnLoop {
            script,
            remaining: total,
            current: None,
            started_at: Time::ZERO,
            retries_left: 64,
        }
    }
}

impl Driver for TxnLoop {
    fn kick(&mut self, core: &mut ClientCore, now: Time) -> Option<Vec<Action>> {
        if self.current.is_none() {
            if self.remaining == 0 {
                return None;
            }
            self.started_at = now;
            self.current = Some(TxnDriver::new(self.script.clone(), core.next_txn_id()));
        }
        let driver = self.current.as_mut().expect("just ensured");
        driver.step(core, now)
    }

    fn on_complete(&mut self, done: &CompletedOp, now: Time, metrics: &mut Metrics) {
        let Some(driver) = self.current.as_mut() else {
            return;
        };
        match driver.on_complete(done) {
            None => {} // mid-transaction; the next kick continues it
            Some(TxnOutcome::Committed) => {
                metrics.record_txn(now.since(self.started_at), true);
                self.remaining -= 1;
                self.current = None;
            }
            Some(TxnOutcome::Aborted(_)) => {
                metrics.record_txn(now.since(self.started_at), false);
                self.current = None;
                if self.retries_left > 0 {
                    self.retries_left -= 1;
                } else {
                    // Give up on this transaction entirely.
                    self.remaining = self.remaining.saturating_sub(1);
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.remaining == 0 && self.current.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::msg::Msg;
    use gridpaxos_core::request::{Reply, ReplyBody};
    use gridpaxos_core::types::{ClientId, Dur, ProcessId};

    fn complete(core: &mut ClientCore, actions: &[Action], body: ReplyBody) -> CompletedOp {
        let id = actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    msg: Msg::Request(r),
                    ..
                } => Some(r.id),
                _ => None,
            })
            .expect("a request was sent");
        let (done, _) = core.on_message(
            Msg::Reply(Reply {
                id,
                leader: ProcessId(0),
                body,
            }),
            Time(1),
        );
        done.expect("completes")
    }

    #[test]
    fn op_loop_counts_down_and_finishes() {
        let mut core = ClientCore::new(ClientId(1), 3, Dur::from_millis(10));
        let mut d = OpLoop::new(RequestKind::Write, 2);
        let mut metrics = Metrics::default();
        for _ in 0..2 {
            assert!(!d.done());
            let actions = d.kick(&mut core, Time(0)).expect("more work");
            let done = complete(&mut core, &actions, ReplyBody::Ok(Bytes::new()));
            d.on_complete(&done, Time(1), &mut metrics);
        }
        assert!(d.done());
        assert!(d.kick(&mut core, Time(2)).is_none());
    }

    #[test]
    fn op_loop_does_not_double_submit() {
        let mut core = ClientCore::new(ClientId(1), 3, Dur::from_millis(10));
        let mut d = OpLoop::new(RequestKind::Read, 5);
        assert!(d.kick(&mut core, Time(0)).is_some());
        // Idle-kick while outstanding must not submit again (the client
        // core would panic on a double submit).
        assert!(d.kick(&mut core, Time(1)).is_none());
    }

    #[test]
    fn txn_loop_commits_and_records() {
        let mut core = ClientCore::new(ClientId(1), 3, Dur::from_millis(10));
        let mut d = TxnLoop::new(TxnScript::write_only(2), 1);
        let mut metrics = Metrics::default();
        // 2 ops + 1 commit.
        for step in 0..3 {
            let actions = d.kick(&mut core, Time(step)).expect("step available");
            let body = if step < 2 {
                ReplyBody::Ok(Bytes::new())
            } else {
                ReplyBody::TxnCommitted {
                    txn: gridpaxos_core::types::TxnId(1),
                }
            };
            let done = complete(&mut core, &actions, body);
            d.on_complete(&done, Time(step + 1), &mut metrics);
        }
        assert!(d.done());
        assert_eq!(metrics.txn_commits, 1);
        assert_eq!(metrics.txn_summary().n, 1);
    }

    #[test]
    fn txn_loop_retries_after_abort() {
        let mut core = ClientCore::new(ClientId(1), 3, Dur::from_millis(10));
        let mut d = TxnLoop::new(TxnScript::write_only(1), 1);
        let mut metrics = Metrics::default();

        // First attempt aborts at the op.
        let actions = d.kick(&mut core, Time(0)).unwrap();
        let done = complete(
            &mut core,
            &actions,
            ReplyBody::TxnAborted {
                txn: gridpaxos_core::types::TxnId(1),
                reason: gridpaxos_core::request::AbortReason::LeaderSwitch,
            },
        );
        d.on_complete(&done, Time(1), &mut metrics);
        assert!(!d.done(), "aborted txn is retried");
        assert_eq!(metrics.txn_aborts, 1);

        // Retry succeeds.
        for step in 0..2 {
            let actions = d.kick(&mut core, Time(10 + step)).unwrap();
            let body = if step == 0 {
                ReplyBody::Ok(Bytes::new())
            } else {
                ReplyBody::TxnCommitted {
                    txn: gridpaxos_core::types::TxnId(2),
                }
            };
            let done = complete(&mut core, &actions, body);
            d.on_complete(&done, Time(11 + step), &mut metrics);
        }
        assert!(d.done());
        assert_eq!(metrics.txn_commits, 1);
    }
}
