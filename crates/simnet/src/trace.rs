//! Optional event tracing for simulation runs: a bounded ring of protocol
//! events with a human-readable timeline renderer. Invaluable when a
//! failure-schedule test goes wrong — the trace shows who said what to
//! whom around the moment of interest.

use gridpaxos_core::types::{Addr, Time};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was delivered.
    Deliver {
        /// Sender.
        from: Addr,
        /// Receiver.
        to: Addr,
        /// Protocol tag (`Msg::tag`).
        tag: &'static str,
    },
    /// A replica crashed.
    Crash(Addr),
    /// A replica recovered.
    Recover(Addr),
    /// A partition activated or healed.
    Partition {
        /// True on activation, false on healing.
        active: bool,
    },
}

/// A bounded ring of `(time, event)` pairs.
#[derive(Debug, Default)]
pub struct Trace {
    ring: VecDeque<(Time, TraceEvent)>,
    capacity: usize,
    /// Total events observed (including evicted ones).
    pub total: u64,
}

impl Trace {
    /// A trace retaining at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Trace {
        Trace {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            total: 0,
        }
    }

    /// Record an event.
    pub fn record(&mut self, at: Time, ev: TraceEvent) {
        self.total += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back((at, ev));
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(Time, TraceEvent)> {
        self.ring.iter()
    }

    /// Retained events within a time window.
    #[must_use]
    pub fn window(&self, from: Time, until: Time) -> Vec<&(Time, TraceEvent)> {
        self.ring
            .iter()
            .filter(|(t, _)| *t >= from && *t < until)
            .collect()
    }

    /// Render a compact one-line-per-event timeline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (t, ev) in &self.ring {
            let _ = match ev {
                TraceEvent::Deliver { from, to, tag } => {
                    writeln!(out, "{:>12.6}s  {from} -> {to}  {tag}", t.as_secs_f64())
                }
                TraceEvent::Crash(a) => writeln!(out, "{:>12.6}s  {a} CRASH", t.as_secs_f64()),
                TraceEvent::Recover(a) => {
                    writeln!(out, "{:>12.6}s  {a} RECOVER", t.as_secs_f64())
                }
                TraceEvent::Partition { active } => writeln!(
                    out,
                    "{:>12.6}s  PARTITION {}",
                    t.as_secs_f64(),
                    if *active { "begins" } else { "heals" }
                ),
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::types::{ClientId, ProcessId};

    fn deliver(tag: &'static str) -> TraceEvent {
        TraceEvent::Deliver {
            from: Addr::Client(ClientId(1)),
            to: Addr::Replica(ProcessId(0)),
            tag,
        }
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let mut t = Trace::new(3);
        for i in 0..5u64 {
            t.record(Time(i), deliver("request"));
        }
        assert_eq!(t.total, 5);
        let times: Vec<u64> = t.events().map(|(t, _)| t.0).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn window_filters_by_time() {
        let mut t = Trace::new(100);
        for i in 0..10u64 {
            t.record(Time(i * 1000), deliver("accept"));
        }
        let w = t.window(Time(3000), Time(6000));
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|(at, _)| at.0 >= 3000 && at.0 < 6000));
    }

    #[test]
    fn render_mentions_every_event_kind() {
        let mut t = Trace::new(10);
        t.record(Time(1_000_000), deliver("prepare"));
        t.record(
            Time(2_000_000),
            TraceEvent::Crash(Addr::Replica(ProcessId(1))),
        );
        t.record(
            Time(3_000_000),
            TraceEvent::Recover(Addr::Replica(ProcessId(1))),
        );
        t.record(Time(4_000_000), TraceEvent::Partition { active: true });
        let s = t.render();
        assert!(s.contains("prepare"));
        assert!(s.contains("CRASH"));
        assert!(s.contains("RECOVER"));
        assert!(s.contains("PARTITION begins"));
        assert_eq!(s.lines().count(), 4);
    }
}
