//! Micro-benchmarks of the example nondeterministic services: the
//! execute/apply costs that the paper's E (execution time) stands for.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gridpaxos_core::request::{Request, RequestId, RequestKind};
use gridpaxos_core::service::{App, ExecCtx};
use gridpaxos_core::types::{ClientId, Seq, Time, TxnId};
use gridpaxos_services::{Broker, BrokerOp, KvOp, KvStore, SchedOp, Scheduler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn req(seq: u64, kind: RequestKind, op: Bytes) -> Request {
    Request::new(RequestId::new(ClientId(1), Seq(seq)), kind, op)
}

fn bench_kv(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvstore");
    g.throughput(Throughput::Elements(1));

    // A store warmed with 1k keys.
    let warmed = || {
        let mut s = KvStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..1000 {
            let r = req(
                i,
                RequestKind::Write,
                KvOp::Put(format!("key-{i}"), format!("value-{i}")).encode(),
            );
            let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
            s.execute(&r, &mut ctx);
        }
        s
    };

    g.bench_function("execute_put", |b| {
        b.iter_batched(
            warmed,
            |mut s| {
                let mut rng = SmallRng::seed_from_u64(2);
                let r = req(
                    9999,
                    RequestKind::Write,
                    KvOp::Put("hot".into(), "v".into()).encode(),
                );
                let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
                s.execute(&r, &mut ctx)
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("execute_get", |b| {
        let mut s = warmed();
        let mut rng = SmallRng::seed_from_u64(2);
        let r = req(
            9999,
            RequestKind::Read,
            KvOp::Get("key-500".into()).encode(),
        );
        b.iter(|| {
            let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
            s.execute(&r, &mut ctx)
        })
    });

    g.bench_function("apply_delta", |b| {
        let mut leader = warmed();
        let mut rng = SmallRng::seed_from_u64(2);
        let r = req(
            9999,
            RequestKind::Write,
            KvOp::Put("hot".into(), "v".into()).encode(),
        );
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        let (_, update) = leader.execute(&r, &mut ctx);
        b.iter_batched(
            warmed,
            |mut backup| {
                backup.apply(&r, &update);
                backup
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("snapshot_1k_keys", |b| {
        let s = warmed();
        b.iter(|| s.snapshot())
    });

    g.bench_function("txn_execute_volatile", |b| {
        b.iter_batched(
            warmed,
            |mut s| {
                let mut rng = SmallRng::seed_from_u64(3);
                let t = TxnId(1);
                for i in 0..3u64 {
                    let r = Request::txn_op(
                        RequestId::new(ClientId(1), Seq(5000 + i)),
                        RequestKind::Write,
                        t,
                        KvOp::Put(format!("t-{i}"), "v".into()).encode(),
                    );
                    let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
                    s.txn_execute(t, &r, false, &mut ctx).unwrap();
                }
                s.txn_commit(t)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_broker(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker");
    g.throughput(Throughput::Elements(1));

    let warmed = || {
        let mut s = Broker::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..100 {
            let r = req(
                i,
                RequestKind::Write,
                BrokerOp::AddResource {
                    name: format!("m-{i}"),
                    capacity: 100,
                }
                .encode(),
            );
            let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
            s.execute(&r, &mut ctx);
        }
        s
    };

    g.bench_function("randomized_request_100_resources", |b| {
        b.iter_batched(
            warmed,
            |mut s| {
                let mut rng = SmallRng::seed_from_u64(2);
                let r = req(
                    9999,
                    RequestKind::Write,
                    BrokerOp::Request { task: 1, units: 1 }.encode(),
                );
                let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
                s.execute(&r, &mut ctx)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(1));

    let warmed = || {
        let mut s = Scheduler::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let add = req(
            0,
            RequestKind::Write,
            SchedOp::AddMachine {
                name: "m".into(),
                slots: 1000,
            }
            .encode(),
        );
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        s.execute(&add, &mut ctx);
        for i in 0..500u64 {
            let r = req(
                i + 1,
                RequestKind::Write,
                SchedOp::Submit {
                    job: i,
                    priority: (i % 8) as u32,
                }
                .encode(),
            );
            let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
            s.execute(&r, &mut ctx);
        }
        s
    };

    g.bench_function("dispatch_from_500_jobs", |b| {
        b.iter_batched(
            warmed,
            |mut s| {
                let mut rng = SmallRng::seed_from_u64(2);
                let r = req(9999, RequestKind::Write, SchedOp::Dispatch.encode());
                let mut ctx = ExecCtx::new(Time(1 << 40), &mut rng);
                s.execute(&r, &mut ctx)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_kv, bench_broker, bench_scheduler);
criterion_main!(benches);
