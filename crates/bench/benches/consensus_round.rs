//! End-to-end protocol-stack cost per operation, measured by running the
//! full replica group inside the simulator with free CPU and (near-)zero
//! latency. This is the real Rust-side cost of a committed write, an
//! X-Paxos read and an uncoordinated original request — the per-request
//! work the paper's prototype spent besides the network.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gridpaxos_core::config::Config;
use gridpaxos_core::request::RequestKind;
use gridpaxos_core::service::NoopApp;
use gridpaxos_core::types::{Dur, Time};
use gridpaxos_simnet::cpu::CpuModel;
use gridpaxos_simnet::latency::LatencyModel;
use gridpaxos_simnet::topology::Topology;
use gridpaxos_simnet::workload::OpLoop;
use gridpaxos_simnet::world::{SimOpts, World};

fn fast_topology(n: usize) -> Topology {
    let mut t = Topology::sysnet(n);
    // Near-zero constant latency: virtual time, so only CPU cost remains.
    for row in &mut t.links {
        for l in row.iter_mut() {
            *l = LatencyModel::Constant(0.0001);
        }
    }
    t
}

fn run_ops(kind: RequestKind, ops: u64) {
    let cfg = Config::cluster(3);
    let opts = SimOpts {
        cpu: CpuModel::free(),
        ..SimOpts::for_topology(fast_topology(3), 1)
    };
    let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
    w.add_client(
        Box::new(OpLoop::new(kind, ops)),
        None,
        Time(Dur::from_millis(50).0),
    );
    assert!(w.run_to_completion(Time(Dur::from_secs(3600).0)));
    assert_eq!(w.metrics.completed_ops, ops);
}

fn bench_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus_round");
    const OPS: u64 = 200;
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("write_basic_protocol", |b| {
        b.iter(|| run_ops(RequestKind::Write, OPS))
    });
    g.bench_function("read_xpaxos", |b| {
        b.iter(|| run_ops(RequestKind::Read, OPS))
    });
    g.bench_function("original_uncoordinated", |b| {
        b.iter(|| run_ops(RequestKind::Original, OPS))
    });
    g.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
