//! Simulator kernel throughput: how many virtual protocol events the
//! discrete-event engine processes per second of wall time. This bounds
//! how large the paper-reproduction experiments can be.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gridpaxos_core::config::Config;
use gridpaxos_core::request::RequestKind;
use gridpaxos_core::service::NoopApp;
use gridpaxos_core::types::{Dur, Time};
use gridpaxos_simnet::topology::Topology;
use gridpaxos_simnet::workload::OpLoop;
use gridpaxos_simnet::world::{SimOpts, World};

fn run_throughput_sim(clients: usize, per_client: u64) -> u64 {
    let cfg = Config::cluster(3);
    let opts = SimOpts::for_topology(Topology::sysnet(3), 1);
    let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
    for _ in 0..clients {
        w.add_client(
            Box::new(OpLoop::new(RequestKind::Write, per_client)),
            None,
            Time(Dur::from_millis(50).0),
        );
    }
    assert!(w.run_to_completion(Time(Dur::from_secs(3600).0)));
    w.metrics.completed_ops
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet_kernel");
    g.sample_size(10);
    const OPS: u64 = 2000;
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("sysnet_write_sim_2000ops_8clients", |b| {
        b.iter(|| {
            let done = run_throughput_sim(8, OPS / 8);
            assert_eq!(done, OPS);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
