//! Micro-benchmarks of the hand-rolled wire codec: the per-message
//! serialization cost that the CPU model's `send`/`coord_msg` parameters
//! abstract.

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gridpaxos_core::ballot::Ballot;
use gridpaxos_core::command::{Command, Decree, StateUpdate};
use gridpaxos_core::msg::Msg;
use gridpaxos_core::request::{ReplyBody, Request, RequestId, RequestKind};
use gridpaxos_core::types::{ClientId, Instance, ProcessId, Seq};
use gridpaxos_transport::wire::{decode_msg, encode_msg, encode_to_bytes};

fn request_msg(payload_len: usize) -> Msg {
    Msg::Request(Request::new(
        RequestId::new(ClientId(42), Seq(7)),
        RequestKind::Write,
        Bytes::from(vec![0xabu8; payload_len]),
    ))
}

fn accept_msg(batch: usize, payload_len: usize) -> Msg {
    let entries = (0..batch)
        .map(|i| {
            (
                Instance(i as u64 + 1),
                Decree::single(
                    Command::Req(Request::new(
                        RequestId::new(ClientId(i as u64), Seq(1)),
                        RequestKind::Write,
                        Bytes::from(vec![1u8; payload_len]),
                    )),
                    StateUpdate::Delta(Bytes::from(vec![2u8; payload_len])),
                    ReplyBody::Ok(Bytes::from(vec![3u8; 8])),
                ),
            )
        })
        .collect();
    Msg::Accept {
        ballot: Ballot::new(3, ProcessId(0)),
        entries,
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");

    for (name, msg) in [
        ("request_64b", request_msg(64)),
        (
            "heartbeat",
            Msg::Heartbeat {
                ballot: Ballot::new(9, ProcessId(1)),
                chosen: Instance(1_000_000),
                hb_seq: 12,
            },
        ),
        ("accept_1x64b", accept_msg(1, 64)),
        ("accept_16x64b", accept_msg(16, 64)),
        ("accept_64x256b", accept_msg(64, 256)),
        (
            "confirm_req",
            Msg::ConfirmReq {
                ballot: Ballot::new(9, ProcessId(0)),
                epoch: 512,
                backlog: true,
            },
        ),
        (
            "confirm_batch",
            Msg::ConfirmBatch {
                ballot: Ballot::new(9, ProcessId(0)),
                epoch: 512,
            },
        ),
    ] {
        let encoded = encode_to_bytes(&msg);
        g.throughput(Throughput::Bytes(encoded.len() as u64));

        g.bench_function(&format!("encode/{name}"), |b| {
            b.iter_batched(
                || BytesMut::with_capacity(encoded.len()),
                |mut out| {
                    encode_msg(&msg, &mut out);
                    out
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(&format!("decode/{name}"), |b| {
            b.iter_batched(
                || encoded.clone(),
                |mut buf| decode_msg(&mut buf).expect("decodes"),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
