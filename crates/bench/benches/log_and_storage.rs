//! Micro-benchmarks of the replica log and the stable-storage layer: the
//! bookkeeping every accepted decree pays.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gridpaxos_core::ballot::Ballot;
use gridpaxos_core::command::{Decree, SnapshotBlob};
use gridpaxos_core::log::ReplicaLog;
use gridpaxos_core::storage::{MemStorage, Storage};
use gridpaxos_core::types::{Instance, ProcessId};

fn bench_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("replica_log");
    let b1 = Ballot::new(1, ProcessId(0));

    g.throughput(Throughput::Elements(1));
    g.bench_function("accept_mark_apply_cycle", |b| {
        b.iter_batched(
            ReplicaLog::new,
            |mut log| {
                for i in 1..=64u64 {
                    log.record_accept(Instance(i), b1, Decree::noop());
                    log.mark_chosen(Instance(i));
                    while let Some((inst, _)) = log.next_applicable().map(|(i, d)| (i, d.clone())) {
                        log.advance_applied(inst);
                    }
                }
                log
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("entries_above_from_1k_log", |b| {
        let mut log = ReplicaLog::new();
        for i in 1..=1000u64 {
            log.record_accept(Instance(i), b1, Decree::noop());
        }
        b.iter(|| log.entries_above(Instance(500), &[]))
    });

    g.bench_function("truncate_1k_log", |b| {
        b.iter_batched(
            || {
                let mut log = ReplicaLog::new();
                for i in 1..=1000u64 {
                    log.record_accept(Instance(i), b1, Decree::noop());
                }
                log
            },
            |mut log| {
                log.truncate_upto(Instance(900));
                log
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("stable_storage");
    let b1 = Ballot::new(1, ProcessId(0));

    g.bench_function("persist_accept", |b| {
        b.iter_batched(
            MemStorage::new,
            |mut s| {
                for i in 1..=64u64 {
                    s.save_accepted(Instance(i), b1, &Decree::noop());
                }
                s
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("checkpoint_and_truncate", |b| {
        b.iter_batched(
            || {
                let mut s = MemStorage::new();
                for i in 1..=256u64 {
                    s.save_accepted(Instance(i), b1, &Decree::noop());
                }
                s
            },
            |mut s| {
                s.save_checkpoint(&SnapshotBlob {
                    upto: Instance(256),
                    app: bytes::Bytes::from_static(&[0u8; 64]),
                    dedup: vec![],
                });
                s.truncate_upto(Instance(256));
                s
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("reload_after_crash", |b| {
        let mut s = MemStorage::new();
        for i in 1..=256u64 {
            s.save_accepted(Instance(i), b1, &Decree::noop());
        }
        s.save_chosen_prefix(Instance(256));
        b.iter(|| s.load())
    });
    g.finish();
}

criterion_group!(benches, bench_log, bench_storage);
criterion_main!(benches);
