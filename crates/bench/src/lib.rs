//! # gridpaxos-bench
//!
//! The benchmark harness: library functions that regenerate every table
//! and figure of the paper's evaluation (§4) on the simulator, plus
//! Criterion micro-benchmarks (see `benches/`). The `experiments` binary
//! is the command-line entry point.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod table;

pub use experiments::{
    ablation, all, batch_ablation, fig5, fig6, fig7, fig8, fig9, group_commit, large_state,
    leader_switch, reactor, read_batching, rrt_sysnet, scale_t, sharding, state_size, table1,
};
pub use table::TableOut;
