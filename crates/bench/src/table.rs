//! Plain-text table rendering and CSV output for experiment results.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// One rendered experiment result.
#[derive(Clone, Debug)]
pub struct TableOut {
    /// Experiment identifier (e.g. `fig5`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (paper comparison).
    pub notes: Vec<String>,
}

impl TableOut {
    /// New empty table.
    #[must_use]
    pub fn new(id: &str, title: &str, headers: &[&str]) -> TableOut {
        TableOut {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render to stdout.
    pub fn print(&self) {
        println!("\n=== {} — {} ===", self.id, self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for r in &self.rows {
            line(r);
        }
        for n in &self.notes {
            println!("  note: {n}");
        }
    }

    /// Write as CSV under `target/experiments/<id>.csv`. Returns the path.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        Ok(path)
    }

    /// Look up a cell by row predicate + column header (test helper).
    #[must_use]
    pub fn cell(&self, row_match: &str, col: &str) -> Option<&str> {
        let ci = self.headers.iter().position(|h| h == col)?;
        self.rows
            .iter()
            .find(|r| r.first().is_some_and(|c| c == row_match))
            .and_then(|r| r.get(ci))
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_lookup_by_row_and_column() {
        let mut t = TableOut::new("x", "test", &["mode", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["b".into(), "2".into()]);
        assert_eq!(t.cell("b", "value"), Some("2"));
        assert_eq!(t.cell("c", "value"), None);
        assert_eq!(t.cell("a", "nope"), None);
    }
}
