//! The experiment suite: one function per table/figure of the paper
//! (see DESIGN.md §5 for the index). Every function runs the simulation,
//! prints the same rows/series the paper reports, writes a CSV under
//! `target/experiments/`, and returns the table for programmatic checks.

use crate::table::TableOut;
use gridpaxos_core::client::TxnScript;
use gridpaxos_core::config::{ReadMode, TxnMode, ValueMode};
use gridpaxos_core::request::RequestKind;
use gridpaxos_core::service::NoopApp;
use gridpaxos_core::types::{Dur, ProcessId, Time};
use gridpaxos_simnet::cpu::CpuModel;
use gridpaxos_simnet::runner::{
    measure_rrt, measure_throughput, measure_txn_rrt, measure_txn_throughput, Experiment,
};
use gridpaxos_simnet::topology::Topology;
use gridpaxos_simnet::workload::{OpLoop, TxnLoop};
use gridpaxos_simnet::world::{DurabilityMode, SimOpts, World};

fn fmt_ms(v: f64) -> String {
    format!("{v:.3}")
}

fn fmt_ci(v: f64) -> String {
    format!("±{v:.3}")
}

fn fmt_tput(v: f64) -> String {
    format!("{v:.0}")
}

/// E1 — §4.1 response times on the Sysnet cluster. Paper: original
/// 0.181 ms, read 0.263 ms (X-Paxos, −22% vs basic), write 0.338 ms.
#[must_use]
pub fn rrt_sysnet(seed: u64, samples: u64) -> TableOut {
    let mut t = TableOut::new(
        "rrt-sysnet",
        "Request response time on the cluster (ms)",
        &["kind", "mean_ms", "ci99_ms", "p99_ms", "paper_ms"],
    );
    for (kind, name, paper) in [
        (RequestKind::Original, "original", 0.181),
        (RequestKind::Read, "read", 0.263),
        (RequestKind::Write, "write", 0.338),
    ] {
        let s = measure_rrt(Experiment::on(Topology::sysnet(3), seed), kind, samples);
        t.row(vec![
            name.into(),
            fmt_ms(s.mean),
            fmt_ci(s.ci99),
            fmt_ms(s.p99),
            fmt_ms(paper),
        ]);
    }
    let read = measure_rrt(
        Experiment::on(Topology::sysnet(3), seed),
        RequestKind::Read,
        samples,
    );
    let write = measure_rrt(
        Experiment::on(Topology::sysnet(3), seed),
        RequestKind::Write,
        samples,
    );
    t.note(format!(
        "X-Paxos read vs basic write: {:.0}% lower RRT (paper: 22%)",
        (1.0 - read.mean / write.mean) * 100.0
    ));
    t
}

fn throughput_figure(
    id: &str,
    title: &str,
    topology_of: impl Fn() -> Topology,
    seed: u64,
    client_counts: &[usize],
    total_ops: u64,
) -> TableOut {
    let mut t = TableOut::new(
        id,
        title,
        &["clients", "read_tput", "write_tput", "original_tput"],
    );
    for &c in client_counts {
        let per_client = (total_ops / c as u64).max(10);
        let mut cells = vec![c.to_string()];
        for kind in [RequestKind::Read, RequestKind::Write, RequestKind::Original] {
            let (tput, _) =
                measure_throughput(Experiment::on(topology_of(), seed), kind, c, per_client);
            cells.push(fmt_tput(tput));
        }
        t.row(cells);
    }
    t
}

/// E2 — Figure 5: service throughput on Sysnet, 1–16 clients, each
/// sending `1000/c` requests.
#[must_use]
pub fn fig5(seed: u64) -> TableOut {
    let mut t = throughput_figure(
        "fig5",
        "Service throughput on Sysnet (req/s)",
        || Topology::sysnet(3),
        seed,
        &[1, 2, 4, 8, 16],
        1000,
    );
    t.note("paper: reads ≥13% above writes, both below original");
    t
}

/// E3 — Figure 6: throughput with 8–128 clients; the basic protocol and
/// X-Paxos peak between 32 and 64 clients.
#[must_use]
pub fn fig6(seed: u64) -> TableOut {
    let mut t = throughput_figure(
        "fig6",
        "Service throughput on Sysnet, more clients (req/s)",
        || Topology::sysnet(3),
        seed,
        &[8, 16, 32, 64, 128],
        2560,
    );
    t.note("paper: read/write curves peak between 32 and 64 clients");
    t
}

/// E4 — §4.1 config 2 + Figure 7: clients at Berkeley, replicas together
/// at Princeton. Replication is nearly free: original 91.85 ms, read
/// 92.79 ms, write 93.13 ms; throughputs nearly identical.
#[must_use]
pub fn fig7(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "fig7",
        "Berkeley → Princeton: RRT (ms) and throughput (req/s)",
        &["metric", "read", "write", "original", "paper"],
    );
    let mut rrts = Vec::new();
    for kind in [RequestKind::Read, RequestKind::Write, RequestKind::Original] {
        let s = measure_rrt(
            Experiment::on(Topology::berkeley_princeton(3), seed),
            kind,
            300,
        );
        rrts.push(s.mean);
    }
    t.row(vec![
        "rrt_ms".into(),
        fmt_ms(rrts[0]),
        fmt_ms(rrts[1]),
        fmt_ms(rrts[2]),
        "92.79 / 93.13 / 91.85".into(),
    ]);
    for c in [1usize, 2, 4, 8, 16] {
        let per_client = (1000 / c as u64).max(10);
        let mut row = vec![format!("tput@{c}")];
        for kind in [RequestKind::Read, RequestKind::Write, RequestKind::Original] {
            let (tput, _) = measure_throughput(
                Experiment::on(Topology::berkeley_princeton(3), seed),
                kind,
                c,
                per_client,
            );
            row.push(fmt_tput(tput));
        }
        row.push("≈equal".into());
        t.row(row);
    }
    t.note("paper: co-located replicas make coordination cheap — X-Paxos gains little");
    t
}

/// E5 — §4.1 config 3 + Figure 8: replicas spread across the WAN.
/// Paper RRT: original 70.82 ms, read 75.49 ms, write 106.73 ms —
/// X-Paxos clearly beats the basic protocol.
#[must_use]
pub fn fig8(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "fig8",
        "WAN-replicated service: RRT (ms) and throughput (req/s)",
        &["metric", "read", "write", "original", "paper"],
    );
    let mut rrts = Vec::new();
    for kind in [RequestKind::Read, RequestKind::Write, RequestKind::Original] {
        let s = measure_rrt(Experiment::on(Topology::wan_spread(), seed), kind, 300);
        rrts.push(s.mean);
    }
    t.row(vec![
        "rrt_ms".into(),
        fmt_ms(rrts[0]),
        fmt_ms(rrts[1]),
        fmt_ms(rrts[2]),
        "75.49 / 106.73 / 70.82".into(),
    ]);
    for c in [1usize, 2, 4, 8, 16] {
        let per_client = (1000 / c as u64).max(10);
        let mut row = vec![format!("tput@{c}")];
        for kind in [RequestKind::Read, RequestKind::Write, RequestKind::Original] {
            let (tput, _) = measure_throughput(
                Experiment::on(Topology::wan_spread(), seed),
                kind,
                c,
                per_client,
            );
            row.push(fmt_tput(tput));
        }
        row.push("read ≫ write".into());
        t.row(row);
    }
    t.note(
        "paper: with WAN-separated replicas X-Paxos substantially outperforms the basic protocol",
    );
    t
}

fn txn_case(mode: &str) -> (TxnMode, fn(usize) -> TxnScript) {
    match mode {
        "read/write" => (TxnMode::PerOp, |n| {
            // The paper's mixes: 3 ⇒ 2 reads + 1 write, 5 ⇒ 3 reads + 2 writes.
            TxnScript::read_write(
                n - n / 2 - (n % 2 == 0) as usize,
                n / 2 + (n % 2 == 0) as usize,
            )
        }),
        "write-only" => (TxnMode::PerOp, TxnScript::write_only),
        _ => (TxnMode::TPaxos, TxnScript::write_only),
    }
}

/// E6 — Table 1: transaction response time on Sysnet, 3 and 5 requests
/// per transaction.
#[must_use]
pub fn table1(seed: u64, txns: u64) -> TableOut {
    let mut t = TableOut::new(
        "table1",
        "Transaction response time (ms)",
        &[
            "operation",
            "req_per_txn",
            "avg_trt_ms",
            "ci99_ms",
            "paper_ms",
        ],
    );
    let paper: &[(&str, usize, f64)] = &[
        ("read/write", 3, 1.17),
        ("read/write", 5, 1.79),
        ("write-only", 3, 1.29),
        ("write-only", 5, 2.01),
        ("optimized", 3, 0.85),
        ("optimized", 5, 1.23),
    ];
    for (mode, n_ops, paper_ms) in paper {
        let (txn_mode, script_of) = txn_case(mode);
        let s = measure_txn_rrt(
            Experiment::on(Topology::sysnet(3), seed).txn_mode(txn_mode),
            script_of(*n_ops),
            txns,
        );
        t.row(vec![
            (*mode).into(),
            n_ops.to_string(),
            fmt_ms(s.mean),
            fmt_ci(s.ci99),
            fmt_ms(*paper_ms),
        ]);
    }
    t.note("paper: T-Paxos cuts TRT 28–34% (3 req) and 31–39% (5 req)");
    t
}

/// E7 — Figure 9 (a) and (b): transaction throughput on Sysnet,
/// 1–16 clients, 3 or 5 requests per transaction.
#[must_use]
pub fn fig9(seed: u64, req_per_txn: usize) -> TableOut {
    let mut t = TableOut::new(
        &format!("fig9-{req_per_txn}req"),
        &format!("Transaction throughput, {req_per_txn} requests per txn (txn/s)"),
        &["clients", "read/write", "write-only", "optimized"],
    );
    for c in [1usize, 2, 4, 8, 16] {
        let per_client = (400 / c as u64).max(5);
        let mut row = vec![c.to_string()];
        for mode in ["read/write", "write-only", "optimized"] {
            let (txn_mode, script_of) = txn_case(mode);
            let (tput, m) = measure_txn_throughput(
                Experiment::on(Topology::sysnet(3), seed).txn_mode(txn_mode),
                script_of(req_per_txn),
                c,
                per_client,
            );
            debug_assert_eq!(m.txn_aborts, 0, "no aborts expected in steady state");
            row.push(fmt_tput(tput));
        }
        t.row(row);
    }
    t.note("paper: optimized +42–57% vs 3-req read/write, +52–97% vs 3-req write-only; larger for 5-req");
    t
}

/// E8a — §3.6: sensitivity to leader switches. The leader is crashed
/// mid-run (twice) and later recovered; the workloads observe the
/// disruption differently: writes/reads retry transparently, T-Paxos
/// transactions abort.
#[must_use]
pub fn leader_switch(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "leader-switch",
        "Workload disruption across two forced leader switches",
        &[
            "workload",
            "target",
            "completed",
            "client_retries",
            "txn_aborts",
        ],
    );

    // Common fault schedule: crash the bootstrap leader at 1 s (recover at
    // 2.5 s), then crash its likely successor at 4 s (recover at 5.5 s).
    let schedule = |w: &mut World| {
        w.crash_at(ProcessId(0), Time(Dur::from_secs(1).0));
        w.recover_at(ProcessId(0), Time(Dur::from_millis(2500).0));
        w.crash_at(ProcessId(1), Time(Dur::from_secs(4).0));
        w.recover_at(ProcessId(1), Time(Dur::from_millis(5500).0));
    };
    let deadline = Time(Dur::from_secs(600).0);
    let start = Time(Dur::from_millis(200).0);

    for (name, kind) in [
        ("write(basic)", RequestKind::Write),
        ("read(X-Paxos)", RequestKind::Read),
    ] {
        let exp = Experiment::on(Topology::sysnet(3), seed);
        let opts = SimOpts::for_topology(Topology::sysnet(3), seed);
        let mut w = World::new(exp.cfg.clone(), opts, Box::new(|| Box::new(NoopApp::new())));
        let total: u64 = 160_000; // long enough to span both crashes
        for _ in 0..4 {
            w.add_client(Box::new(OpLoop::new(kind, total / 4)), None, start);
        }
        schedule(&mut w);
        let done = w.run_to_completion(deadline);
        t.row(vec![
            name.into(),
            total.to_string(),
            if done {
                w.metrics.completed_ops.to_string()
            } else {
                format!("{} (stalled)", w.metrics.completed_ops)
            },
            w.metrics.retries.to_string(),
            "0".into(),
        ]);
    }

    // T-Paxos transactions: aborted on switch, retried by the client.
    {
        let exp = Experiment::on(Topology::sysnet(3), seed).txn_mode(TxnMode::TPaxos);
        let opts = SimOpts::for_topology(Topology::sysnet(3), seed);
        let mut w = World::new(exp.cfg.clone(), opts, Box::new(|| Box::new(NoopApp::new())));
        let total_txns: u64 = 24_000; // long enough to span both crashes
        for _ in 0..4 {
            w.add_client(
                Box::new(TxnLoop::new(TxnScript::write_only(3), total_txns / 4)),
                None,
                start,
            );
        }
        schedule(&mut w);
        let done = w.run_to_completion(deadline);
        t.row(vec![
            "txn(T-Paxos)".into(),
            format!("{total_txns} txns"),
            if done {
                w.metrics.txn_commits.to_string()
            } else {
                format!("{} (stalled)", w.metrics.txn_commits)
            },
            w.metrics.retries.to_string(),
            w.metrics.txn_aborts.to_string(),
        ]);
    }
    t.note("§3.6: 'long enough' grows Paxos < X-Paxos < T-Paxos; only T-Paxos loses work (aborts) on a switch");
    t
}

/// E8b — §4.3: tolerating multiple failures. Replicas on a LAN, clients
/// across a high-variance WAN; as `t` (and so the group size `n = 2t+1`)
/// grows, writes barely move while X-Paxos reads wait on higher-order
/// statistics of the WAN latency and degrade.
#[must_use]
pub fn scale_t(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "scale-t",
        "RRT vs replication degree (LAN replicas, heterogeneous WAN client paths; ms)",
        &[
            "n (t)",
            "read_mean",
            "read_ci99",
            "write_mean",
            "write_ci99",
            "xpaxos_gap",
        ],
    );
    for n in [3usize, 5, 7] {
        // Replicas on one LAN; the leader and one backup have a good
        // client path (median 40 ms), the other backups a poor one
        // (median 70 ms) — PlanetLab-style heterogeneity.
        let topo = || Topology::heterogeneous_wan(n, 40.0, 70.0, 0.15);
        let read = measure_rrt(Experiment::on(topo(), seed), RequestKind::Read, 5_000);
        let write = measure_rrt(Experiment::on(topo(), seed), RequestKind::Write, 5_000);
        t.row(vec![
            format!("{n} ({})", (n - 1) / 2),
            fmt_ms(read.mean),
            fmt_ci(read.ci99),
            fmt_ms(write.mean),
            fmt_ci(write.ci99),
            fmt_ms(read.mean - write.mean),
        ]);
    }
    t.note("paper §4.3: t barely affects the basic protocol; X-Paxos waits on more (possibly slow) confirm paths and degrades");
    t
}

/// Ablation — quantify each optimization in isolation on the cluster:
/// X-Paxos vs consensus reads, and state shipping (`ReqState`) vs classic
/// re-execution (`ReqOnly`) for deterministic services.
#[must_use]
pub fn ablation(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "ablation",
        "Design ablations on Sysnet (ms)",
        &["variant", "mean_ms", "ci99_ms"],
    );
    let read_x = measure_rrt(
        Experiment::on(Topology::sysnet(3), seed).read_mode(ReadMode::XPaxos),
        RequestKind::Read,
        1000,
    );
    let read_c = measure_rrt(
        Experiment::on(Topology::sysnet(3), seed).read_mode(ReadMode::Consensus),
        RequestKind::Read,
        1000,
    );
    let read_l = measure_rrt(
        Experiment::on(Topology::sysnet(3), seed).read_mode(ReadMode::Lease),
        RequestKind::Read,
        1000,
    );
    t.row(vec![
        "read, X-Paxos".into(),
        fmt_ms(read_x.mean),
        fmt_ci(read_x.ci99),
    ]);
    t.row(vec![
        "read, consensus".into(),
        fmt_ms(read_c.mean),
        fmt_ci(read_c.ci99),
    ]);
    t.row(vec![
        "read, leader lease (ext.)".into(),
        fmt_ms(read_l.mean),
        fmt_ci(read_l.ci99),
    ]);
    t.note(format!(
        "X-Paxos saves {:.0}% on reads (paper: 22%); leases save {:.0}% more but need timing assumptions",
        (1.0 - read_x.mean / read_c.mean) * 100.0,
        (1.0 - read_l.mean / read_x.mean) * 100.0
    ));

    let mut wr = |vm: ValueMode, label: &str| {
        let mut exp = Experiment::on(Topology::sysnet(3), seed);
        exp.cfg.value_mode = vm;
        let s = measure_rrt(exp, RequestKind::Write, 1000);
        t.row(vec![label.into(), fmt_ms(s.mean), fmt_ci(s.ci99)]);
    };
    wr(ValueMode::ReqState, "write, ship ⟨req,state⟩");
    wr(ValueMode::ReqOnly, "write, classic re-execution");
    t.note("state shipping costs ≈ nothing extra for small states (§3.3's discussion)");
    t
}

/// E9 — §3.3's state-size discussion (and the companion study \[30\]):
/// write RRT as a function of service-state size and shipping strategy.
/// Full-state shipping pays the wire for the whole blob on every write;
/// deltas and reproduction records stay flat.
#[must_use]
pub fn state_size(seed: u64) -> TableOut {
    use gridpaxos_services::{ShipMode, SizedApp};
    let mut t = TableOut::new(
        "state-size",
        "Write RRT vs state size and shipping mode (ms)",
        &[
            "state_bytes",
            "full_lan",
            "delta_lan",
            "full_wan",
            "delta_wan",
            "reproduce_wan",
        ],
    );
    for size in [256usize, 4 << 10, 64 << 10, 512 << 10] {
        let mut row = vec![size.to_string()];
        for (topo, modes) in [
            (Topology::sysnet(3), vec![ShipMode::Full, ShipMode::Delta]),
            (
                Topology::wan_spread(),
                vec![ShipMode::Full, ShipMode::Delta, ShipMode::Reproduce],
            ),
        ] {
            for mode in modes {
                let samples = if topo.name == "sysnet" { 400 } else { 60 };
                let s = gridpaxos_simnet::runner::measure_rrt_with(
                    Experiment::on(topo.clone(), seed),
                    Box::new(move || Box::new(SizedApp::new(size, mode))),
                    RequestKind::Write,
                    samples,
                );
                row.push(fmt_ms(s.mean));
            }
        }
        t.row(row);
    }
    t.note("§3.3: 'the overhead of transferring service state can usually be made small' — deltas/reproduce stay flat while full-state shipping grows with the blob");
    t
}

/// Ablation — decree batching: the write-throughput effect of packing
/// concurrent requests into one consensus instance.
#[must_use]
pub fn batch_ablation(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "batch-ablation",
        "Write throughput vs max decree batch size (req/s, 16 clients)",
        &["max_batch", "write_tput", "write_rrt_ms"],
    );
    for max_batch in [1usize, 4, 16, 64] {
        let mut exp = Experiment::on(Topology::sysnet(3), seed);
        exp.cfg.max_batch = max_batch;
        if max_batch == 1 {
            exp.cfg.batch_window = Dur::ZERO;
        }
        let (tput, _) = measure_throughput(exp, RequestKind::Write, 16, 250);
        let mut exp2 = Experiment::on(Topology::sysnet(3), seed);
        exp2.cfg.max_batch = max_batch;
        let rrt = measure_rrt(exp2, RequestKind::Write, 300);
        t.row(vec![
            max_batch.to_string(),
            fmt_tput(tput),
            fmt_ms(rrt.mean),
        ]);
    }
    t.note("single-request decrees cap closed-loop writes at ~1/(2m); batching lifts the cap without touching single-client latency");
    t
}

/// Extension — multi-group sharding: closed-loop write throughput on the
/// cluster as the KV keyspace is hash-partitioned over `G` independent
/// consensus groups. Strict pipelining (§3.3) caps each group at one
/// decree in flight, so extra groups multiply the number of concurrent
/// decrees (and spread leader work across nodes, since group `g`'s
/// bootstrap leader is replica `g mod n`). Emits `BENCH_sharding.json`
/// next to the text table.
#[must_use]
pub fn sharding(seed: u64) -> TableOut {
    sharding_with(seed, 64, 200, true)
}

fn sharding_with(seed: u64, clients: usize, per_client: u64, emit_json: bool) -> TableOut {
    use gridpaxos_services::{shard_router, KvOp, KvStore};

    let mut t = TableOut::new(
        "sharding",
        &format!("Write throughput vs consensus groups (req/s, {clients} clients, KV store)"),
        &["groups", "write_tput", "p50_ms", "p99_ms", "speedup"],
    );
    let start = Time(Dur::from_millis(200).0);
    let mut results: Vec<(usize, f64, f64, f64)> = Vec::new();
    for g in [1usize, 2, 4, 8] {
        let mut exp = Experiment::on(Topology::sysnet(3), seed);
        // Small decree batches keep each group pipeline-bound — the regime
        // sharding parallelizes (G=1 serves at most `max_batch` requests
        // per decree RTT); giant batches would hide the pipeline cap. No
        // batch window: under-full groups propose immediately.
        exp.cfg.max_batch = 4;
        exp.cfg.batch_window = Dur::ZERO;
        let deadline = exp.deadline;
        let opts = SimOpts {
            cpu: exp.cpu,
            ..SimOpts::for_topology(exp.topology, seed)
        };
        let mut w = World::new_sharded(
            exp.cfg,
            opts,
            Box::new(|| Box::new(KvStore::sharded())),
            g,
            Some(shard_router()),
        );
        for i in 0..clients {
            // One key per client: single-key ops shard cleanly, and the
            // key hashes spread the clients across the groups.
            let op = KvOp::Put(format!("c{i}"), "v".into());
            w.add_client(
                Box::new(OpLoop::with_payload(
                    RequestKind::Write,
                    per_client,
                    op.encode(),
                )),
                None,
                start,
            );
        }
        let ok = w.run_to_completion(Time::ZERO.after(deadline));
        assert!(
            ok,
            "sharding run (G={g}) did not complete within the deadline"
        );
        let s = w.metrics.rtt_summary("write");
        results.push((g, w.metrics.ops_per_sec(), s.p50, s.p99));
    }
    let base = results[0].1;
    for (g, tput, p50, p99) in &results {
        t.row(vec![
            g.to_string(),
            fmt_tput(*tput),
            fmt_ms(*p50),
            fmt_ms(*p99),
            format!("{:.2}x", tput / base),
        ]);
    }
    if emit_json {
        match write_sharding_json(&results) {
            Ok(p) => t.note(format!("json: {p}")),
            Err(e) => t.note(format!("json write failed: {e}")),
        }
    }
    t.note("extension: G groups lift §3.3's one-decree-in-flight cap; near-linear until node CPU saturates");
    t
}

/// Machine-readable companion to the `sharding` table, written to
/// `BENCH_sharding.json` in the working directory.
fn write_sharding_json(results: &[(usize, f64, f64, f64)]) -> std::io::Result<String> {
    let base = results.first().map_or(1.0, |r| r.1);
    let mut s = String::from(
        "{\n  \"experiment\": \"sharding\",\n  \"workload\": \"64 closed-loop clients, \
         one Put key each, 200 writes per client, n=3 cluster\",\n  \"units\": \
         {\"write_tput\": \"req/s\", \"p50\": \"ms\", \"p99\": \"ms\"},\n  \"results\": [\n",
    );
    for (i, (g, tput, p50, p99)) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"groups\": {g}, \"write_tput\": {tput:.1}, \"p50\": {p50:.4}, \
             \"p99\": {p99:.4}, \"speedup\": {:.3}}}{}\n",
            tput / base,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    let path = "BENCH_sharding.json";
    std::fs::write(path, s)?;
    Ok(path.to_owned())
}

/// Extension — group-commit durability: closed-loop durable write
/// throughput with one fsync per WAL record (the classic
/// persist-before-send discipline) vs batched group commit (the drive
/// loop drains a batch of events, issues one covering `flush()`, and only
/// then transmits — persist-before-send at batch granularity). Sweeps
/// sync mode × client count × consensus groups; multi-group nodes share
/// one WAL, so a single barrier covers every group's appends in a drain
/// cycle. Strict pipelining (§3.3) bounds the G=1 win to the shortened
/// decree round; the shard plane is where coalescing pays — G groups'
/// records ride one sync. Emits `BENCH_group_commit.json`.
#[must_use]
pub fn group_commit(seed: u64) -> TableOut {
    group_commit_with(seed, &[16, 64], 200, true)
}

/// One measured row of the group-commit sweep.
struct GcRow {
    groups: usize,
    clients: usize,
    per_record_tput: f64,
    batched_tput: f64,
    pr_fsyncs_per_op: f64,
    gc_fsyncs_per_op: f64,
}

fn group_commit_with(
    seed: u64,
    client_counts: &[usize],
    per_client: u64,
    emit_json: bool,
) -> TableOut {
    use gridpaxos_services::{shard_router, KvOp, KvStore};

    let mut t = TableOut::new(
        "group-commit",
        "Durable write throughput: per-record fsync vs group commit (req/s, KV store)",
        &[
            "groups",
            "clients",
            "per_record_tput",
            "batched_tput",
            "speedup",
            "pr_fsyncs_per_op",
            "gc_fsyncs_per_op",
        ],
    );
    let start = Time(Dur::from_millis(200).0);
    let run = |g: usize, clients: usize, mode: DurabilityMode| -> (f64, f64) {
        let mut exp = Experiment::on(Topology::sysnet(3), seed);
        // Same pipeline-bound regime as the `sharding` experiment: small
        // decree batches, no batching window. An unbounded batch would
        // let per-record mode amortize through the leader's own queueing
        // and hide what the fsync schedule changes.
        exp.cfg.max_batch = 4;
        exp.cfg.batch_window = Dur::ZERO;
        let deadline = exp.deadline;
        let opts = SimOpts {
            cpu: exp.cpu,
            durability: mode,
            ..SimOpts::for_topology(exp.topology, seed)
        };
        let mut w = World::new_sharded(
            exp.cfg,
            opts,
            Box::new(|| Box::new(KvStore::sharded())),
            g,
            Some(shard_router()),
        );
        for i in 0..clients {
            let op = KvOp::Put(format!("c{i}"), "v".into());
            w.add_client(
                Box::new(OpLoop::with_payload(
                    RequestKind::Write,
                    per_client,
                    op.encode(),
                )),
                None,
                start,
            );
        }
        let ok = w.run_to_completion(Time::ZERO.after(deadline));
        assert!(
            ok,
            "group-commit run (G={g}, {clients} clients, {mode:?}) did not complete"
        );
        (w.metrics.ops_per_sec(), w.metrics.fsyncs_per_op())
    };
    let mut results: Vec<GcRow> = Vec::new();
    for &g in &[1usize, 4] {
        for &clients in client_counts {
            let (pr_tput, pr_fpo) = run(g, clients, DurabilityMode::PerRecord);
            let (gc_tput, gc_fpo) = run(g, clients, DurabilityMode::Batched);
            t.row(vec![
                g.to_string(),
                clients.to_string(),
                fmt_tput(pr_tput),
                fmt_tput(gc_tput),
                format!("{:.2}x", gc_tput / pr_tput),
                format!("{pr_fpo:.2}"),
                format!("{gc_fpo:.2}"),
            ]);
            results.push(GcRow {
                groups: g,
                clients,
                per_record_tput: pr_tput,
                batched_tput: gc_tput,
                pr_fsyncs_per_op: pr_fpo,
                gc_fsyncs_per_op: gc_fpo,
            });
        }
    }
    if emit_json {
        match write_group_commit_json(&results) {
            Ok(p) => t.note(format!("json: {p}")),
            Err(e) => t.note(format!("json write failed: {e}")),
        }
    }
    t.note("group commit amortizes the WAL sync over a drain cycle's records — and over all G groups sharing the node's log, where per-record pays G independent fsync streams");
    t
}

/// Machine-readable companion to the `group-commit` table, written to
/// `BENCH_group_commit.json` in the working directory.
fn write_group_commit_json(results: &[GcRow]) -> std::io::Result<String> {
    let mut s = String::from(
        "{\n  \"experiment\": \"group-commit\",\n  \"workload\": \"closed-loop KV Puts, \
         n=3 cluster (sysnet topology), max_batch=4, 200 writes per client; durability \
         charged at 2 ms per fsync\",\n  \"modes\": {\"per_record\": \"one blocking fsync \
         per WAL record\", \"batched\": \"group commit: one flush barrier per drain cycle, \
         shared across a node's groups\"},\n  \"units\": {\"per_record_tput\": \"req/s\", \
         \"batched_tput\": \"req/s\"},\n  \"results\": [\n",
    );
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"groups\": {}, \"clients\": {}, \"per_record_tput\": {:.1}, \
             \"batched_tput\": {:.1}, \"speedup\": {:.3}, \"per_record_fsyncs_per_op\": \
             {:.3}, \"batched_fsyncs_per_op\": {:.3}}}{}\n",
            r.groups,
            r.clients,
            r.per_record_tput,
            r.batched_tput,
            r.batched_tput / r.per_record_tput,
            r.pr_fsyncs_per_op,
            r.gc_fsyncs_per_op,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    let path = "BENCH_group_commit.json";
    std::fs::write(path, s)?;
    Ok(path.to_owned())
}

/// Extension — epoch-batched confirm rounds: closed-loop X-Paxos read
/// throughput with the paper's per-read confirms vs confirm batching.
/// Runs on a message-bound CPU model ([`CpuModel::msg_bound`]) where
/// per-message overhead, not request execution, saturates the replicas —
/// the regime the batching targets (per-read confirms cost every replica
/// `O(reads)` messages; one round costs `O(n)` regardless of backlog).
/// Emits `BENCH_read_batching.json` next to the text table.
#[must_use]
pub fn read_batching(seed: u64) -> TableOut {
    read_batching_with(seed, &[8, 16, 32, 64, 128], 200, true)
}

fn read_batching_with(
    seed: u64,
    client_counts: &[usize],
    per_client: u64,
    emit_json: bool,
) -> TableOut {
    let mut t = TableOut::new(
        "read-batching",
        "X-Paxos read throughput: per-read confirms vs epoch batching (req/s, msg-bound CPU)",
        &[
            "clients",
            "per_read_tput",
            "batched_tput",
            "speedup",
            "confirms_per_read",
        ],
    );
    let run = |clients: usize, batching: bool| {
        let mut exp = Experiment::on(Topology::sysnet(3), seed);
        exp.cpu = CpuModel::msg_bound();
        exp.cfg.confirm_batching = batching;
        measure_throughput(exp, RequestKind::Read, clients, per_client)
    };
    let mut results: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &c in client_counts {
        let (base, _) = run(c, false);
        let (batched, m) = run(c, true);
        let cpr = m.confirm_msgs_per_read();
        t.row(vec![
            c.to_string(),
            fmt_tput(base),
            fmt_tput(batched),
            format!("{:.2}x", batched / base),
            format!("{cpr:.2}"),
        ]);
        results.push((c, base, batched, cpr));
    }
    if emit_json {
        match write_read_batching_json(&results) {
            Ok(p) => t.note(format!("json: {p}")),
            Err(e) => t.note(format!("json write failed: {e}")),
        }
    }
    t.note("extension: one ConfirmReq/ConfirmBatch round validates every open read, collapsing O(reads x n) confirm traffic to O(n) per round");
    t
}

/// Machine-readable companion to the `read-batching` table, written to
/// `BENCH_read_batching.json` in the working directory.
fn write_read_batching_json(results: &[(usize, f64, f64, f64)]) -> std::io::Result<String> {
    let mut s = String::from(
        "{\n  \"experiment\": \"read-batching\",\n  \"workload\": \"closed-loop X-Paxos \
         reads, n=3 cluster (sysnet topology), message-bound CPU model, 200 reads per \
         client\",\n  \"units\": {\"per_read_tput\": \"req/s\", \"batched_tput\": \
         \"req/s\"},\n  \"results\": [\n",
    );
    for (i, (c, base, batched, cpr)) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"clients\": {c}, \"per_read_tput\": {base:.1}, \"batched_tput\": \
             {batched:.1}, \"speedup\": {:.3}, \"confirms_per_read\": {cpr:.3}}}{}\n",
            batched / base,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    let path = "BENCH_read_batching.json";
    std::fs::write(path, s)?;
    Ok(path.to_owned())
}

/// E14 — reactor transport: live-TCP A/B of the thread-per-connection
/// substrate against the nonblocking epoll reactor, on a real 3-node
/// loopback cluster (not the simulator). Two phases:
///
/// * **closed-loop**: real `SyncClient` connections on both transports at
///   matched counts, then the headline run — 10,000+ virtual clients
///   multiplexed over three sockets ([`MuxSwarm`]), a client population
///   the threaded transport cannot host on one box (two threads per
///   connection);
/// * **open-loop**: a fixed offered-rate sweep past saturation on both
///   transports. The reactor's admission gate sheds the excess with
///   `Busy` (throughput plateaus, tail latency stays bounded); the
///   threaded path queues without bound and its tail grows with the
///   backlog.
///
/// Emits `BENCH_reactor.json`. Linux only (epoll); elsewhere the table
/// carries a note and no rows.
///
/// [`MuxSwarm`]: gridpaxos_transport::MuxSwarm
#[must_use]
#[cfg(target_os = "linux")]
pub fn reactor(seed: u64) -> TableOut {
    reactor_live::reactor_with(seed, &reactor_live::Scale::full(), true)
}

/// Non-Linux stub: the reactor needs epoll.
#[must_use]
#[cfg(not(target_os = "linux"))]
pub fn reactor(_seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "reactor",
        "Reactor vs thread-per-connection transport (live TCP)",
        &[
            "case",
            "clients",
            "offered_rps",
            "tput_rps",
            "p50_ms",
            "p99_ms",
            "busy",
        ],
    );
    t.note("skipped: the reactor transport requires Linux (epoll)");
    t
}

#[cfg(target_os = "linux")]
mod reactor_live {
    use super::TableOut;
    use gridpaxos_core::config::Config;
    use gridpaxos_core::request::RequestKind;
    use gridpaxos_core::service::NoopApp;
    use gridpaxos_core::types::ProcessId;
    use gridpaxos_transport::{MuxSwarm, ReactorCluster, SyncClient, TcpCluster, TcpNode};
    use std::collections::HashMap;
    use std::net::SocketAddr;
    use std::time::{Duration, Instant};

    /// Workload sizes; the CI smoke test shrinks these, the full run
    /// (and `BENCH_reactor.json`) uses `full()`.
    pub(crate) struct Scale {
        /// Real-`SyncClient` counts to run on the threaded transport.
        pub thread_clients: Vec<usize>,
        /// Real-`SyncClient` count on the reactor (parity check).
        pub parity_clients: usize,
        /// Virtual clients multiplexed over three sockets (headline).
        pub mux_clients: usize,
        /// Closed-loop ops per client.
        pub ops_each: u64,
        /// Open-loop offered rates (req/s) to sweep on both transports.
        pub open_rates: Vec<u64>,
        /// Concurrent single-vclient swarms injecting the open-loop rate
        /// (each has its own client id, so replies route on both
        /// transports).
        pub open_swarms: usize,
        /// Injection window per open-loop rate.
        pub open_dur: Duration,
    }

    impl Scale {
        pub(crate) fn full() -> Scale {
            Scale {
                thread_clients: vec![128, 512],
                parity_clients: 512,
                mux_clients: 10_000,
                ops_each: 10,
                open_rates: vec![4_000, 16_000, 64_000],
                open_swarms: 32,
                open_dur: Duration::from_secs(2),
            }
        }

        #[cfg(test)]
        pub(crate) fn smoke() -> Scale {
            Scale {
                thread_clients: vec![32],
                parity_clients: 32,
                mux_clients: 300,
                ops_each: 10,
                open_rates: vec![2_000],
                open_swarms: 8,
                open_dur: Duration::from_millis(500),
            }
        }
    }

    /// One finished closed-loop run.
    pub(crate) struct ClosedRow {
        transport: &'static str,
        clients: usize,
        conns: usize,
        completed: u64,
        busy: u64,
        tput: f64,
        p50_ms: f64,
        p99_ms: f64,
    }

    /// One finished open-loop rate point.
    pub(crate) struct OpenRow {
        transport: &'static str,
        offered: u64,
        sent: u64,
        completed: u64,
        busy: u64,
        tput: f64,
        p99_ms: f64,
    }

    fn pct_ms(sorted_ns: &[u64], p: f64) -> f64 {
        if sorted_ns.is_empty() {
            return 0.0;
        }
        let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
        sorted_ns[idx] as f64 / 1e6
    }

    fn client_base(seed: u64) -> u64 {
        (std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1)
            ^ seed)
            | 1
    }

    /// Closed loop with `clients` real connections: each thread owns one
    /// `SyncClient` and keeps exactly one request outstanding.
    fn closed_real(
        transport: &'static str,
        mk: &(dyn Fn() -> SyncClient<TcpNode> + Sync),
        clients: usize,
        ops_each: u64,
    ) -> ClosedRow {
        let started = Instant::now();
        let per_thread: Vec<(u64, Vec<u64>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    s.spawn(move || {
                        let mut cl = mk();
                        let mut ok = 0u64;
                        let mut samples = Vec::with_capacity(ops_each as usize);
                        for i in 0..ops_each {
                            let t0 = Instant::now();
                            let body: Vec<u8> = vec![(i & 0xff) as u8];
                            if cl.call(RequestKind::Write, body.into()).is_some() {
                                ok += 1;
                                samples.push(t0.elapsed().as_nanos() as u64);
                            }
                        }
                        (ok, samples)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect()
        });
        let elapsed = started.elapsed();
        let completed: u64 = per_thread.iter().map(|(ok, _)| ok).sum();
        let mut samples: Vec<u64> = per_thread.into_iter().flat_map(|(_, s)| s).collect();
        samples.sort_unstable();
        ClosedRow {
            transport,
            clients,
            conns: clients * 3,
            completed,
            busy: 0,
            tput: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_ms: pct_ms(&samples, 0.50),
            p99_ms: pct_ms(&samples, 0.99),
        }
    }

    /// Closed loop with `mux_clients` virtual clients over one socket per
    /// replica — the population the threaded transport cannot host.
    fn closed_mux(
        addrs: &HashMap<ProcessId, SocketAddr>,
        mux_clients: usize,
        ops_each: u64,
        base: u64,
    ) -> ClosedRow {
        let mut swarm = MuxSwarm::connect(addrs, mux_clients, base).expect("mux connect");
        let rep = swarm.run_closed(ops_each, Duration::from_secs(120));
        swarm.shutdown();
        ClosedRow {
            transport: "reactor+mux",
            clients: mux_clients,
            conns: addrs.len(),
            completed: rep.completed,
            busy: rep.busy,
            tput: rep.throughput(),
            p50_ms: rep.rtt_p50_us / 1e3,
            p99_ms: rep.rtt_p99_us / 1e3,
        }
    }

    /// Open loop at `offered` req/s aggregate: `swarms` single-vclient
    /// swarms (distinct client ids, so replies route on both transports)
    /// inject fixed-interval, then drain for a grace period.
    fn open_point(
        transport: &'static str,
        addrs: &HashMap<ProcessId, SocketAddr>,
        swarms: usize,
        offered: u64,
        dur: Duration,
        base: u64,
    ) -> OpenRow {
        let grace = Duration::from_millis(500);
        let per_swarm_rate = (offered / swarms as u64).max(1);
        let reports: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..swarms)
                .map(|i| {
                    let b = base + i as u64;
                    s.spawn(move || {
                        let mut swarm = MuxSwarm::connect(addrs, 1, b).expect("mux connect");
                        let rep = swarm.run_open(per_swarm_rate, dur, grace);
                        swarm.shutdown();
                        rep
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("open-loop swarm panicked"))
                .collect()
        });
        let sent: u64 = reports.iter().map(|r| r.sent).sum();
        let completed: u64 = reports.iter().map(|r| r.completed).sum();
        let busy: u64 = reports.iter().map(|r| r.busy).sum();
        let p99 = reports.iter().map(|r| r.rtt_p99_us).fold(0.0, f64::max) / 1e3;
        OpenRow {
            transport,
            offered,
            sent,
            completed,
            busy,
            tput: completed as f64 / (dur + grace).as_secs_f64(),
            p99_ms: p99,
        }
    }

    pub(crate) fn reactor_with(seed: u64, scale: &Scale, emit_json: bool) -> TableOut {
        let mut t = TableOut::new(
            "reactor",
            "Reactor vs thread-per-connection transport (live 3-node TCP cluster, req/s)",
            &[
                "case",
                "clients",
                "conns",
                "offered_rps",
                "completed",
                "tput_rps",
                "p50_ms",
                "p99_ms",
                "busy",
            ],
        );
        let app = || Box::new(NoopApp::new()) as Box<dyn gridpaxos_core::service::App>;
        let mut closed: Vec<ClosedRow> = Vec::new();
        let mut open: Vec<OpenRow> = Vec::new();

        // ---- threaded transport ----
        {
            let cluster = TcpCluster::launch(Config::cluster(3), app).expect("threads cluster");
            for &c in &scale.thread_clients {
                closed.push(closed_real(
                    "threads",
                    &|| cluster.client(),
                    c,
                    scale.ops_each,
                ));
            }
            for &rate in &scale.open_rates {
                open.push(open_point(
                    "threads",
                    &cluster.addrs,
                    scale.open_swarms,
                    rate,
                    scale.open_dur,
                    client_base(seed),
                ));
            }
            cluster.shutdown();
        }

        // ---- reactor transport ----
        let shed_total;
        {
            let cluster = ReactorCluster::launch(Config::cluster(3), app).expect("reactor cluster");
            closed.push(closed_real(
                "reactor",
                &|| cluster.client(),
                scale.parity_clients,
                scale.ops_each,
            ));
            closed.push(closed_mux(
                &cluster.addrs,
                scale.mux_clients,
                scale.ops_each,
                client_base(seed),
            ));
            for &rate in &scale.open_rates {
                open.push(open_point(
                    "reactor",
                    &cluster.addrs,
                    scale.open_swarms,
                    rate,
                    scale.open_dur,
                    client_base(seed),
                ));
            }
            shed_total = (0..3)
                .map(|i| cluster.metrics(i).stats().busy_shed)
                .sum::<u64>();
            cluster.shutdown();
        }

        for r in &closed {
            t.row(vec![
                format!("closed/{}", r.transport),
                r.clients.to_string(),
                r.conns.to_string(),
                "-".into(),
                r.completed.to_string(),
                format!("{:.0}", r.tput),
                format!("{:.3}", r.p50_ms),
                format!("{:.3}", r.p99_ms),
                r.busy.to_string(),
            ]);
        }
        for r in &open {
            t.row(vec![
                format!("open/{}@{}", r.transport, r.offered),
                "-".into(),
                "-".into(),
                r.offered.to_string(),
                r.completed.to_string(),
                format!("{:.0}", r.tput),
                "-".into(),
                format!("{:.3}", r.p99_ms),
                r.busy.to_string(),
            ]);
        }
        t.note(format!(
            "reactor admission gate shed {shed_total} requests with Busy across all runs"
        ));
        if emit_json {
            match write_reactor_json(&closed, &open) {
                Ok(p) => t.note(format!("json: {p}")),
                Err(e) => t.note(format!("json write failed: {e}")),
            }
        }
        t.note(
            "closed loop: reactor hosts 10k+ multiplexed clients on one thread per node; \
             open loop: the admission gate sheds past saturation (plateau + bounded p99) \
             where thread-per-connection queues without bound",
        );
        t
    }

    fn write_reactor_json(closed: &[ClosedRow], open: &[OpenRow]) -> std::io::Result<String> {
        let mut s = String::from(
            "{\n  \"experiment\": \"reactor\",\n  \"workload\": \"live 3-node loopback TCP \
             cluster, NoopApp writes; closed-loop real SyncClients vs 10k+ virtual clients \
             multiplexed over 3 sockets; open-loop fixed-rate sweep via single-vclient \
             swarms\",\n  \"units\": {\"tput\": \"req/s\", \"p50\": \"ms\", \"p99\": \
             \"ms\"},\n  \"closed_loop\": [\n",
        );
        for (i, r) in closed.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"transport\": \"{}\", \"clients\": {}, \"conns\": {}, \"completed\": \
                 {}, \"busy\": {}, \"tput\": {:.1}, \"p50\": {:.4}, \"p99\": {:.4}}}{}\n",
                r.transport,
                r.clients,
                r.conns,
                r.completed,
                r.busy,
                r.tput,
                r.p50_ms,
                r.p99_ms,
                if i + 1 == closed.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n  \"open_loop\": [\n");
        for (i, r) in open.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"transport\": \"{}\", \"offered_rps\": {}, \"sent\": {}, \
                 \"completed\": {}, \"busy\": {}, \"delivered_rps\": {:.1}, \"p99\": \
                 {:.4}}}{}\n",
                r.transport,
                r.offered,
                r.sent,
                r.completed,
                r.busy,
                r.tput,
                r.p99_ms,
                if i + 1 == open.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        let path = "BENCH_reactor.json";
        std::fs::write(path, s)?;
        Ok(path.to_owned())
    }
}

/// Every experiment, in paper order.
#[must_use]
pub fn all(seed: u64) -> Vec<TableOut> {
    vec![
        rrt_sysnet(seed, 2000),
        fig5(seed),
        fig6(seed),
        fig7(seed),
        fig8(seed),
        table1(seed, 500),
        fig9(seed, 3),
        fig9(seed, 5),
        leader_switch(seed),
        scale_t(seed),
        ablation(seed),
        state_size(seed),
        batch_ablation(seed),
        sharding(seed),
        group_commit(seed),
        read_batching(seed),
        reactor(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_scales_write_throughput() {
        // Short version of the headline run (the full one generates
        // BENCH_sharding.json): with enough clients to keep every group's
        // pipeline full, more groups must yield materially more
        // closed-loop write throughput.
        let t = sharding_with(11, 64, 25, false);
        let tput = |g: &str| -> f64 { t.cell(g, "write_tput").unwrap().parse().unwrap() };
        let (g1, g4) = (tput("1"), tput("4"));
        assert!(g4 > g1 * 2.0, "G=4 {g4:.0}/s vs G=1 {g1:.0}/s");
    }

    #[test]
    fn group_commit_amortizes_durable_writes() {
        // Short version of the headline run (the full one generates
        // BENCH_group_commit.json): at 64 closed-loop writers on a G=4
        // shard plane, batching fsyncs across a drain cycle — and across
        // the groups sharing each node's WAL — must at least double
        // durable write throughput while charging less than one sync per
        // completed op. Per-record pays a sync per WAL record, so its
        // ratio sits well above 1.0.
        let t = group_commit_with(31, &[64], 25, false);
        let cell = |col: &str| -> f64 { t.cell("4", col).unwrap().parse().unwrap() };
        let (pr, gc) = (cell("per_record_tput"), cell("batched_tput"));
        assert!(gc >= pr * 2.0, "batched {gc:.0}/s vs per-record {pr:.0}/s");
        let gc_fpo: f64 = t.cell("4", "gc_fsyncs_per_op").unwrap().parse().unwrap();
        let pr_fpo: f64 = t.cell("4", "pr_fsyncs_per_op").unwrap().parse().unwrap();
        assert!(gc_fpo < 1.0, "group-commit fsyncs per op {gc_fpo:.2}");
        assert!(pr_fpo > 1.0, "per-record fsyncs per op {pr_fpo:.2}");
    }

    #[test]
    fn read_batching_doubles_saturated_read_throughput() {
        // Short version of the headline run (the full one generates
        // BENCH_read_batching.json): at 64 closed-loop readers the
        // message-bound replicas drown in per-read confirms, and epoch
        // batching must at least double throughput while spending less
        // than one confirm-path message per read.
        let t = read_batching_with(7, &[64], 40, false);
        let cell = |col: &str| -> f64 { t.cell("64", col).unwrap().parse().unwrap() };
        let (base, batched) = (cell("per_read_tput"), cell("batched_tput"));
        assert!(
            batched >= base * 2.0,
            "batched {batched:.0}/s vs per-read {base:.0}/s"
        );
        let cpr: f64 = t.cell("64", "confirms_per_read").unwrap().parse().unwrap();
        assert!(cpr < 1.0, "confirm msgs per read {cpr:.2}");
    }

    /// CI smoke for the live-TCP reactor A/B (the full run generates
    /// BENCH_reactor.json with 10k mux clients): a few hundred virtual
    /// clients multiplexed over three sockets must all complete against
    /// the reactor, and the same closed-loop workload must complete on
    /// both transports with real connections.
    #[test]
    #[cfg(target_os = "linux")]
    fn reactor_smoke_serves_mux_swarm_on_both_transports() {
        let scale = reactor_live::Scale::smoke();
        let expect_mux = scale.mux_clients as u64 * scale.ops_each;
        let expect_real = scale.thread_clients[0] as u64 * scale.ops_each;
        let t = reactor_live::reactor_with(5, &scale, false);
        let cell = |row: &str, col: &str| -> u64 {
            t.cell(row, col)
                .unwrap_or_else(|| panic!("row {row} col {col} missing"))
                .parse()
                .unwrap()
        };
        // Headline: every multiplexed op completed over 3 sockets.
        assert_eq!(cell("closed/reactor+mux", "completed"), expect_mux);
        // Matched real-connection workloads complete on both transports.
        assert_eq!(cell("closed/threads", "completed"), expect_real);
        assert_eq!(
            cell("closed/reactor", "completed"),
            scale.parity_clients as u64 * scale.ops_each
        );
    }
}
