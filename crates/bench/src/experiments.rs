//! The experiment suite: one function per table/figure of the paper
//! (see DESIGN.md §5 for the index). Every function runs the simulation,
//! prints the same rows/series the paper reports, writes a CSV under
//! `target/experiments/`, and returns the table for programmatic checks.

use crate::table::TableOut;
use gridpaxos_core::client::TxnScript;
use gridpaxos_core::config::{ReadMode, TxnMode, ValueMode};
use gridpaxos_core::request::RequestKind;
use gridpaxos_core::service::NoopApp;
use gridpaxos_core::types::{Dur, ProcessId, Time};
use gridpaxos_simnet::cpu::CpuModel;
use gridpaxos_simnet::runner::{
    measure_rrt, measure_throughput, measure_txn_rrt, measure_txn_throughput, Experiment,
};
use gridpaxos_simnet::topology::Topology;
use gridpaxos_simnet::workload::{OpLoop, TxnLoop};
use gridpaxos_simnet::world::{DurabilityMode, SimOpts, World};

fn fmt_ms(v: f64) -> String {
    format!("{v:.3}")
}

fn fmt_ci(v: f64) -> String {
    format!("±{v:.3}")
}

fn fmt_tput(v: f64) -> String {
    format!("{v:.0}")
}

/// E1 — §4.1 response times on the Sysnet cluster. Paper: original
/// 0.181 ms, read 0.263 ms (X-Paxos, −22% vs basic), write 0.338 ms.
#[must_use]
pub fn rrt_sysnet(seed: u64, samples: u64) -> TableOut {
    let mut t = TableOut::new(
        "rrt-sysnet",
        "Request response time on the cluster (ms)",
        &["kind", "mean_ms", "ci99_ms", "p99_ms", "paper_ms"],
    );
    for (kind, name, paper) in [
        (RequestKind::Original, "original", 0.181),
        (RequestKind::Read, "read", 0.263),
        (RequestKind::Write, "write", 0.338),
    ] {
        let s = measure_rrt(Experiment::on(Topology::sysnet(3), seed), kind, samples);
        t.row(vec![
            name.into(),
            fmt_ms(s.mean),
            fmt_ci(s.ci99),
            fmt_ms(s.p99),
            fmt_ms(paper),
        ]);
    }
    let read = measure_rrt(
        Experiment::on(Topology::sysnet(3), seed),
        RequestKind::Read,
        samples,
    );
    let write = measure_rrt(
        Experiment::on(Topology::sysnet(3), seed),
        RequestKind::Write,
        samples,
    );
    t.note(format!(
        "X-Paxos read vs basic write: {:.0}% lower RRT (paper: 22%)",
        (1.0 - read.mean / write.mean) * 100.0
    ));
    t
}

fn throughput_figure(
    id: &str,
    title: &str,
    topology_of: impl Fn() -> Topology,
    seed: u64,
    client_counts: &[usize],
    total_ops: u64,
) -> TableOut {
    let mut t = TableOut::new(
        id,
        title,
        &["clients", "read_tput", "write_tput", "original_tput"],
    );
    for &c in client_counts {
        let per_client = (total_ops / c as u64).max(10);
        let mut cells = vec![c.to_string()];
        for kind in [RequestKind::Read, RequestKind::Write, RequestKind::Original] {
            let (tput, _) =
                measure_throughput(Experiment::on(topology_of(), seed), kind, c, per_client);
            cells.push(fmt_tput(tput));
        }
        t.row(cells);
    }
    t
}

/// E2 — Figure 5: service throughput on Sysnet, 1–16 clients, each
/// sending `1000/c` requests.
#[must_use]
pub fn fig5(seed: u64) -> TableOut {
    let mut t = throughput_figure(
        "fig5",
        "Service throughput on Sysnet (req/s)",
        || Topology::sysnet(3),
        seed,
        &[1, 2, 4, 8, 16],
        1000,
    );
    t.note("paper: reads ≥13% above writes, both below original");
    t
}

/// E3 — Figure 6: throughput with 8–128 clients; the basic protocol and
/// X-Paxos peak between 32 and 64 clients.
#[must_use]
pub fn fig6(seed: u64) -> TableOut {
    let mut t = throughput_figure(
        "fig6",
        "Service throughput on Sysnet, more clients (req/s)",
        || Topology::sysnet(3),
        seed,
        &[8, 16, 32, 64, 128],
        2560,
    );
    t.note("paper: read/write curves peak between 32 and 64 clients");
    t
}

/// E4 — §4.1 config 2 + Figure 7: clients at Berkeley, replicas together
/// at Princeton. Replication is nearly free: original 91.85 ms, read
/// 92.79 ms, write 93.13 ms; throughputs nearly identical.
#[must_use]
pub fn fig7(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "fig7",
        "Berkeley → Princeton: RRT (ms) and throughput (req/s)",
        &["metric", "read", "write", "original", "paper"],
    );
    let mut rrts = Vec::new();
    for kind in [RequestKind::Read, RequestKind::Write, RequestKind::Original] {
        let s = measure_rrt(
            Experiment::on(Topology::berkeley_princeton(3), seed),
            kind,
            300,
        );
        rrts.push(s.mean);
    }
    t.row(vec![
        "rrt_ms".into(),
        fmt_ms(rrts[0]),
        fmt_ms(rrts[1]),
        fmt_ms(rrts[2]),
        "92.79 / 93.13 / 91.85".into(),
    ]);
    for c in [1usize, 2, 4, 8, 16] {
        let per_client = (1000 / c as u64).max(10);
        let mut row = vec![format!("tput@{c}")];
        for kind in [RequestKind::Read, RequestKind::Write, RequestKind::Original] {
            let (tput, _) = measure_throughput(
                Experiment::on(Topology::berkeley_princeton(3), seed),
                kind,
                c,
                per_client,
            );
            row.push(fmt_tput(tput));
        }
        row.push("≈equal".into());
        t.row(row);
    }
    t.note("paper: co-located replicas make coordination cheap — X-Paxos gains little");
    t
}

/// E5 — §4.1 config 3 + Figure 8: replicas spread across the WAN.
/// Paper RRT: original 70.82 ms, read 75.49 ms, write 106.73 ms —
/// X-Paxos clearly beats the basic protocol.
#[must_use]
pub fn fig8(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "fig8",
        "WAN-replicated service: RRT (ms) and throughput (req/s)",
        &["metric", "read", "write", "original", "paper"],
    );
    let mut rrts = Vec::new();
    for kind in [RequestKind::Read, RequestKind::Write, RequestKind::Original] {
        let s = measure_rrt(Experiment::on(Topology::wan_spread(), seed), kind, 300);
        rrts.push(s.mean);
    }
    t.row(vec![
        "rrt_ms".into(),
        fmt_ms(rrts[0]),
        fmt_ms(rrts[1]),
        fmt_ms(rrts[2]),
        "75.49 / 106.73 / 70.82".into(),
    ]);
    for c in [1usize, 2, 4, 8, 16] {
        let per_client = (1000 / c as u64).max(10);
        let mut row = vec![format!("tput@{c}")];
        for kind in [RequestKind::Read, RequestKind::Write, RequestKind::Original] {
            let (tput, _) = measure_throughput(
                Experiment::on(Topology::wan_spread(), seed),
                kind,
                c,
                per_client,
            );
            row.push(fmt_tput(tput));
        }
        row.push("read ≫ write".into());
        t.row(row);
    }
    t.note(
        "paper: with WAN-separated replicas X-Paxos substantially outperforms the basic protocol",
    );
    t
}

fn txn_case(mode: &str) -> (TxnMode, fn(usize) -> TxnScript) {
    match mode {
        "read/write" => (TxnMode::PerOp, |n| {
            // The paper's mixes: 3 ⇒ 2 reads + 1 write, 5 ⇒ 3 reads + 2 writes.
            TxnScript::read_write(
                n - n / 2 - (n % 2 == 0) as usize,
                n / 2 + (n % 2 == 0) as usize,
            )
        }),
        "write-only" => (TxnMode::PerOp, TxnScript::write_only),
        _ => (TxnMode::TPaxos, TxnScript::write_only),
    }
}

/// E6 — Table 1: transaction response time on Sysnet, 3 and 5 requests
/// per transaction.
#[must_use]
pub fn table1(seed: u64, txns: u64) -> TableOut {
    let mut t = TableOut::new(
        "table1",
        "Transaction response time (ms)",
        &[
            "operation",
            "req_per_txn",
            "avg_trt_ms",
            "ci99_ms",
            "paper_ms",
        ],
    );
    let paper: &[(&str, usize, f64)] = &[
        ("read/write", 3, 1.17),
        ("read/write", 5, 1.79),
        ("write-only", 3, 1.29),
        ("write-only", 5, 2.01),
        ("optimized", 3, 0.85),
        ("optimized", 5, 1.23),
    ];
    for (mode, n_ops, paper_ms) in paper {
        let (txn_mode, script_of) = txn_case(mode);
        let s = measure_txn_rrt(
            Experiment::on(Topology::sysnet(3), seed).txn_mode(txn_mode),
            script_of(*n_ops),
            txns,
        );
        t.row(vec![
            (*mode).into(),
            n_ops.to_string(),
            fmt_ms(s.mean),
            fmt_ci(s.ci99),
            fmt_ms(*paper_ms),
        ]);
    }
    t.note("paper: T-Paxos cuts TRT 28–34% (3 req) and 31–39% (5 req)");
    t
}

/// E7 — Figure 9 (a) and (b): transaction throughput on Sysnet,
/// 1–16 clients, 3 or 5 requests per transaction.
#[must_use]
pub fn fig9(seed: u64, req_per_txn: usize) -> TableOut {
    let mut t = TableOut::new(
        &format!("fig9-{req_per_txn}req"),
        &format!("Transaction throughput, {req_per_txn} requests per txn (txn/s)"),
        &["clients", "read/write", "write-only", "optimized"],
    );
    for c in [1usize, 2, 4, 8, 16] {
        let per_client = (400 / c as u64).max(5);
        let mut row = vec![c.to_string()];
        for mode in ["read/write", "write-only", "optimized"] {
            let (txn_mode, script_of) = txn_case(mode);
            let (tput, m) = measure_txn_throughput(
                Experiment::on(Topology::sysnet(3), seed).txn_mode(txn_mode),
                script_of(req_per_txn),
                c,
                per_client,
            );
            debug_assert_eq!(m.txn_aborts, 0, "no aborts expected in steady state");
            row.push(fmt_tput(tput));
        }
        t.row(row);
    }
    t.note("paper: optimized +42–57% vs 3-req read/write, +52–97% vs 3-req write-only; larger for 5-req");
    t
}

/// E8a — §3.6: sensitivity to leader switches. The leader is crashed
/// mid-run (twice) and later recovered; the workloads observe the
/// disruption differently: writes/reads retry transparently, T-Paxos
/// transactions abort.
#[must_use]
pub fn leader_switch(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "leader-switch",
        "Workload disruption across two forced leader switches",
        &[
            "workload",
            "target",
            "completed",
            "client_retries",
            "txn_aborts",
        ],
    );

    // Common fault schedule: crash the bootstrap leader at 1 s (recover at
    // 2.5 s), then crash its likely successor at 4 s (recover at 5.5 s).
    let schedule = |w: &mut World| {
        w.crash_at(ProcessId(0), Time(Dur::from_secs(1).0));
        w.recover_at(ProcessId(0), Time(Dur::from_millis(2500).0));
        w.crash_at(ProcessId(1), Time(Dur::from_secs(4).0));
        w.recover_at(ProcessId(1), Time(Dur::from_millis(5500).0));
    };
    let deadline = Time(Dur::from_secs(600).0);
    let start = Time(Dur::from_millis(200).0);

    for (name, kind) in [
        ("write(basic)", RequestKind::Write),
        ("read(X-Paxos)", RequestKind::Read),
    ] {
        let exp = Experiment::on(Topology::sysnet(3), seed);
        let opts = SimOpts::for_topology(Topology::sysnet(3), seed);
        let mut w = World::new(exp.cfg.clone(), opts, Box::new(|| Box::new(NoopApp::new())));
        let total: u64 = 160_000; // long enough to span both crashes
        for _ in 0..4 {
            w.add_client(Box::new(OpLoop::new(kind, total / 4)), None, start);
        }
        schedule(&mut w);
        let done = w.run_to_completion(deadline);
        t.row(vec![
            name.into(),
            total.to_string(),
            if done {
                w.metrics.completed_ops.to_string()
            } else {
                format!("{} (stalled)", w.metrics.completed_ops)
            },
            w.metrics.retries.to_string(),
            "0".into(),
        ]);
    }

    // T-Paxos transactions: aborted on switch, retried by the client.
    {
        let exp = Experiment::on(Topology::sysnet(3), seed).txn_mode(TxnMode::TPaxos);
        let opts = SimOpts::for_topology(Topology::sysnet(3), seed);
        let mut w = World::new(exp.cfg.clone(), opts, Box::new(|| Box::new(NoopApp::new())));
        let total_txns: u64 = 24_000; // long enough to span both crashes
        for _ in 0..4 {
            w.add_client(
                Box::new(TxnLoop::new(TxnScript::write_only(3), total_txns / 4)),
                None,
                start,
            );
        }
        schedule(&mut w);
        let done = w.run_to_completion(deadline);
        t.row(vec![
            "txn(T-Paxos)".into(),
            format!("{total_txns} txns"),
            if done {
                w.metrics.txn_commits.to_string()
            } else {
                format!("{} (stalled)", w.metrics.txn_commits)
            },
            w.metrics.retries.to_string(),
            w.metrics.txn_aborts.to_string(),
        ]);
    }
    t.note("§3.6: 'long enough' grows Paxos < X-Paxos < T-Paxos; only T-Paxos loses work (aborts) on a switch");
    t
}

/// E8b — §4.3: tolerating multiple failures. Replicas on a LAN, clients
/// across a high-variance WAN; as `t` (and so the group size `n = 2t+1`)
/// grows, writes barely move while X-Paxos reads wait on higher-order
/// statistics of the WAN latency and degrade.
#[must_use]
pub fn scale_t(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "scale-t",
        "RRT vs replication degree (LAN replicas, heterogeneous WAN client paths; ms)",
        &[
            "n (t)",
            "read_mean",
            "read_ci99",
            "write_mean",
            "write_ci99",
            "xpaxos_gap",
        ],
    );
    for n in [3usize, 5, 7] {
        // Replicas on one LAN; the leader and one backup have a good
        // client path (median 40 ms), the other backups a poor one
        // (median 70 ms) — PlanetLab-style heterogeneity.
        let topo = || Topology::heterogeneous_wan(n, 40.0, 70.0, 0.15);
        let read = measure_rrt(Experiment::on(topo(), seed), RequestKind::Read, 5_000);
        let write = measure_rrt(Experiment::on(topo(), seed), RequestKind::Write, 5_000);
        t.row(vec![
            format!("{n} ({})", (n - 1) / 2),
            fmt_ms(read.mean),
            fmt_ci(read.ci99),
            fmt_ms(write.mean),
            fmt_ci(write.ci99),
            fmt_ms(read.mean - write.mean),
        ]);
    }
    t.note("paper §4.3: t barely affects the basic protocol; X-Paxos waits on more (possibly slow) confirm paths and degrades");
    t
}

/// Ablation — quantify each optimization in isolation on the cluster:
/// X-Paxos vs consensus reads, and state shipping (`ReqState`) vs classic
/// re-execution (`ReqOnly`) for deterministic services.
#[must_use]
pub fn ablation(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "ablation",
        "Design ablations on Sysnet (ms)",
        &["variant", "mean_ms", "ci99_ms"],
    );
    let read_x = measure_rrt(
        Experiment::on(Topology::sysnet(3), seed).read_mode(ReadMode::XPaxos),
        RequestKind::Read,
        1000,
    );
    let read_c = measure_rrt(
        Experiment::on(Topology::sysnet(3), seed).read_mode(ReadMode::Consensus),
        RequestKind::Read,
        1000,
    );
    let read_l = measure_rrt(
        Experiment::on(Topology::sysnet(3), seed).read_mode(ReadMode::Lease),
        RequestKind::Read,
        1000,
    );
    t.row(vec![
        "read, X-Paxos".into(),
        fmt_ms(read_x.mean),
        fmt_ci(read_x.ci99),
    ]);
    t.row(vec![
        "read, consensus".into(),
        fmt_ms(read_c.mean),
        fmt_ci(read_c.ci99),
    ]);
    t.row(vec![
        "read, leader lease (ext.)".into(),
        fmt_ms(read_l.mean),
        fmt_ci(read_l.ci99),
    ]);
    t.note(format!(
        "X-Paxos saves {:.0}% on reads (paper: 22%); leases save {:.0}% more but need timing assumptions",
        (1.0 - read_x.mean / read_c.mean) * 100.0,
        (1.0 - read_l.mean / read_x.mean) * 100.0
    ));

    let mut wr = |vm: ValueMode, label: &str| {
        let mut exp = Experiment::on(Topology::sysnet(3), seed);
        exp.cfg.value_mode = vm;
        let s = measure_rrt(exp, RequestKind::Write, 1000);
        t.row(vec![label.into(), fmt_ms(s.mean), fmt_ci(s.ci99)]);
    };
    wr(ValueMode::ReqState, "write, ship ⟨req,state⟩");
    wr(ValueMode::ReqOnly, "write, classic re-execution");
    t.note("state shipping costs ≈ nothing extra for small states (§3.3's discussion)");
    t
}

/// E9 — §3.3's state-size discussion (and the companion study \[30\]):
/// write RRT as a function of service-state size and shipping strategy.
/// Full-state shipping pays the wire for the whole blob on every write;
/// deltas and reproduction records stay flat.
#[must_use]
pub fn state_size(seed: u64) -> TableOut {
    use gridpaxos_services::{ShipMode, SizedApp};
    let mut t = TableOut::new(
        "state-size",
        "Write RRT vs state size and shipping mode (ms)",
        &[
            "state_bytes",
            "full_lan",
            "delta_lan",
            "full_wan",
            "delta_wan",
            "reproduce_wan",
        ],
    );
    for size in [256usize, 4 << 10, 64 << 10, 512 << 10] {
        let mut row = vec![size.to_string()];
        for (topo, modes) in [
            (Topology::sysnet(3), vec![ShipMode::Full, ShipMode::Delta]),
            (
                Topology::wan_spread(),
                vec![ShipMode::Full, ShipMode::Delta, ShipMode::Reproduce],
            ),
        ] {
            for mode in modes {
                let samples = if topo.name == "sysnet" { 400 } else { 60 };
                let s = gridpaxos_simnet::runner::measure_rrt_with(
                    Experiment::on(topo.clone(), seed),
                    Box::new(move || Box::new(SizedApp::new(size, mode))),
                    RequestKind::Write,
                    samples,
                );
                row.push(fmt_ms(s.mean));
            }
        }
        t.row(row);
    }
    t.note("§3.3: 'the overhead of transferring service state can usually be made small' — deltas/reproduce stay flat while full-state shipping grows with the blob");
    t
}

/// Ablation — decree batching: the write-throughput effect of packing
/// concurrent requests into one consensus instance.
#[must_use]
pub fn batch_ablation(seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "batch-ablation",
        "Write throughput vs max decree batch size (req/s, 16 clients)",
        &["max_batch", "write_tput", "write_rrt_ms"],
    );
    for max_batch in [1usize, 4, 16, 64] {
        let mut exp = Experiment::on(Topology::sysnet(3), seed);
        exp.cfg.max_batch = max_batch;
        if max_batch == 1 {
            exp.cfg.batch_window = Dur::ZERO;
        }
        let (tput, _) = measure_throughput(exp, RequestKind::Write, 16, 250);
        let mut exp2 = Experiment::on(Topology::sysnet(3), seed);
        exp2.cfg.max_batch = max_batch;
        let rrt = measure_rrt(exp2, RequestKind::Write, 300);
        t.row(vec![
            max_batch.to_string(),
            fmt_tput(tput),
            fmt_ms(rrt.mean),
        ]);
    }
    t.note("single-request decrees cap closed-loop writes at ~1/(2m); batching lifts the cap without touching single-client latency");
    t
}

/// Extension — multi-group sharding: closed-loop write throughput on the
/// cluster as the KV keyspace is hash-partitioned over `G` independent
/// consensus groups. Strict pipelining (§3.3) caps each group at one
/// decree in flight, so extra groups multiply the number of concurrent
/// decrees (and spread leader work across nodes, since group `g`'s
/// bootstrap leader is replica `g mod n`). Emits `BENCH_sharding.json`
/// next to the text table.
#[must_use]
pub fn sharding(seed: u64) -> TableOut {
    sharding_with(seed, 64, 200, true)
}

fn sharding_with(seed: u64, clients: usize, per_client: u64, emit_json: bool) -> TableOut {
    use gridpaxos_services::{shard_router, KvOp, KvStore};

    let mut t = TableOut::new(
        "sharding",
        &format!("Write throughput vs consensus groups (req/s, {clients} clients, KV store)"),
        &["groups", "write_tput", "p50_ms", "p99_ms", "speedup"],
    );
    let start = Time(Dur::from_millis(200).0);
    let mut results: Vec<(usize, f64, f64, f64)> = Vec::new();
    for g in [1usize, 2, 4, 8] {
        let mut exp = Experiment::on(Topology::sysnet(3), seed);
        // Small decree batches keep each group pipeline-bound — the regime
        // sharding parallelizes (G=1 serves at most `max_batch` requests
        // per decree RTT); giant batches would hide the pipeline cap. No
        // batch window: under-full groups propose immediately.
        exp.cfg.max_batch = 4;
        exp.cfg.batch_window = Dur::ZERO;
        let deadline = exp.deadline;
        let opts = SimOpts {
            cpu: exp.cpu,
            ..SimOpts::for_topology(exp.topology, seed)
        };
        let mut w = World::new_sharded(
            exp.cfg,
            opts,
            Box::new(|| Box::new(KvStore::sharded())),
            g,
            Some(shard_router()),
        );
        for i in 0..clients {
            // One key per client: single-key ops shard cleanly, and the
            // key hashes spread the clients across the groups.
            let op = KvOp::Put(format!("c{i}"), "v".into());
            w.add_client(
                Box::new(OpLoop::with_payload(
                    RequestKind::Write,
                    per_client,
                    op.encode(),
                )),
                None,
                start,
            );
        }
        let ok = w.run_to_completion(Time::ZERO.after(deadline));
        assert!(
            ok,
            "sharding run (G={g}) did not complete within the deadline"
        );
        let s = w.metrics.rtt_summary("write");
        results.push((g, w.metrics.ops_per_sec(), s.p50, s.p99));
    }
    let base = results[0].1;
    for (g, tput, p50, p99) in &results {
        t.row(vec![
            g.to_string(),
            fmt_tput(*tput),
            fmt_ms(*p50),
            fmt_ms(*p99),
            format!("{:.2}x", tput / base),
        ]);
    }
    if emit_json {
        match write_sharding_json(&results) {
            Ok(p) => t.note(format!("json: {p}")),
            Err(e) => t.note(format!("json write failed: {e}")),
        }
    }
    t.note("extension: G groups lift §3.3's one-decree-in-flight cap; near-linear until node CPU saturates");
    t
}

/// Machine-readable companion to the `sharding` table, written to
/// `BENCH_sharding.json` in the working directory.
fn write_sharding_json(results: &[(usize, f64, f64, f64)]) -> std::io::Result<String> {
    let base = results.first().map_or(1.0, |r| r.1);
    let mut s = String::from(
        "{\n  \"experiment\": \"sharding\",\n  \"workload\": \"64 closed-loop clients, \
         one Put key each, 200 writes per client, n=3 cluster\",\n  \"units\": \
         {\"write_tput\": \"req/s\", \"p50\": \"ms\", \"p99\": \"ms\"},\n  \"results\": [\n",
    );
    for (i, (g, tput, p50, p99)) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"groups\": {g}, \"write_tput\": {tput:.1}, \"p50\": {p50:.4}, \
             \"p99\": {p99:.4}, \"speedup\": {:.3}}}{}\n",
            tput / base,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    let path = "BENCH_sharding.json";
    std::fs::write(path, s)?;
    Ok(path.to_owned())
}

/// Extension — group-commit durability: closed-loop durable write
/// throughput with one fsync per WAL record (the classic
/// persist-before-send discipline) vs batched group commit (the drive
/// loop drains a batch of events, issues one covering `flush()`, and only
/// then transmits — persist-before-send at batch granularity). Sweeps
/// sync mode × client count × consensus groups; multi-group nodes share
/// one WAL, so a single barrier covers every group's appends in a drain
/// cycle. Strict pipelining (§3.3) bounds the G=1 win to the shortened
/// decree round; the shard plane is where coalescing pays — G groups'
/// records ride one sync. Emits `BENCH_group_commit.json`.
#[must_use]
pub fn group_commit(seed: u64) -> TableOut {
    group_commit_with(seed, &[16, 64], 200, true)
}

/// One measured row of the group-commit sweep.
struct GcRow {
    groups: usize,
    clients: usize,
    per_record_tput: f64,
    batched_tput: f64,
    pr_fsyncs_per_op: f64,
    gc_fsyncs_per_op: f64,
}

fn group_commit_with(
    seed: u64,
    client_counts: &[usize],
    per_client: u64,
    emit_json: bool,
) -> TableOut {
    use gridpaxos_services::{shard_router, KvOp, KvStore};

    let mut t = TableOut::new(
        "group-commit",
        "Durable write throughput: per-record fsync vs group commit (req/s, KV store)",
        &[
            "groups",
            "clients",
            "per_record_tput",
            "batched_tput",
            "speedup",
            "pr_fsyncs_per_op",
            "gc_fsyncs_per_op",
        ],
    );
    let start = Time(Dur::from_millis(200).0);
    let run = |g: usize, clients: usize, mode: DurabilityMode| -> (f64, f64) {
        let mut exp = Experiment::on(Topology::sysnet(3), seed);
        // Same pipeline-bound regime as the `sharding` experiment: small
        // decree batches, no batching window. An unbounded batch would
        // let per-record mode amortize through the leader's own queueing
        // and hide what the fsync schedule changes.
        exp.cfg.max_batch = 4;
        exp.cfg.batch_window = Dur::ZERO;
        let deadline = exp.deadline;
        let opts = SimOpts {
            cpu: exp.cpu,
            durability: mode,
            ..SimOpts::for_topology(exp.topology, seed)
        };
        let mut w = World::new_sharded(
            exp.cfg,
            opts,
            Box::new(|| Box::new(KvStore::sharded())),
            g,
            Some(shard_router()),
        );
        for i in 0..clients {
            let op = KvOp::Put(format!("c{i}"), "v".into());
            w.add_client(
                Box::new(OpLoop::with_payload(
                    RequestKind::Write,
                    per_client,
                    op.encode(),
                )),
                None,
                start,
            );
        }
        let ok = w.run_to_completion(Time::ZERO.after(deadline));
        assert!(
            ok,
            "group-commit run (G={g}, {clients} clients, {mode:?}) did not complete"
        );
        (w.metrics.ops_per_sec(), w.metrics.fsyncs_per_op())
    };
    let mut results: Vec<GcRow> = Vec::new();
    for &g in &[1usize, 4] {
        for &clients in client_counts {
            let (pr_tput, pr_fpo) = run(g, clients, DurabilityMode::PerRecord);
            let (gc_tput, gc_fpo) = run(g, clients, DurabilityMode::Batched);
            t.row(vec![
                g.to_string(),
                clients.to_string(),
                fmt_tput(pr_tput),
                fmt_tput(gc_tput),
                format!("{:.2}x", gc_tput / pr_tput),
                format!("{pr_fpo:.2}"),
                format!("{gc_fpo:.2}"),
            ]);
            results.push(GcRow {
                groups: g,
                clients,
                per_record_tput: pr_tput,
                batched_tput: gc_tput,
                pr_fsyncs_per_op: pr_fpo,
                gc_fsyncs_per_op: gc_fpo,
            });
        }
    }
    if emit_json {
        match write_group_commit_json(&results) {
            Ok(p) => t.note(format!("json: {p}")),
            Err(e) => t.note(format!("json write failed: {e}")),
        }
    }
    t.note("group commit amortizes the WAL sync over a drain cycle's records — and over all G groups sharing the node's log, where per-record pays G independent fsync streams");
    t
}

/// Machine-readable companion to the `group-commit` table, written to
/// `BENCH_group_commit.json` in the working directory.
fn write_group_commit_json(results: &[GcRow]) -> std::io::Result<String> {
    let mut s = String::from(
        "{\n  \"experiment\": \"group-commit\",\n  \"workload\": \"closed-loop KV Puts, \
         n=3 cluster (sysnet topology), max_batch=4, 200 writes per client; durability \
         charged at 2 ms per fsync\",\n  \"modes\": {\"per_record\": \"one blocking fsync \
         per WAL record\", \"batched\": \"group commit: one flush barrier per drain cycle, \
         shared across a node's groups\"},\n  \"units\": {\"per_record_tput\": \"req/s\", \
         \"batched_tput\": \"req/s\"},\n  \"results\": [\n",
    );
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"groups\": {}, \"clients\": {}, \"per_record_tput\": {:.1}, \
             \"batched_tput\": {:.1}, \"speedup\": {:.3}, \"per_record_fsyncs_per_op\": \
             {:.3}, \"batched_fsyncs_per_op\": {:.3}}}{}\n",
            r.groups,
            r.clients,
            r.per_record_tput,
            r.batched_tput,
            r.batched_tput / r.per_record_tput,
            r.pr_fsyncs_per_op,
            r.gc_fsyncs_per_op,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    let path = "BENCH_group_commit.json";
    std::fs::write(path, s)?;
    Ok(path.to_owned())
}

/// Extension — epoch-batched confirm rounds: closed-loop X-Paxos read
/// throughput with the paper's per-read confirms vs confirm batching.
/// Runs on a message-bound CPU model ([`CpuModel::msg_bound`]) where
/// per-message overhead, not request execution, saturates the replicas —
/// the regime the batching targets (per-read confirms cost every replica
/// `O(reads)` messages; one round costs `O(n)` regardless of backlog).
/// Emits `BENCH_read_batching.json` next to the text table.
#[must_use]
pub fn read_batching(seed: u64) -> TableOut {
    read_batching_with(seed, &[8, 16, 32, 64, 128], 200, true)
}

fn read_batching_with(
    seed: u64,
    client_counts: &[usize],
    per_client: u64,
    emit_json: bool,
) -> TableOut {
    let mut t = TableOut::new(
        "read-batching",
        "X-Paxos read throughput: per-read confirms vs epoch batching (req/s, msg-bound CPU)",
        &[
            "clients",
            "per_read_tput",
            "batched_tput",
            "speedup",
            "confirms_per_read",
        ],
    );
    let run = |clients: usize, batching: bool| {
        let mut exp = Experiment::on(Topology::sysnet(3), seed);
        exp.cpu = CpuModel::msg_bound();
        exp.cfg.confirm_batching = batching;
        measure_throughput(exp, RequestKind::Read, clients, per_client)
    };
    let mut results: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &c in client_counts {
        let (base, _) = run(c, false);
        let (batched, m) = run(c, true);
        let cpr = m.confirm_msgs_per_read();
        t.row(vec![
            c.to_string(),
            fmt_tput(base),
            fmt_tput(batched),
            format!("{:.2}x", batched / base),
            format!("{cpr:.2}"),
        ]);
        results.push((c, base, batched, cpr));
    }
    if emit_json {
        match write_read_batching_json(&results) {
            Ok(p) => t.note(format!("json: {p}")),
            Err(e) => t.note(format!("json write failed: {e}")),
        }
    }
    t.note("extension: one ConfirmReq/ConfirmBatch round validates every open read, collapsing O(reads x n) confirm traffic to O(n) per round");
    t
}

/// Machine-readable companion to the `read-batching` table, written to
/// `BENCH_read_batching.json` in the working directory.
fn write_read_batching_json(results: &[(usize, f64, f64, f64)]) -> std::io::Result<String> {
    let mut s = String::from(
        "{\n  \"experiment\": \"read-batching\",\n  \"workload\": \"closed-loop X-Paxos \
         reads, n=3 cluster (sysnet topology), message-bound CPU model, 200 reads per \
         client\",\n  \"units\": {\"per_read_tput\": \"req/s\", \"batched_tput\": \
         \"req/s\"},\n  \"results\": [\n",
    );
    for (i, (c, base, batched, cpr)) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"clients\": {c}, \"per_read_tput\": {base:.1}, \"batched_tput\": \
             {batched:.1}, \"speedup\": {:.3}, \"confirms_per_read\": {cpr:.3}}}{}\n",
            batched / base,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    let path = "BENCH_read_batching.json";
    std::fs::write(path, s)?;
    Ok(path.to_owned())
}

/// E14 — reactor transport: live-TCP A/B of the thread-per-connection
/// substrate against the nonblocking epoll reactor, on a real 3-node
/// loopback cluster (not the simulator). Two phases:
///
/// * **closed-loop**: real `SyncClient` connections on both transports at
///   matched counts, then the headline run — 10,000+ virtual clients
///   multiplexed over three sockets ([`MuxSwarm`]), a client population
///   the threaded transport cannot host on one box (two threads per
///   connection);
/// * **open-loop**: a fixed offered-rate sweep past saturation on both
///   transports. The reactor's admission gate sheds the excess with
///   `Busy` (throughput plateaus, tail latency stays bounded); the
///   threaded path queues without bound and its tail grows with the
///   backlog.
///
/// Emits `BENCH_reactor.json`. Linux only (epoll); elsewhere the table
/// carries a note and no rows.
///
/// [`MuxSwarm`]: gridpaxos_transport::MuxSwarm
#[must_use]
#[cfg(target_os = "linux")]
pub fn reactor(seed: u64) -> TableOut {
    reactor_live::reactor_with(seed, &reactor_live::Scale::full(), true)
}

/// Non-Linux stub: the reactor needs epoll.
#[must_use]
#[cfg(not(target_os = "linux"))]
pub fn reactor(_seed: u64) -> TableOut {
    let mut t = TableOut::new(
        "reactor",
        "Reactor vs thread-per-connection transport (live TCP)",
        &[
            "case",
            "clients",
            "offered_rps",
            "tput_rps",
            "p50_ms",
            "p99_ms",
            "busy",
        ],
    );
    t.note("skipped: the reactor transport requires Linux (epoll)");
    t
}

#[cfg(target_os = "linux")]
mod reactor_live {
    use super::TableOut;
    use gridpaxos_core::config::Config;
    use gridpaxos_core::request::RequestKind;
    use gridpaxos_core::service::NoopApp;
    use gridpaxos_core::types::ProcessId;
    use gridpaxos_transport::{MuxSwarm, ReactorCluster, SyncClient, TcpCluster, TcpNode};
    use std::collections::HashMap;
    use std::net::SocketAddr;
    use std::time::{Duration, Instant};

    /// Workload sizes; the CI smoke test shrinks these, the full run
    /// (and `BENCH_reactor.json`) uses `full()`.
    pub(crate) struct Scale {
        /// Real-`SyncClient` counts to run on the threaded transport.
        pub thread_clients: Vec<usize>,
        /// Real-`SyncClient` count on the reactor (parity check).
        pub parity_clients: usize,
        /// Virtual clients multiplexed over three sockets (headline).
        pub mux_clients: usize,
        /// Closed-loop ops per client.
        pub ops_each: u64,
        /// Open-loop offered rates (req/s) to sweep on both transports.
        pub open_rates: Vec<u64>,
        /// Concurrent single-vclient swarms injecting the open-loop rate
        /// (each has its own client id, so replies route on both
        /// transports).
        pub open_swarms: usize,
        /// Injection window per open-loop rate.
        pub open_dur: Duration,
    }

    impl Scale {
        pub(crate) fn full() -> Scale {
            Scale {
                thread_clients: vec![128, 512],
                parity_clients: 512,
                mux_clients: 10_000,
                ops_each: 10,
                open_rates: vec![4_000, 16_000, 64_000],
                open_swarms: 32,
                open_dur: Duration::from_secs(2),
            }
        }

        #[cfg(test)]
        pub(crate) fn smoke() -> Scale {
            Scale {
                thread_clients: vec![32],
                parity_clients: 32,
                mux_clients: 300,
                ops_each: 10,
                open_rates: vec![2_000],
                open_swarms: 8,
                open_dur: Duration::from_millis(500),
            }
        }
    }

    /// One finished closed-loop run.
    pub(crate) struct ClosedRow {
        transport: &'static str,
        clients: usize,
        conns: usize,
        completed: u64,
        busy: u64,
        tput: f64,
        p50_ms: f64,
        p99_ms: f64,
    }

    /// One finished open-loop rate point.
    pub(crate) struct OpenRow {
        transport: &'static str,
        offered: u64,
        sent: u64,
        completed: u64,
        busy: u64,
        tput: f64,
        p99_ms: f64,
    }

    fn pct_ms(sorted_ns: &[u64], p: f64) -> f64 {
        if sorted_ns.is_empty() {
            return 0.0;
        }
        let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
        sorted_ns[idx] as f64 / 1e6
    }

    fn client_base(seed: u64) -> u64 {
        (std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1)
            ^ seed)
            | 1
    }

    /// Closed loop with `clients` real connections: each thread owns one
    /// `SyncClient` and keeps exactly one request outstanding.
    fn closed_real(
        transport: &'static str,
        mk: &(dyn Fn() -> SyncClient<TcpNode> + Sync),
        clients: usize,
        ops_each: u64,
    ) -> ClosedRow {
        let started = Instant::now();
        let per_thread: Vec<(u64, Vec<u64>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    s.spawn(move || {
                        let mut cl = mk();
                        let mut ok = 0u64;
                        let mut samples = Vec::with_capacity(ops_each as usize);
                        for i in 0..ops_each {
                            let t0 = Instant::now();
                            let body: Vec<u8> = vec![(i & 0xff) as u8];
                            if cl.call(RequestKind::Write, body.into()).is_some() {
                                ok += 1;
                                samples.push(t0.elapsed().as_nanos() as u64);
                            }
                        }
                        (ok, samples)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect()
        });
        let elapsed = started.elapsed();
        let completed: u64 = per_thread.iter().map(|(ok, _)| ok).sum();
        let mut samples: Vec<u64> = per_thread.into_iter().flat_map(|(_, s)| s).collect();
        samples.sort_unstable();
        ClosedRow {
            transport,
            clients,
            conns: clients * 3,
            completed,
            busy: 0,
            tput: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_ms: pct_ms(&samples, 0.50),
            p99_ms: pct_ms(&samples, 0.99),
        }
    }

    /// Closed loop with `mux_clients` virtual clients over one socket per
    /// replica — the population the threaded transport cannot host.
    fn closed_mux(
        addrs: &HashMap<ProcessId, SocketAddr>,
        mux_clients: usize,
        ops_each: u64,
        base: u64,
    ) -> ClosedRow {
        let mut swarm = MuxSwarm::connect(addrs, mux_clients, base).expect("mux connect");
        let rep = swarm.run_closed(ops_each, Duration::from_secs(120));
        swarm.shutdown();
        ClosedRow {
            transport: "reactor+mux",
            clients: mux_clients,
            conns: addrs.len(),
            completed: rep.completed,
            busy: rep.busy,
            tput: rep.throughput(),
            p50_ms: rep.rtt_p50_us / 1e3,
            p99_ms: rep.rtt_p99_us / 1e3,
        }
    }

    /// Open loop at `offered` req/s aggregate: `swarms` single-vclient
    /// swarms (distinct client ids, so replies route on both transports)
    /// inject fixed-interval, then drain for a grace period.
    fn open_point(
        transport: &'static str,
        addrs: &HashMap<ProcessId, SocketAddr>,
        swarms: usize,
        offered: u64,
        dur: Duration,
        base: u64,
    ) -> OpenRow {
        let grace = Duration::from_millis(500);
        let per_swarm_rate = (offered / swarms as u64).max(1);
        let reports: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..swarms)
                .map(|i| {
                    let b = base + i as u64;
                    s.spawn(move || {
                        let mut swarm = MuxSwarm::connect(addrs, 1, b).expect("mux connect");
                        let rep = swarm.run_open(per_swarm_rate, dur, grace);
                        swarm.shutdown();
                        rep
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("open-loop swarm panicked"))
                .collect()
        });
        let sent: u64 = reports.iter().map(|r| r.sent).sum();
        let completed: u64 = reports.iter().map(|r| r.completed).sum();
        let busy: u64 = reports.iter().map(|r| r.busy).sum();
        let p99 = reports.iter().map(|r| r.rtt_p99_us).fold(0.0, f64::max) / 1e3;
        OpenRow {
            transport,
            offered,
            sent,
            completed,
            busy,
            tput: completed as f64 / (dur + grace).as_secs_f64(),
            p99_ms: p99,
        }
    }

    pub(crate) fn reactor_with(seed: u64, scale: &Scale, emit_json: bool) -> TableOut {
        let mut t = TableOut::new(
            "reactor",
            "Reactor vs thread-per-connection transport (live 3-node TCP cluster, req/s)",
            &[
                "case",
                "clients",
                "conns",
                "offered_rps",
                "completed",
                "tput_rps",
                "p50_ms",
                "p99_ms",
                "busy",
            ],
        );
        let app = || Box::new(NoopApp::new()) as Box<dyn gridpaxos_core::service::App>;
        let mut closed: Vec<ClosedRow> = Vec::new();
        let mut open: Vec<OpenRow> = Vec::new();

        // ---- threaded transport ----
        {
            let cluster = TcpCluster::launch(Config::cluster(3), app).expect("threads cluster");
            for &c in &scale.thread_clients {
                closed.push(closed_real(
                    "threads",
                    &|| cluster.client(),
                    c,
                    scale.ops_each,
                ));
            }
            for &rate in &scale.open_rates {
                open.push(open_point(
                    "threads",
                    &cluster.addrs,
                    scale.open_swarms,
                    rate,
                    scale.open_dur,
                    client_base(seed),
                ));
            }
            cluster.shutdown();
        }

        // ---- reactor transport ----
        let shed_total;
        {
            let cluster = ReactorCluster::launch(Config::cluster(3), app).expect("reactor cluster");
            closed.push(closed_real(
                "reactor",
                &|| cluster.client(),
                scale.parity_clients,
                scale.ops_each,
            ));
            closed.push(closed_mux(
                &cluster.addrs,
                scale.mux_clients,
                scale.ops_each,
                client_base(seed),
            ));
            for &rate in &scale.open_rates {
                open.push(open_point(
                    "reactor",
                    &cluster.addrs,
                    scale.open_swarms,
                    rate,
                    scale.open_dur,
                    client_base(seed),
                ));
            }
            shed_total = (0..3)
                .map(|i| cluster.metrics(i).stats().busy_shed)
                .sum::<u64>();
            cluster.shutdown();
        }

        for r in &closed {
            t.row(vec![
                format!("closed/{}", r.transport),
                r.clients.to_string(),
                r.conns.to_string(),
                "-".into(),
                r.completed.to_string(),
                format!("{:.0}", r.tput),
                format!("{:.3}", r.p50_ms),
                format!("{:.3}", r.p99_ms),
                r.busy.to_string(),
            ]);
        }
        for r in &open {
            t.row(vec![
                format!("open/{}@{}", r.transport, r.offered),
                "-".into(),
                "-".into(),
                r.offered.to_string(),
                r.completed.to_string(),
                format!("{:.0}", r.tput),
                "-".into(),
                format!("{:.3}", r.p99_ms),
                r.busy.to_string(),
            ]);
        }
        t.note(format!(
            "reactor admission gate shed {shed_total} requests with Busy across all runs"
        ));
        if emit_json {
            match write_reactor_json(&closed, &open) {
                Ok(p) => t.note(format!("json: {p}")),
                Err(e) => t.note(format!("json write failed: {e}")),
            }
        }
        t.note(
            "closed loop: reactor hosts 10k+ multiplexed clients on one thread per node; \
             open loop: the admission gate sheds past saturation (plateau + bounded p99) \
             where thread-per-connection queues without bound",
        );
        t
    }

    fn write_reactor_json(closed: &[ClosedRow], open: &[OpenRow]) -> std::io::Result<String> {
        let mut s = String::from(
            "{\n  \"experiment\": \"reactor\",\n  \"workload\": \"live 3-node loopback TCP \
             cluster, NoopApp writes; closed-loop real SyncClients vs 10k+ virtual clients \
             multiplexed over 3 sockets; open-loop fixed-rate sweep via single-vclient \
             swarms\",\n  \"units\": {\"tput\": \"req/s\", \"p50\": \"ms\", \"p99\": \
             \"ms\"},\n  \"closed_loop\": [\n",
        );
        for (i, r) in closed.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"transport\": \"{}\", \"clients\": {}, \"conns\": {}, \"completed\": \
                 {}, \"busy\": {}, \"tput\": {:.1}, \"p50\": {:.4}, \"p99\": {:.4}}}{}\n",
                r.transport,
                r.clients,
                r.conns,
                r.completed,
                r.busy,
                r.tput,
                r.p50_ms,
                r.p99_ms,
                if i + 1 == closed.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n  \"open_loop\": [\n");
        for (i, r) in open.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"transport\": \"{}\", \"offered_rps\": {}, \"sent\": {}, \
                 \"completed\": {}, \"busy\": {}, \"delivered_rps\": {:.1}, \"p99\": \
                 {:.4}}}{}\n",
                r.transport,
                r.offered,
                r.sent,
                r.completed,
                r.busy,
                r.tput,
                r.p99_ms,
                if i + 1 == open.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        let path = "BENCH_reactor.json";
        std::fs::write(path, s)?;
        Ok(path.to_owned())
    }
}

// ---------------------------------------------------------------------------
// E15 — large state: flat decree cost + the parallel apply pipeline
// ---------------------------------------------------------------------------

/// Measured output of one `large_state` sweep point.
struct LsRun {
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    /// p99 over decrees issued while a checkpoint was active (for
    /// monolithic checkpoints: the decree that contained the inline
    /// snapshot). NaN when no decree overlapped a checkpoint.
    ckpt_p99_ms: f64,
    checkpoints: u64,
    chunks_per_ckpt: f64,
    state_mb: f64,
    /// Per-replica checkpoint counters, human-readable.
    per_replica: String,
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn pctl(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Pin glibc's trim/mmap thresholds for the duration of the process.
/// Every checkpoint cycle turns over a full state image; with default
/// thresholds glibc returns those pages to the OS on free and faults
/// them back in on the next cycle, charging steady-state decrees an
/// allocator tax proportional to state size — exactly the artifact this
/// experiment must not measure. Standard practice for allocation-heavy
/// benchmarks; no-op off glibc.
fn pin_allocator() {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            extern "C" {
                fn mallopt(param: core::ffi::c_int, value: core::ffi::c_int) -> core::ffi::c_int;
            }
            const M_TRIM_THRESHOLD: core::ffi::c_int = -1;
            const M_MMAP_THRESHOLD: core::ffi::c_int = -3;
            unsafe {
                mallopt(M_TRIM_THRESHOLD, core::ffi::c_int::MAX);
                mallopt(M_MMAP_THRESHOLD, core::ffi::c_int::MAX);
            }
        });
    }
}

/// Drive a failure-free 3-replica cluster (zero-latency in-memory
/// shuttle, real wall clock) through `decrees` closed-loop overwrites of
/// a KV store preloaded with `keys` values of `value_bytes` each, and
/// measure the wall time of every decree round. `chunk_bytes == 0`
/// selects legacy monolithic checkpoints; otherwise checkpoints stream
/// incrementally and the loop pumps one chunk per replica per cycle,
/// exactly like the transport drive loops. Measurement starts only
/// after every replica has completed one warm-up checkpoint, so the
/// one-time heap-growth transient of the first snapshot is not charged
/// to whichever sweep point happens to run first.
fn large_state_run(
    seed: u64,
    keys: usize,
    value_bytes: usize,
    decrees: usize,
    checkpoint_every: u64,
    chunk_bytes: usize,
    floor: std::time::Duration,
) -> LsRun {
    pin_allocator();
    use gridpaxos_core::action::Action;
    use gridpaxos_core::client::ClientCore;
    use gridpaxos_core::config::Config;
    use gridpaxos_core::msg::Msg;
    use gridpaxos_core::replica::Replica;
    use gridpaxos_core::request::{Request, RequestId};
    use gridpaxos_core::service::{App, ExecCtx};
    use gridpaxos_core::storage::MemStorage;
    use gridpaxos_core::types::{Addr, ClientId, Seq};
    use gridpaxos_services::{KvOp, KvStore};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::VecDeque;
    use std::time::Instant;

    fn enqueue(q: &mut VecDeque<(Addr, Addr, Msg)>, n: usize, from: Addr, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => q.push_back((from, to, msg)),
                Action::ToAllReplicas { msg } => {
                    for i in 0..n {
                        let to = Addr::Replica(ProcessId(i as u32));
                        if to != from {
                            q.push_back((from, to, msg.clone()));
                        }
                    }
                }
                Action::SetTimer { .. } | Action::CancelTimer { .. } => {}
            }
        }
    }

    fn run_until_quiet(
        q: &mut VecDeque<(Addr, Addr, Msg)>,
        replicas: &mut [Replica],
        client_inbox: &mut Vec<Msg>,
        now: Time,
    ) {
        let mut hops = 0u64;
        while let Some((from, to, msg)) = q.pop_front() {
            hops += 1;
            assert!(hops < 10_000_000, "message storm");
            match to {
                Addr::Replica(p) => {
                    let actions = replicas[p.0 as usize].on_message(from, msg, now);
                    enqueue(q, replicas.len(), to, actions);
                }
                Addr::Client(_) => client_inbox.push(msg),
            }
        }
    }

    // Preload one KvStore and clone it per replica: identical resident
    // state on every replica without paying `keys` consensus rounds. The
    // preloaded prefix sits below the protocol's horizon (chosen prefix
    // 0), which is fine — the experiment measures decree cost against
    // resident state size, not recovery.
    let value: String = "v".repeat(value_bytes);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut base = KvStore::new();
    for i in 0..keys {
        let req = Request::new(
            RequestId::new(ClientId(7), Seq(i as u64 + 1)),
            RequestKind::Write,
            KvOp::Put(format!("k{i:07}"), value.clone()).encode(),
        );
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        let _ = base.execute(&req, &mut ctx);
    }
    let state_mb = base.snapshot().len() as f64 / (1024.0 * 1024.0);

    let mut cfg = Config::cluster(3);
    cfg.bootstrap_leader = Some(ProcessId(0));
    cfg.batch_window = Dur::ZERO; // the shuttle never fires timers
    cfg.checkpoint_every = checkpoint_every;
    cfg.checkpoint_chunk_bytes = chunk_bytes;

    let t0 = Instant::now();

    let mut replicas: Vec<Replica> = (0..3u32)
        .map(|i| {
            Replica::new(
                ProcessId(i),
                cfg.clone(),
                Box::new(base.clone()),
                Box::new(MemStorage::new()),
                seed ^ 0x515,
                Time::ZERO,
            )
        })
        .collect();
    let mut queue: VecDeque<(Addr, Addr, Msg)> = VecDeque::new();
    let mut client_inbox: Vec<Msg> = Vec::new();
    for (i, r) in replicas.iter_mut().enumerate() {
        let actions = r.on_start(Time::ZERO);
        enqueue(&mut queue, 3, Addr::Replica(ProcessId(i as u32)), actions);
    }
    run_until_quiet(&mut queue, &mut replicas, &mut client_inbox, Time::ZERO);

    // One closed-loop write driven to completion, then one
    // incremental-checkpoint pump per replica, exactly like the reactor
    // and node drive loops. The shuttle completes a three-replica round
    // in single-digit microseconds — no network, no fsync — so `floor`
    // adds a calibrated busy-wait modelling the unavoidable per-decree
    // cost of the paper's target environment (LAN/grid RTT plus
    // group-commit fsync). It is identical across state sizes and
    // checkpoint modes, so it cannot manufacture a trend. Returns
    // whether any replica still has a checkpoint in flight after the
    // pump.
    fn one_decree(
        client: &mut ClientCore,
        queue: &mut VecDeque<(Addr, Addr, Msg)>,
        client_inbox: &mut Vec<Msg>,
        replicas: &mut [Replica],
        t0: &Instant,
        op: KvOp,
        floor: std::time::Duration,
    ) -> bool {
        let now = |t0: &Instant| Time(t0.elapsed().as_nanos() as u64);
        let n = replicas.len();
        let t_floor = Instant::now();
        let actions = client.submit_op(RequestKind::Write, op.encode(), now(t0));
        enqueue(queue, n, Addr::Client(client.id()), actions);
        run_until_quiet(queue, replicas, client_inbox, now(t0));
        let mut completed = false;
        for _ in 0..4 {
            for msg in std::mem::take(client_inbox) {
                let (done, acts) = client.on_message(msg, now(t0));
                enqueue(queue, n, Addr::Client(client.id()), acts);
                completed |= done.is_some();
            }
            run_until_quiet(queue, replicas, client_inbox, now(t0));
            if completed {
                break;
            }
        }
        assert!(completed, "write must complete in a failure-free shuttle");
        let mut in_flight = false;
        for r in replicas.iter_mut() {
            in_flight |= r.pump_checkpoint(1);
        }
        let worked = t_floor.elapsed();
        if worked < floor {
            std::thread::sleep(floor - worked);
        }
        in_flight
    }

    let mut client = ClientCore::new(ClientId(1), 3, Dur::from_millis(60_000));

    // Warm-up: run unmeasured decrees until every replica has completed
    // two checkpoints (bounded in case checkpointing stalls). The first
    // checkpoint grows the heap to a full image; at the peak of the
    // second, the committed image and the staging chunks coexist — only
    // after that does the allocator reuse pages instead of faulting in
    // fresh ones. Measuring through that start-up transient would
    // charge one-time page faults to whichever sweep point runs first.
    if checkpoint_every > 0 {
        let est_chunks = if chunk_bytes > 0 {
            (state_mb * 1024.0 * 1024.0 / chunk_bytes as f64).ceil() as usize + 1
        } else {
            1
        };
        let cap = 4 * (checkpoint_every as usize + est_chunks) + 512;
        let mut warm = 0usize;
        while replicas.iter().any(|r| r.stats.checkpoints < 2) && warm < cap {
            let op = KvOp::Put(format!("k{:07}", rng.gen_range(0..keys)), value.clone());
            one_decree(
                &mut client,
                &mut queue,
                &mut client_inbox,
                &mut replicas,
                &t0,
                op,
                std::time::Duration::ZERO,
            );
            warm += 1;
        }
    }
    let base_stats: Vec<(u64, u64, u64)> = replicas
        .iter()
        .map(|r| {
            (
                r.stats.checkpoints,
                r.stats.checkpoint_bytes,
                r.stats.checkpoint_chunks,
            )
        })
        .collect();

    let mut lat: Vec<f64> = Vec::with_capacity(decrees);
    let mut ckpt_lat: Vec<f64> = Vec::new();
    let mut prev_cks: Vec<u64> = replicas.iter().map(|r| r.stats.checkpoints).collect();
    for _ in 0..decrees {
        let op = KvOp::Put(format!("k{:07}", rng.gen_range(0..keys)), value.clone());
        let t_op = Instant::now();
        let in_flight = one_decree(
            &mut client,
            &mut queue,
            &mut client_inbox,
            &mut replicas,
            &t0,
            op,
            floor,
        );
        let dt_ms = t_op.elapsed().as_secs_f64() * 1e3;
        lat.push(dt_ms);
        let mut ck_done = false;
        for (i, r) in replicas.iter().enumerate() {
            if r.stats.checkpoints > prev_cks[i] {
                prev_cks[i] = r.stats.checkpoints;
                ck_done = true;
            }
        }
        if in_flight || ck_done {
            ckpt_lat.push(dt_ms);
        }
    }

    lat.sort_by(f64::total_cmp);
    ckpt_lat.sort_by(f64::total_cmp);
    let per_replica = replicas
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let (c0, b0, k0) = base_stats[i];
            format!(
                "r{i}: {} ckpts, {:.1} MB, {} chunks, last {:.2} ms",
                r.stats.checkpoints - c0,
                (r.stats.checkpoint_bytes - b0) as f64 / (1024.0 * 1024.0),
                r.stats.checkpoint_chunks - k0,
                r.stats.last_checkpoint_dur.0 as f64 / 1e6,
            )
        })
        .collect::<Vec<_>>()
        .join("; ");
    let r0 = &replicas[0];
    let cks = r0.stats.checkpoints - base_stats[0].0;
    let chunks = r0.stats.checkpoint_chunks - base_stats[0].2;
    LsRun {
        p50_ms: pctl(&lat, 0.50),
        p99_ms: pctl(&lat, 0.99),
        max_ms: lat.last().copied().unwrap_or(f64::NAN),
        ckpt_p99_ms: pctl(&ckpt_lat, 0.99),
        checkpoints: cks,
        chunks_per_ckpt: if cks == 0 {
            0.0
        } else {
            chunks as f64 / cks as f64
        },
        state_mb,
        per_replica,
    }
}

/// Apply-cost model for the pipeline measurement: each apply performs a
/// fixed-latency external-resource operation. The paper's services front
/// grid resources (file staging, job queues) whose apply cost is waiting
/// on that resource, not CPU — which is exactly what `ApplyPool` workers
/// can overlap across groups.
struct SlowApp {
    acc: u64,
    delay: std::time::Duration,
}

impl gridpaxos_core::service::App for SlowApp {
    fn execute(
        &mut self,
        _req: &gridpaxos_core::request::Request,
        _ctx: &mut gridpaxos_core::service::ExecCtx<'_>,
    ) -> (bytes::Bytes, gridpaxos_core::command::StateUpdate) {
        (
            bytes::Bytes::new(),
            gridpaxos_core::command::StateUpdate::None,
        )
    }

    fn apply(
        &mut self,
        _req: &gridpaxos_core::request::Request,
        update: &gridpaxos_core::command::StateUpdate,
    ) {
        use gridpaxos_core::command::StateUpdate;
        std::thread::sleep(self.delay);
        match update {
            StateUpdate::None => {}
            StateUpdate::Full(b) | StateUpdate::Delta(b) | StateUpdate::Reproduce(b) => {
                for &x in b.iter() {
                    self.acc = self.acc.wrapping_mul(31).wrapping_add(u64::from(x));
                }
            }
        }
    }

    fn snapshot(&self) -> bytes::Bytes {
        bytes::Bytes::copy_from_slice(&self.acc.to_le_bytes())
    }

    fn restore(&mut self, snap: &[u8]) {
        self.acc = snap
            .get(..8)
            .and_then(|b| b.try_into().ok())
            .map_or(0, u64::from_le_bytes);
    }
}

/// Wall time (ms) to apply `per_group` decrees to each of `groups`
/// groups: serial baseline vs through an [`ApplyPool`] with `workers`
/// threads (fenced via `snapshot()` so every queued apply has landed).
///
/// [`ApplyPool`]: gridpaxos_core::apply::ApplyPool
fn apply_throughput_ms(
    groups: usize,
    per_group: usize,
    delay: std::time::Duration,
    workers: usize,
) -> (f64, f64) {
    use gridpaxos_core::apply::ApplyPool;
    use gridpaxos_core::command::StateUpdate;
    use gridpaxos_core::request::{Request, RequestId};
    use gridpaxos_core::service::App;
    use gridpaxos_core::types::{ClientId, Seq};
    use std::time::Instant;

    let req = Request::new(
        RequestId::new(ClientId(1), Seq(1)),
        RequestKind::Write,
        bytes::Bytes::new(),
    );
    let update = StateUpdate::Full(bytes::Bytes::from_static(b"e15"));
    let mk = |d| Box::new(SlowApp { acc: 0, delay: d }) as Box<dyn App>;

    let mut serial: Vec<Box<dyn App>> = (0..groups).map(|_| mk(delay)).collect();
    let t = Instant::now();
    for _ in 0..per_group {
        for a in &mut serial {
            a.apply(&req, &update);
        }
    }
    let serial_ms = t.elapsed().as_secs_f64() * 1e3;

    let pool = ApplyPool::new(workers);
    let mut pooled: Vec<Box<dyn App>> = (0..groups).map(|_| pool.wrap(mk(delay))).collect();
    let t = Instant::now();
    for _ in 0..per_group {
        for a in &mut pooled {
            a.apply(&req, &update);
        }
    }
    for a in &mut pooled {
        let _ = a.snapshot(); // conflict fence: wait for the queue to drain
    }
    let pooled_ms = t.elapsed().as_secs_f64() * 1e3;
    (serial_ms, pooled_ms)
}

/// E15 — extension: decree cost vs service-state size. Sweeps resident
/// KV state over ~100x while measuring per-decree wall time on a
/// failure-free 3-replica cluster, with incremental (chunked)
/// checkpoints against the legacy stop-the-world snapshot, plus the
/// parallel apply pipeline's throughput at G=4. Incremental checkpoints
/// must keep decree p99 flat in state size; monolithic checkpoints show
/// the O(state) pause the tentpole removes. Emits
/// `BENCH_large_state.json`.
#[must_use]
pub fn large_state(seed: u64) -> TableOut {
    large_state_with(
        seed,
        &[4_000, 40_000, 400_000],
        1024,
        4_000,
        64,
        16 * 1024,
        std::time::Duration::from_micros(500),
        true,
    )
}

#[allow(clippy::too_many_arguments)]
fn large_state_with(
    seed: u64,
    sizes: &[usize],
    value_bytes: usize,
    decrees: usize,
    checkpoint_every: u64,
    chunk_bytes: usize,
    floor: std::time::Duration,
    emit_json: bool,
) -> TableOut {
    let mut t = TableOut::new(
        "large-state",
        "Decree cost vs state size: incremental checkpoints + apply pipeline (ms)",
        &[
            "keys/mode",
            "p50_ms",
            "p99_ms",
            "max_ms",
            "ckpt_p99_ms",
            "ckpts",
            "chunks/ckpt",
            "state_MB",
        ],
    );
    let mut rows: Vec<(usize, &str, LsRun)> = Vec::new();
    for &keys in sizes {
        for (mode, cb) in [("chunked", chunk_bytes), ("mono", 0)] {
            // Chunked rows must span at least two full checkpoint cycles
            // (at one pump per drive cycle, a cycle covers roughly
            // chunks/2 decrees), so the measured window always contains
            // completed checkpoints no matter the state size.
            let n = match (keys * (value_bytes + 32)).checked_div(cb) {
                Some(c) => {
                    let est_chunks = c + 1;
                    decrees.max(est_chunks + est_chunks / 4)
                }
                None => decrees,
            };
            // Median-of-3 repetitions (by decree p99) for the chunked
            // rows the flatness criterion reads: a single-vCPU host has
            // transient multi-ms scheduling phases that would otherwise
            // decide the tail of whichever row they land on.
            let reps: u64 = if cb > 0 { 3 } else { 1 };
            let mut runs: Vec<LsRun> = (0..reps)
                .map(|rep| {
                    large_state_run(
                        seed + rep,
                        keys,
                        value_bytes,
                        n,
                        checkpoint_every,
                        cb,
                        floor,
                    )
                })
                .collect();
            runs.sort_by(|a, b| a.p99_ms.total_cmp(&b.p99_ms));
            rows.push((keys, mode, runs.swap_remove(reps as usize / 2)));
        }
    }
    for (keys, mode, r) in &rows {
        t.row(vec![
            format!("{keys}/{mode}"),
            fmt_ms(r.p50_ms),
            fmt_ms(r.p99_ms),
            fmt_ms(r.max_ms),
            fmt_ms(r.ckpt_p99_ms),
            r.checkpoints.to_string(),
            format!("{:.1}", r.chunks_per_ckpt),
            format!("{:.1}", r.state_mb),
        ]);
    }
    // Flatness: max/min of the chunked rows' p99s, decree-wide and
    // during active checkpointing. The acceptance bar is < 1.3x across a
    // >= 100x state sweep.
    let spread = |f: &dyn Fn(&LsRun) -> f64| -> f64 {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|(_, m, _)| *m == "chunked")
            .map(|(_, _, r)| f(r))
            .filter(|v| v.is_finite())
            .collect();
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for v in vals {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo.is_finite() && lo > 0.0 {
            hi / lo
        } else {
            f64::NAN
        }
    };
    let decree_spread = spread(&|r: &LsRun| r.p99_ms);
    let ckpt_spread = spread(&|r: &LsRun| r.ckpt_p99_ms);
    let span = sizes.iter().max().copied().unwrap_or(1) as f64
        / sizes.iter().min().copied().unwrap_or(1).max(1) as f64;
    t.note(format!(
        "chunked p99 spread across the {span:.0}x state sweep: decrees {decree_spread:.3}x, \
         decrees-during-checkpoint {ckpt_spread:.3}x (bar: < 1.3x)"
    ));
    t.note(format!(
        "every decree round carries a {} us floor (sleep) modelling LAN/grid RTT plus \
         group-commit fsync — the in-memory shuttle is otherwise ~6 us/round; checkpoint \
         chunks are pumped in the round's idle gap exactly as the transport drive loops do, \
         so only streaming work that exceeds the floor can surface as added latency. The \
         floor is identical across sizes and modes. Chunked rows are the median of 3 \
         repetitions by decree p99; chunked decree counts scale to cover >= 2 full \
         checkpoint cycles per row",
        floor.as_micros()
    ));
    for (keys, mode, r) in &rows {
        t.note(format!("{keys}/{mode} checkpoints — {}", r.per_replica));
    }
    let delay = std::time::Duration::from_micros(300);
    let (serial_ms, pooled_ms) = apply_throughput_ms(4, 64, delay, 4);
    let speedup = serial_ms / pooled_ms;
    t.note(format!(
        "apply pipeline G=4 workers=4: serial {serial_ms:.1} ms vs pooled {pooled_ms:.1} ms \
         = {speedup:.2}x; each apply models a 300 us external-resource wait (grid services \
         wait on staged files/job queues, so apply cost is latency, not CPU — and this host \
         has one CPU, so the win shown is overlapped waiting, not CPU parallelism)"
    ));
    if emit_json {
        match write_large_state_json(
            &rows,
            value_bytes,
            checkpoint_every,
            chunk_bytes,
            floor,
            decree_spread,
            ckpt_spread,
            serial_ms,
            pooled_ms,
        ) {
            Ok(p) => t.note(format!("json: {p}")),
            Err(e) => t.note(format!("json write failed: {e}")),
        }
    }
    t.note("tentpole: chunked checkpoints + apply pipeline make decree cost flat in state size");
    t
}

/// Machine-readable companion to the `large-state` table, written to
/// `BENCH_large_state.json` in the working directory.
#[allow(clippy::too_many_arguments)]
fn write_large_state_json(
    rows: &[(usize, &str, LsRun)],
    value_bytes: usize,
    checkpoint_every: u64,
    chunk_bytes: usize,
    floor: std::time::Duration,
    decree_spread: f64,
    ckpt_spread: f64,
    serial_ms: f64,
    pooled_ms: f64,
) -> std::io::Result<String> {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.4}")
        } else {
            "null".to_owned()
        }
    }
    let mut s = format!(
        "{{\n  \"experiment\": \"large-state\",\n  \"workload\": \"closed-loop {value_bytes}B \
         overwrites on an n=3 cluster, KV store preloaded to each size; checkpoint \
         every {checkpoint_every} decrees, {} KiB chunks vs monolithic; {} us simulated \
         RTT+fsync floor per decree round, identical across sizes and modes; measured \
         after a two-checkpoint warm-up; chunked rows are median-of-3 repetitions by \
         decree p99\",\n  \"decree_floor_us\": {},\n  \"units\": \"ms\",\n  \"results\": [\n",
        chunk_bytes / 1024,
        floor.as_micros(),
        floor.as_micros(),
    );
    for (i, (keys, mode, r)) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"keys\": {keys}, \"mode\": \"{mode}\", \"p50_ms\": {}, \"p99_ms\": {}, \
             \"max_ms\": {}, \"ckpt_p99_ms\": {}, \"checkpoints\": {}, \
             \"chunks_per_ckpt\": {:.1}, \"state_mb\": {:.2}}}{}\n",
            num(r.p50_ms),
            num(r.p99_ms),
            num(r.max_ms),
            num(r.ckpt_p99_ms),
            r.checkpoints,
            r.chunks_per_ckpt,
            r.state_mb,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"chunked_decree_p99_spread\": {},\n  \"chunked_ckpt_p99_spread\": {},\n  \
         \"apply\": {{\"groups\": 4, \"workers\": 4, \"serial_ms\": {}, \"pooled_ms\": {}, \
         \"speedup\": {}, \"model\": \"300us external-resource wait per apply; single-CPU \
         host, speedup is overlapped waiting across groups\"}}\n}}\n",
        num(decree_spread),
        num(ckpt_spread),
        num(serial_ms),
        num(pooled_ms),
        num(serial_ms / pooled_ms),
    ));
    let path = "BENCH_large_state.json";
    std::fs::write(path, s)?;
    Ok(path.to_owned())
}

/// Every experiment, in paper order.
#[must_use]
pub fn all(seed: u64) -> Vec<TableOut> {
    vec![
        rrt_sysnet(seed, 2000),
        fig5(seed),
        fig6(seed),
        fig7(seed),
        fig8(seed),
        table1(seed, 500),
        fig9(seed, 3),
        fig9(seed, 5),
        leader_switch(seed),
        scale_t(seed),
        ablation(seed),
        state_size(seed),
        batch_ablation(seed),
        sharding(seed),
        group_commit(seed),
        read_batching(seed),
        reactor(seed),
        large_state(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_scales_write_throughput() {
        // Short version of the headline run (the full one generates
        // BENCH_sharding.json): with enough clients to keep every group's
        // pipeline full, more groups must yield materially more
        // closed-loop write throughput.
        let t = sharding_with(11, 64, 25, false);
        let tput = |g: &str| -> f64 { t.cell(g, "write_tput").unwrap().parse().unwrap() };
        let (g1, g4) = (tput("1"), tput("4"));
        assert!(g4 > g1 * 2.0, "G=4 {g4:.0}/s vs G=1 {g1:.0}/s");
    }

    #[test]
    fn group_commit_amortizes_durable_writes() {
        // Short version of the headline run (the full one generates
        // BENCH_group_commit.json): at 64 closed-loop writers on a G=4
        // shard plane, batching fsyncs across a drain cycle — and across
        // the groups sharing each node's WAL — must at least double
        // durable write throughput while charging less than one sync per
        // completed op. Per-record pays a sync per WAL record, so its
        // ratio sits well above 1.0.
        let t = group_commit_with(31, &[64], 25, false);
        let cell = |col: &str| -> f64 { t.cell("4", col).unwrap().parse().unwrap() };
        let (pr, gc) = (cell("per_record_tput"), cell("batched_tput"));
        assert!(gc >= pr * 2.0, "batched {gc:.0}/s vs per-record {pr:.0}/s");
        let gc_fpo: f64 = t.cell("4", "gc_fsyncs_per_op").unwrap().parse().unwrap();
        let pr_fpo: f64 = t.cell("4", "pr_fsyncs_per_op").unwrap().parse().unwrap();
        assert!(gc_fpo < 1.0, "group-commit fsyncs per op {gc_fpo:.2}");
        assert!(pr_fpo > 1.0, "per-record fsyncs per op {pr_fpo:.2}");
    }

    #[test]
    fn read_batching_doubles_saturated_read_throughput() {
        // Short version of the headline run (the full one generates
        // BENCH_read_batching.json): at 64 closed-loop readers the
        // message-bound replicas drown in per-read confirms, and epoch
        // batching must at least double throughput while spending less
        // than one confirm-path message per read.
        let t = read_batching_with(7, &[64], 40, false);
        let cell = |col: &str| -> f64 { t.cell("64", col).unwrap().parse().unwrap() };
        let (base, batched) = (cell("per_read_tput"), cell("batched_tput"));
        assert!(
            batched >= base * 2.0,
            "batched {batched:.0}/s vs per-read {base:.0}/s"
        );
        let cpr: f64 = t.cell("64", "confirms_per_read").unwrap().parse().unwrap();
        assert!(cpr < 1.0, "confirm msgs per read {cpr:.2}");
    }

    /// CI smoke of E15 (the full run generates BENCH_large_state.json
    /// over a 100x sweep): with incremental checkpoints the tail decree
    /// cost at the larger state must undercut the monolithic
    /// stop-the-world snapshot's, and checkpoints must actually stream
    /// in multiple chunks.
    #[test]
    fn large_state_chunked_checkpoints_beat_monolithic_tail() {
        let t = large_state_with(
            17,
            &[200, 2_000],
            1024,
            400,
            16,
            8 * 1024,
            std::time::Duration::ZERO,
            false,
        );
        let cell = |row: &str, col: &str| -> f64 {
            t.cell(row, col)
                .unwrap_or_else(|| panic!("row {row} col {col} missing"))
                .parse()
                .unwrap()
        };
        assert!(
            cell("2000/chunked", "ckpts") >= 1.0,
            "no checkpoint completed"
        );
        assert!(
            cell("2000/chunked", "chunks/ckpt") > 1.0,
            "checkpoints did not stream in chunks"
        );
        let (chunked, mono) = (cell("2000/chunked", "p99_ms"), cell("2000/mono", "p99_ms"));
        assert!(
            chunked < mono,
            "chunked p99 {chunked:.3} ms must undercut monolithic p99 {mono:.3} ms"
        );
    }

    /// The apply pipeline must at least double throughput for
    /// latency-bound applies at G=4: four groups' waits overlap on the
    /// worker pool while the serial baseline pays them back to back.
    #[test]
    fn apply_pool_overlaps_latency_bound_applies() {
        let (serial_ms, pooled_ms) =
            apply_throughput_ms(4, 8, std::time::Duration::from_millis(2), 4);
        assert!(
            serial_ms >= pooled_ms * 2.0,
            "serial {serial_ms:.1} ms vs pooled {pooled_ms:.1} ms"
        );
    }

    /// CI smoke for the live-TCP reactor A/B (the full run generates
    /// BENCH_reactor.json with 10k mux clients): a few hundred virtual
    /// clients multiplexed over three sockets must all complete against
    /// the reactor, and the same closed-loop workload must complete on
    /// both transports with real connections.
    #[test]
    #[cfg(target_os = "linux")]
    fn reactor_smoke_serves_mux_swarm_on_both_transports() {
        let scale = reactor_live::Scale::smoke();
        let expect_mux = scale.mux_clients as u64 * scale.ops_each;
        let expect_real = scale.thread_clients[0] as u64 * scale.ops_each;
        let t = reactor_live::reactor_with(5, &scale, false);
        let cell = |row: &str, col: &str| -> u64 {
            t.cell(row, col)
                .unwrap_or_else(|| panic!("row {row} col {col} missing"))
                .parse()
                .unwrap()
        };
        // Headline: every multiplexed op completed over 3 sockets.
        assert_eq!(cell("closed/reactor+mux", "completed"), expect_mux);
        // Matched real-connection workloads complete on both transports.
        assert_eq!(cell("closed/threads", "completed"), expect_real);
        assert_eq!(
            cell("closed/reactor", "completed"),
            scale.parity_clients as u64 * scale.ops_each
        );
    }
}
