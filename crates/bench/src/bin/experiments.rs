//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments all                 # everything, paper order
//! experiments rrt-sysnet fig5 …   # a selection
//! experiments --seed 7 table1     # override the seed
//! ```

use gridpaxos_bench::TableOut;

fn run_one(name: &str, seed: u64) -> Option<Vec<TableOut>> {
    let t = match name {
        "all" => return Some(gridpaxos_bench::all(seed)),
        "rrt-sysnet" => gridpaxos_bench::rrt_sysnet(seed, 2000),
        "fig5" => gridpaxos_bench::fig5(seed),
        "fig6" => gridpaxos_bench::fig6(seed),
        "fig7" => gridpaxos_bench::fig7(seed),
        "fig8" => gridpaxos_bench::fig8(seed),
        "table1" => gridpaxos_bench::table1(seed, 500),
        "fig9" => {
            return Some(vec![
                gridpaxos_bench::fig9(seed, 3),
                gridpaxos_bench::fig9(seed, 5),
            ])
        }
        "leader-switch" => gridpaxos_bench::leader_switch(seed),
        "scale-t" => gridpaxos_bench::scale_t(seed),
        "ablation" => gridpaxos_bench::ablation(seed),
        "state-size" => gridpaxos_bench::state_size(seed),
        "batch-ablation" => gridpaxos_bench::batch_ablation(seed),
        "sharding" => gridpaxos_bench::sharding(seed),
        "group-commit" => gridpaxos_bench::group_commit(seed),
        "read-batching" => gridpaxos_bench::read_batching(seed),
        "reactor" => gridpaxos_bench::reactor(seed),
        "large-state" => gridpaxos_bench::large_state(seed),
        _ => return None,
    };
    Some(vec![t])
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        if i + 1 < args.len() {
            seed = args[i + 1].parse().unwrap_or(42);
            args.drain(i..=i + 1);
        }
    }
    if args.is_empty() {
        args.push("all".to_owned());
    }
    let mut any_bad = false;
    for name in &args {
        match run_one(name, seed) {
            Some(tables) => {
                for t in tables {
                    t.print();
                    match t.write_csv() {
                        Ok(p) => println!("  csv: {}", p.display()),
                        Err(e) => eprintln!("  csv write failed: {e}"),
                    }
                }
            }
            None => {
                eprintln!(
                    "unknown experiment '{name}'; known: all rrt-sysnet fig5 fig6 fig7 fig8 \
                     table1 fig9 leader-switch scale-t ablation state-size batch-ablation \
                     sharding group-commit read-batching reactor large-state"
                );
                any_bad = true;
            }
        }
    }
    if any_bad {
        std::process::exit(2);
    }
}
