//! The service the model checker replicates: a bit-set register.
//!
//! Every write (and every transaction operation) in a checker scenario is
//! assigned a distinct bit. Committed service state is the OR of all
//! committed bits, so any observation of the state — a read reply, a
//! replica snapshot — reveals exactly *which* operations it reflects.
//! That is what lets the invariant layer state linearizability and
//! transaction atomicity as set inclusions over `u64` masks.
//!
//! T-Paxos staging (`durable = false`) is held in a volatile side table
//! that is excluded from [`App::snapshot`] and cleared by [`App::restore`],
//! exactly as the [`App`] contract demands (§3.5–3.6): staged effects live
//! only on the leader and die with its leadership.

use bytes::Bytes;
use gridpaxos_core::command::StateUpdate;
use gridpaxos_core::request::{AbortReason, Request, RequestKind};
use gridpaxos_core::service::{App, ExecCtx};
use gridpaxos_core::types::TxnId;
use std::collections::HashMap;

/// Decode a bit-set mask from an 8-byte little-endian payload.
#[must_use]
pub fn decode_mask(buf: &[u8]) -> Option<u64> {
    buf.try_into().ok().map(u64::from_le_bytes)
}

/// Bit-set register service (see module docs).
#[derive(Debug, Default, Clone)]
pub struct CheckerApp {
    /// Committed state: OR of every committed operation bit.
    committed: u64,
    /// T-Paxos staging: per-transaction bits, volatile by contract.
    staged: HashMap<TxnId, u64>,
}

impl CheckerApp {
    /// Fresh service with no bits set.
    #[must_use]
    pub fn new() -> CheckerApp {
        CheckerApp::default()
    }

    fn encode(&self) -> Bytes {
        Bytes::copy_from_slice(&self.committed.to_le_bytes())
    }

    fn op_bit(req: &Request) -> u64 {
        req.op.first().map_or(0, |b| 1u64 << (b % 64))
    }
}

impl App for CheckerApp {
    fn execute(&mut self, req: &Request, _ctx: &mut ExecCtx<'_>) -> (Bytes, StateUpdate) {
        match req.kind {
            RequestKind::Read => (self.encode(), StateUpdate::None),
            _ => {
                self.committed |= Self::op_bit(req);
                (self.encode(), StateUpdate::Full(self.encode()))
            }
        }
    }

    fn apply(&mut self, _req: &Request, update: &StateUpdate) {
        match update {
            StateUpdate::None => {}
            StateUpdate::Full(b) | StateUpdate::Delta(b) | StateUpdate::Reproduce(b) => {
                if let Some(m) = decode_mask(b) {
                    self.committed = m;
                }
            }
        }
    }

    fn snapshot(&self) -> Bytes {
        // Staged bits deliberately absent: T-Paxos staging is not
        // replicated state.
        self.encode()
    }

    fn restore(&mut self, snap: &[u8]) {
        self.committed = decode_mask(snap).unwrap_or(0);
        // The contract: restore clears all volatile staging.
        self.staged.clear();
    }

    fn txn_begin(&mut self, txn: TxnId) {
        self.staged.entry(txn).or_insert(0);
    }

    fn txn_execute(
        &mut self,
        txn: TxnId,
        req: &Request,
        durable: bool,
        _ctx: &mut ExecCtx<'_>,
    ) -> Result<(Bytes, StateUpdate), AbortReason> {
        let bit = Self::op_bit(req);
        *self.staged.entry(txn).or_insert(0) |= bit;
        if durable {
            // Per-op coordination would need the staging replicated; the
            // checker only exercises the T-Paxos path.
            return Err(AbortReason::Unsupported);
        }
        Ok((
            Bytes::copy_from_slice(&bit.to_le_bytes()),
            StateUpdate::None,
        ))
    }

    fn txn_commit(&mut self, txn: TxnId) -> StateUpdate {
        let bits = self.staged.remove(&txn).unwrap_or(0);
        self.committed |= bits;
        StateUpdate::Full(self.encode())
    }

    fn txn_abort(&mut self, txn: TxnId) {
        self.staged.remove(&txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::request::RequestId;
    use gridpaxos_core::types::{ClientId, Seq, Time};
    fn rng() -> rand::rngs::SmallRng {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(1)
    }

    fn wreq(seq: u64, bit: u8) -> Request {
        Request::new(
            RequestId::new(ClientId(1), Seq(seq)),
            RequestKind::Write,
            Bytes::copy_from_slice(&[bit]),
        )
    }

    #[test]
    fn staged_bits_stay_out_of_snapshots_until_commit() {
        let mut app = CheckerApp::new();
        let mut r = rng();
        let mut ctx = ExecCtx::new(Time::ZERO, &mut r);
        app.txn_begin(TxnId(7));
        app.txn_execute(TxnId(7), &wreq(1, 3), false, &mut ctx)
            .expect("staged");
        assert_eq!(decode_mask(&app.snapshot()), Some(0));
        app.txn_commit(TxnId(7));
        assert_eq!(decode_mask(&app.snapshot()), Some(1 << 3));
    }

    #[test]
    fn restore_clears_staging() {
        let mut app = CheckerApp::new();
        let mut r = rng();
        let mut ctx = ExecCtx::new(Time::ZERO, &mut r);
        app.txn_begin(TxnId(7));
        app.txn_execute(TxnId(7), &wreq(1, 5), false, &mut ctx)
            .expect("staged");
        app.restore(&0u64.to_le_bytes());
        // A commit after restore folds nothing in.
        app.txn_commit(TxnId(7));
        assert_eq!(decode_mask(&app.snapshot()), Some(0));
    }
}
