//! The service the model checker replicates: a bit-set register.
//!
//! Every write (and every transaction operation) in a checker scenario is
//! assigned a distinct bit. Committed service state is the OR of all
//! committed bits, so any observation of the state — a read reply, a
//! replica snapshot — reveals exactly *which* operations it reflects.
//! That is what lets the invariant layer state linearizability and
//! transaction atomicity as set inclusions over `u64` masks.
//!
//! T-Paxos staging (`durable = false`) is held in a volatile side table
//! that is excluded from [`App::snapshot`] and cleared by [`App::restore`],
//! exactly as the [`App`] contract demands (§3.5–3.6): staged effects live
//! only on the leader and die with its leadership.

use bytes::Bytes;
use gridpaxos_core::command::StateUpdate;
use gridpaxos_core::request::{AbortReason, Request, RequestKind};
use gridpaxos_core::service::{App, ExecCtx};
use gridpaxos_core::types::TxnId;
use std::collections::HashMap;

/// Decode a bit-set mask from the first 8 (little-endian) bytes of a
/// payload. State encodings carry `mask ++ chain`; the mask prefix alone
/// answers the set-inclusion invariants.
#[must_use]
pub fn decode_mask(buf: &[u8]) -> Option<u64> {
    buf.get(..8)?.try_into().ok().map(u64::from_le_bytes)
}

/// Decode the order-sensitive apply chain from bytes 8..16 of a state
/// encoding (0 for legacy 8-byte mask-only payloads).
#[must_use]
pub fn decode_chain(buf: &[u8]) -> u64 {
    buf.get(8..16)
        .and_then(|b| b.try_into().ok())
        .map_or(0, u64::from_le_bytes)
}

/// One FNV-style step of the apply chain. Non-commutative on purpose:
/// folding bits in a different order yields a different chain, which is
/// what lets the agreement invariant catch an apply pipeline that
/// reorders writes even when the final OR-mask coincides.
#[must_use]
pub fn chain_fold(chain: u64, bits: u64) -> u64 {
    (chain ^ bits).wrapping_mul(0x0100_0000_01b3)
}

/// Bit-set register service (see module docs).
#[derive(Debug, Default, Clone)]
pub struct CheckerApp {
    /// Committed state: OR of every committed operation bit.
    committed: u64,
    /// Order-sensitive digest of the committed-write sequence (see
    /// [`chain_fold`]). Part of replicated state: it ships inside every
    /// `StateUpdate::Full`, so replicas agree on it exactly when they
    /// applied the same writes in the same order.
    chain: u64,
    /// T-Paxos staging: per-transaction bits, volatile by contract.
    staged: HashMap<TxnId, u64>,
}

impl CheckerApp {
    /// Fresh service with no bits set.
    #[must_use]
    pub fn new() -> CheckerApp {
        CheckerApp::default()
    }

    fn encode(&self) -> Bytes {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.committed.to_le_bytes());
        out[8..].copy_from_slice(&self.chain.to_le_bytes());
        Bytes::copy_from_slice(&out)
    }

    fn op_bit(req: &Request) -> u64 {
        req.op.first().map_or(0, |b| 1u64 << (b % 64))
    }
}

impl App for CheckerApp {
    fn execute(&mut self, req: &Request, _ctx: &mut ExecCtx<'_>) -> (Bytes, StateUpdate) {
        match req.kind {
            RequestKind::Read => (self.encode(), StateUpdate::None),
            _ => {
                let bit = Self::op_bit(req);
                self.committed |= bit;
                self.chain = chain_fold(self.chain, bit);
                (self.encode(), StateUpdate::Full(self.encode()))
            }
        }
    }

    fn apply(&mut self, _req: &Request, update: &StateUpdate) {
        match update {
            StateUpdate::None => {}
            StateUpdate::Full(b) | StateUpdate::Delta(b) | StateUpdate::Reproduce(b) => {
                if let Some(m) = decode_mask(b) {
                    self.committed = m;
                    self.chain = decode_chain(b);
                }
            }
        }
    }

    fn snapshot(&self) -> Bytes {
        // Staged bits deliberately absent: T-Paxos staging is not
        // replicated state.
        self.encode()
    }

    fn restore(&mut self, snap: &[u8]) {
        self.committed = decode_mask(snap).unwrap_or(0);
        self.chain = decode_chain(snap);
        // The contract: restore clears all volatile staging.
        self.staged.clear();
    }

    fn txn_begin(&mut self, txn: TxnId) {
        self.staged.entry(txn).or_insert(0);
    }

    fn txn_execute(
        &mut self,
        txn: TxnId,
        req: &Request,
        durable: bool,
        _ctx: &mut ExecCtx<'_>,
    ) -> Result<(Bytes, StateUpdate), AbortReason> {
        let bit = Self::op_bit(req);
        *self.staged.entry(txn).or_insert(0) |= bit;
        if durable {
            // Per-op coordination would need the staging replicated; the
            // checker only exercises the T-Paxos path.
            return Err(AbortReason::Unsupported);
        }
        Ok((
            Bytes::copy_from_slice(&bit.to_le_bytes()),
            StateUpdate::None,
        ))
    }

    fn txn_commit(&mut self, txn: TxnId) -> StateUpdate {
        let bits = self.staged.remove(&txn).unwrap_or(0);
        self.committed |= bits;
        self.chain = chain_fold(self.chain, bits);
        StateUpdate::Full(self.encode())
    }

    fn txn_abort(&mut self, txn: TxnId) {
        self.staged.remove(&txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridpaxos_core::request::RequestId;
    use gridpaxos_core::types::{ClientId, Seq, Time};
    fn rng() -> rand::rngs::SmallRng {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(1)
    }

    fn wreq(seq: u64, bit: u8) -> Request {
        Request::new(
            RequestId::new(ClientId(1), Seq(seq)),
            RequestKind::Write,
            Bytes::copy_from_slice(&[bit]),
        )
    }

    #[test]
    fn staged_bits_stay_out_of_snapshots_until_commit() {
        let mut app = CheckerApp::new();
        let mut r = rng();
        let mut ctx = ExecCtx::new(Time::ZERO, &mut r);
        app.txn_begin(TxnId(7));
        app.txn_execute(TxnId(7), &wreq(1, 3), false, &mut ctx)
            .expect("staged");
        assert_eq!(decode_mask(&app.snapshot()), Some(0));
        app.txn_commit(TxnId(7));
        assert_eq!(decode_mask(&app.snapshot()), Some(1 << 3));
    }

    /// The parallel apply pipeline must never reorder writes within one
    /// group: drive a pool-wrapped CheckerApp and a serial one through
    /// the same decree sequence and compare the order-sensitive chain.
    #[test]
    fn apply_pool_preserves_decree_order_within_a_group() {
        use gridpaxos_core::apply::ApplyPool;
        use gridpaxos_core::command::StateUpdate;

        let pool = ApplyPool::new(4);
        let mut pooled = pool.wrap(Box::new(CheckerApp::new()));
        let mut serial = CheckerApp::new();
        let mut chain = 0u64;
        let mut mask = 0u64;
        for seq in 0..200u64 {
            let bit = 1u64 << (seq % 3); // heavy same-register traffic
            mask |= bit;
            chain = super::chain_fold(chain, bit);
            let mut b = [0u8; 16];
            b[..8].copy_from_slice(&mask.to_le_bytes());
            b[8..].copy_from_slice(&chain.to_le_bytes());
            let up = StateUpdate::Full(Bytes::copy_from_slice(&b));
            pooled.apply(&wreq(seq, (seq % 3) as u8), &up);
            serial.apply(&wreq(seq, (seq % 3) as u8), &up);
        }
        // snapshot() fences: it waits for the worker queue to drain.
        assert_eq!(pooled.snapshot(), serial.snapshot());
        assert_eq!(decode_chain(&pooled.snapshot()), chain);
    }

    #[test]
    fn restore_clears_staging() {
        let mut app = CheckerApp::new();
        let mut r = rng();
        let mut ctx = ExecCtx::new(Time::ZERO, &mut r);
        app.txn_begin(TxnId(7));
        app.txn_execute(TxnId(7), &wreq(1, 5), false, &mut ctx)
            .expect("staged");
        app.restore(&0u64.to_le_bytes());
        // A commit after restore folds nothing in.
        app.txn_commit(TxnId(7));
        assert_eq!(decode_mask(&app.snapshot()), Some(0));
    }
}
