//! Repo-specific lint binary: `cargo run -p check --bin lint`.
//!
//! Walks `crates/core/src` and `crates/transport/src` and enforces the
//! protocol coding rules (see [`check::lint`]). Exit code 0 = clean,
//! 1 = findings, 2 = I/O error.

use std::path::PathBuf;

fn main() {
    // Locate the repo root: the manifest dir is crates/check.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    match check::lint::lint_repo(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("lint: clean");
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("lint: io error: {e}");
            std::process::exit(2);
        }
    }
}
