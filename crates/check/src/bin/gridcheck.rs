//! `gridcheck`: bounded-exhaustive model checking of the consensus core.
//!
//! ```text
//! gridcheck --smoke              # CI configuration (bounded depths)
//! gridcheck --depth 9            # deeper sweep of every scenario
//! gridcheck --scenario leader-crash --depth 10
//! gridcheck --list               # list scenarios
//! ```
//!
//! Exit code 0 = every explored schedule satisfies every invariant;
//! 1 = a counterexample was found (its schedule is printed for replay);
//! 2 = usage error.

use check::{explore, smoke_scenarios};
use std::time::Instant;

fn main() {
    let mut smoke = false;
    let mut list = false;
    let mut depth: Option<usize> = None;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--list" => list = true,
            "--depth" => match args.next().and_then(|v| v.parse().ok()) {
                Some(d) => depth = Some(d),
                None => usage_error("--depth needs an integer"),
            },
            "--scenario" => match args.next() {
                Some(s) => only = Some(s),
                None => usage_error("--scenario needs a name"),
            },
            "--help" | "-h" => {
                println!(
                    "gridcheck [--smoke] [--depth N] [--scenario NAME] [--list]\n\
                     Bounded-exhaustive model checker for the gridpaxos protocol core."
                );
                return;
            }
            other => usage_error(&format!("unknown flag {other}")),
        }
    }

    let scenarios = smoke_scenarios();
    if list {
        for s in &scenarios {
            println!("{:24} smoke depth {}", s.name, s.smoke_depth);
        }
        return;
    }

    let started = Instant::now();
    let mut total_states = 0u64;
    let mut total_transitions = 0u64;
    let mut ran = 0usize;
    for s in &scenarios {
        if let Some(only) = &only {
            if s.name != only {
                continue;
            }
        }
        ran += 1;
        let d = depth.unwrap_or(if smoke {
            s.smoke_depth
        } else {
            s.smoke_depth + 1
        });
        let t = Instant::now();
        match explore(s, d) {
            Ok(stats) => {
                total_states += stats.distinct_states;
                total_transitions += stats.transitions;
                println!(
                    "ok   {:24} depth {:2}  {:>9} states  {:>10} transitions  {:>7} pruned  {:.1}s",
                    s.name,
                    d,
                    stats.distinct_states,
                    stats.transitions,
                    stats.pruned,
                    t.elapsed().as_secs_f64()
                );
            }
            Err(cex) => {
                println!("FAIL {:24} depth {d:2}", s.name);
                print!("{cex}");
                std::process::exit(1);
            }
        }
    }
    if ran == 0 {
        usage_error("no scenario matched (try --list)");
    }
    println!(
        "all scenarios pass: {total_states} distinct states, \
         {total_transitions} transitions in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}

fn usage_error(msg: &str) -> ! {
    eprintln!("gridcheck: {msg}");
    std::process::exit(2);
}
