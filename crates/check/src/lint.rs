//! Repo-specific lint pass: protocol coding rules clippy cannot express.
//!
//! Five rules, scoped to the consensus-critical crates:
//!
//! 1. **Exhaustive `Msg` dispatch** (`crates/core`, `crates/transport`):
//!    a `match` whose arms pattern-match `Msg::` variants must not have a
//!    bare `_ =>` arm — a new message variant (like PR 2's `ConfirmReq`)
//!    must fail compilation where it is dispatched, never be silently
//!    swallowed.
//! 2. **No non-test `unwrap`/`expect`** (`crates/core/src/replica`,
//!    `crates/transport/src`): replica and transport code must use typed
//!    errors or documented invariant panics (`panic!`/`unreachable!` with
//!    rationale), not ad-hoc unwraps.
//! 3. **Persist-before-send** (`crates/core/src/replica`): the functions
//!    that acknowledge protocol steps must call the corresponding
//!    `Storage` persist *before* constructing the acknowledgment message,
//!    and must contain the persist call at all — the paper's §3.1
//!    recovery model is sound only if promises and acceptances hit stable
//!    storage before they are announced.
//! 4. **Flush-before-transmit** (`crates/transport/src`): under group
//!    commit the per-record persist calls only *buffer* WAL records; the
//!    drive loop's `flush_and_transmit` is where durability actually
//!    happens. That function must call the `flush_storage` barrier
//!    before handing any buffered message to the transport — otherwise
//!    the batched mode re-introduces the acknowledge-before-durable bug
//!    that rule 3 guards against, one level up.
//! 5. **No blocking calls on the reactor thread** (`transport/src/reactor.rs`,
//!    `transport/src/sys.rs`, `transport/src/backpressure.rs`): the epoll
//!    reactor runs every connection on one thread, so a single blocking
//!    primitive (`thread::sleep`, `write_all`, `read_exact`,
//!    `read_to_end`) stalls the whole node. Reactor-path code must use
//!    plain `read`/`write` loops that surface `EWOULDBLOCK` and yield
//!    back to the readiness loop. (The `mux` load driver is deliberately
//!    thread-per-connection and is *not* in this scope.)
//!
//! The pass is a hand-rolled token scan, not a full parse: comments,
//! strings and char literals are blanked first, `#[cfg(test)]` items are
//! masked out, and the rules run on the remainder. That is precise enough
//! for these rules and keeps the checker dependency-free. The rule
//! functions take source text, so the self-tests can feed known-bad
//! snippets (see `tests/lint_self.rs`).

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in (repo-relative label).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Blank comments, string literals and char literals with spaces,
/// preserving line structure (newlines survive) so byte offsets map to
/// the original line numbers. Lifetimes (`'a`) are distinguished from
/// char literals.
#[must_use]
pub fn strip_noise(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                // Regular string (raw strings handled below via 'r').
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' if i + 1 < b.len() => {
                            out.extend_from_slice(b"  ");
                            i += 2;
                        }
                        b'"' => {
                            out.push(b' ');
                            i += 1;
                            break;
                        }
                        c => {
                            out.push(if c == b'\n' { b'\n' } else { b' ' });
                            i += 1;
                        }
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string r"..." / r#"..."#.
                let start = i;
                i += 1;
                let mut hashes = 0;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                if i < b.len() && b[i] == b'"' {
                    i += 1;
                    loop {
                        if i >= b.len() {
                            break;
                        }
                        if b[i] == b'"' {
                            let mut ok = true;
                            for k in 0..hashes {
                                if b.get(i + 1 + k) != Some(&b'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                i += 1 + hashes;
                                break;
                            }
                        }
                        i += 1;
                    }
                    for &c in &b[start..i] {
                        out.push(if c == b'\n' { b'\n' } else { b' ' });
                    }
                } else {
                    // `r#ident` raw identifier, not a string.
                    out.extend_from_slice(&b[start..i]);
                }
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime is ' followed by an
                // identifier NOT closed by a ' right after.
                let is_char = matches!(
                    (b.get(i + 1), b.get(i + 2)),
                    (Some(b'\\'), _) | (Some(_), Some(b'\''))
                );
                if is_char {
                    out.push(b' ');
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' if i + 1 < b.len() => {
                                out.extend_from_slice(b"  ");
                                i += 2;
                            }
                            b'\'' => {
                                out.push(b' ');
                                i += 1;
                                break;
                            }
                            c => {
                                out.push(if c == b'\n' { b'\n' } else { b' ' });
                                i += 1;
                            }
                        }
                    }
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Additionally blank every item annotated `#[cfg(test)]` (attribute plus
/// the following item's braces). Input must already be noise-stripped.
#[must_use]
pub fn mask_test_items(cleaned: &str) -> String {
    let b = cleaned.as_bytes();
    let mut out = cleaned.as_bytes().to_vec();
    let pat = b"#[cfg(test)]";
    let mut i = 0;
    while i + pat.len() <= b.len() {
        if &b[i..i + pat.len()] != pat.as_slice() {
            i += 1;
            continue;
        }
        // Find the end of the annotated item: the matching close of the
        // first `{` after the attribute (covers `mod`, `fn`, `impl`), or
        // the next `;` for brace-less items.
        let mut j = i + pat.len();
        let mut end = None;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    let mut depth = 1;
                    j += 1;
                    while j < b.len() && depth > 0 {
                        match b[j] {
                            b'{' => depth += 1,
                            b'}' => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    end = Some(j);
                    break;
                }
                b';' => {
                    end = Some(j + 1);
                    break;
                }
                _ => j += 1,
            }
        }
        let end = end.unwrap_or(b.len());
        for item in out.iter_mut().take(end).skip(i) {
            if *item != b'\n' {
                *item = b' ';
            }
        }
        i = end;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset.min(src.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// Rule 1: no bare `_ =>` arm in a `match` whose arms match `Msg::`
/// patterns. Runs on noise-stripped source.
#[must_use]
pub fn check_msg_wildcards(file: &str, cleaned: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let b = cleaned.as_bytes();
    let mut i = 0;
    while let Some(pos) = cleaned[i..].find("match ") {
        let start = i + pos;
        i = start + 6;
        // Word-boundary check on the left.
        if start > 0 && (b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_') {
            continue;
        }
        // Find the match body: first `{` at paren/bracket depth 0.
        let mut j = start + 6;
        let mut depth = 0i32;
        let body_start = loop {
            if j >= b.len() {
                break None;
            }
            match b[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => break Some(j + 1),
                // A `{` inside parens (struct expr in the scrutinee).
                b'{' => depth += 1,
                b'}' => depth -= 1,
                b';' if depth == 0 => break None, // not a match expr after all
                _ => {}
            }
            j += 1;
        };
        let Some(body_start) = body_start else {
            continue;
        };
        // Walk the arms at depth 0 within the body.
        let mut k = body_start;
        let mut depth = 0i32;
        let mut arm_start = body_start;
        let mut has_msg_pattern = false;
        let mut wildcard_at: Option<usize> = None;
        let mut in_pattern = true;
        while k < b.len() {
            match b[k] {
                b'{' | b'(' | b'[' => depth += 1,
                b'}' | b')' | b']' => {
                    if b[k] == b'}' && depth == 0 {
                        break; // end of match body
                    }
                    depth -= 1;
                }
                b'=' if depth == 0 && in_pattern && k + 1 < b.len() && b[k + 1] == b'>' => {
                    let pat = cleaned[arm_start..k].trim();
                    // Strip a guard for classification.
                    let head = pat.split(" if ").next().unwrap_or(pat).trim();
                    // Only *top-level* `Msg::` patterns make this a Msg
                    // dispatch: a match over Action with a nested
                    // `msg: Msg::X` pattern is a filter, not dispatch.
                    if head.starts_with("Msg::") {
                        has_msg_pattern = true;
                    }
                    if head == "_" {
                        wildcard_at = Some(arm_start);
                    }
                    in_pattern = false;
                    k += 1;
                }
                b',' if depth == 0 && !in_pattern => {
                    arm_start = k + 1;
                    in_pattern = true;
                }
                _ => {}
            }
            // A block-bodied arm returns to pattern position after its
            // braces close back to depth 0; detect via `}` + lookahead is
            // overkill — the `,` rule plus brace tracking covers idiomatic
            // rustfmt output, where block arms are followed by no comma
            // but a newline then the next pattern. Handle that: if we are
            // past a block close at depth 0, treat the next non-space
            // char as a new pattern start.
            if !in_pattern && depth == 0 && b[k] == b'}' {
                arm_start = k + 1;
                in_pattern = true;
            }
            k += 1;
        }
        if has_msg_pattern {
            if let Some(off) = wildcard_at {
                findings.push(Finding {
                    file: file.to_string(),
                    line: line_of(cleaned, off),
                    rule: "msg-wildcard",
                    msg: "match over Msg variants has a bare `_ =>` arm; list every \
                          variant so new messages cannot be silently dropped"
                        .to_string(),
                });
            }
        }
    }
    findings
}

/// Rule 2: no `.unwrap()` / `.expect(` outside test code. Runs on
/// noise-stripped, test-masked source.
#[must_use]
pub fn check_unwraps(file: &str, masked: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pat in [".unwrap()", ".expect("] {
        let mut i = 0;
        while let Some(pos) = masked[i..].find(pat) {
            let off = i + pos;
            i = off + pat.len();
            findings.push(Finding {
                file: file.to_string(),
                line: line_of(masked, off),
                rule: "no-unwrap",
                msg: format!(
                    "`{}` in non-test replica/transport code; use typed errors or a \
                     documented invariant panic",
                    pat.trim_matches(|c| c == '.' || c == '(' || c == ')')
                ),
            });
        }
    }
    findings
}

/// (function name, persist call that must appear, message it must precede)
const PERSIST_RULES: &[(&str, &str, &str)] = &[
    ("handle_accept", "save_accepted", "Msg::Accepted"),
    ("handle_prepare", "save_promised", "Msg::Promise"),
    ("execute_and_propose", "save_accepted", "Msg::Accept"),
    ("install_recovery_batch", "save_accepted", "Msg::Accept"),
];

/// Rule 3: persist-before-send. For each protocol-acknowledging function,
/// the persist call must be present and must textually dominate (precede)
/// the construction of the message it covers. Additionally, any function
/// containing both a persist call and its covered message construction
/// must order them persist-first. Runs on noise-stripped, test-masked
/// source.
#[must_use]
pub fn check_persist_before_send(file: &str, masked: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &(fn_name, persist, msg) in PERSIST_RULES {
        let needle = format!("fn {fn_name}");
        let mut i = 0;
        while let Some(pos) = masked[i..].find(&needle) {
            let start = i + pos;
            i = start + needle.len();
            // Word boundary after the name.
            let after = masked.as_bytes().get(start + needle.len());
            if after.is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
                continue;
            }
            let Some(body) = fn_body(masked, start) else {
                continue;
            };
            let text = &masked[body.clone()];
            let p = text.find(persist);
            let m = text.find(msg);
            match (p, m) {
                (None, _) => findings.push(Finding {
                    file: file.to_string(),
                    line: line_of(masked, start),
                    rule: "persist-before-send",
                    msg: format!(
                        "`{fn_name}` must persist via `{persist}` before acknowledging \
                         (no persist call found)"
                    ),
                }),
                (Some(p_off), Some(m_off)) if m_off < p_off => findings.push(Finding {
                    file: file.to_string(),
                    line: line_of(masked, body.start + m_off),
                    rule: "persist-before-send",
                    msg: format!(
                        "`{fn_name}` constructs `{msg}` before calling `{persist}`; \
                         stable storage must precede the acknowledgment (§3.1)"
                    ),
                }),
                _ => {}
            }
        }
    }
    findings
}

/// (function name, flush barrier that must appear, transmit calls it must
/// precede). The rule-3 table covers the sans-io core, where persists are
/// synchronous; this table covers the drive loop, where persists are
/// *buffered* and the flush barrier is the durable point. Any of the
/// transmit tokens appearing before the barrier is a violation.
const FLUSH_RULES: &[(&str, &str, &[&str])] = &[(
    "flush_and_transmit",
    "flush_storage",
    &["transport.send", "broadcast(", "enqueue_msg("],
)];

/// Rule 4: flush-before-transmit. Each drive-loop transmit function must
/// contain the `flush_storage` barrier, and the barrier must textually
/// precede every transport handoff in the function. Runs on
/// noise-stripped, test-masked source.
#[must_use]
pub fn check_flush_barrier(file: &str, masked: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &(fn_name, barrier, transmits) in FLUSH_RULES {
        let needle = format!("fn {fn_name}");
        let mut i = 0;
        while let Some(pos) = masked[i..].find(&needle) {
            let start = i + pos;
            i = start + needle.len();
            let after = masked.as_bytes().get(start + needle.len());
            if after.is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
                continue;
            }
            let Some(body) = fn_body(masked, start) else {
                continue;
            };
            let text = &masked[body.clone()];
            let p = text.find(barrier);
            let m = transmits.iter().filter_map(|t| text.find(t)).min();
            match (p, m) {
                (None, _) => findings.push(Finding {
                    file: file.to_string(),
                    line: line_of(masked, start),
                    rule: "flush-before-transmit",
                    msg: format!(
                        "`{fn_name}` must run the `{barrier}` barrier before handing \
                         buffered messages to the transport (no barrier found)"
                    ),
                }),
                (Some(p_off), Some(m_off)) if m_off < p_off => findings.push(Finding {
                    file: file.to_string(),
                    line: line_of(masked, body.start + m_off),
                    rule: "flush-before-transmit",
                    msg: format!(
                        "`{fn_name}` transmits before the `{barrier}` barrier; under \
                         group commit buffered WAL records are not durable until the \
                         flush, so sends must follow it (§3.1 at batch granularity)"
                    ),
                }),
                _ => {}
            }
        }
    }
    findings
}

/// Blocking primitives forbidden on the reactor thread. Each entry is a
/// token the masked source must not contain. `.write_all(`/`.read_exact(`
/// keep the leading dot so free functions named e.g. `try_read_exact`
/// don't false-positive; `thread::sleep` and `read_to_end` are distinctive
/// enough bare.
const BLOCKING_TOKENS: &[&str] = &[
    "thread::sleep",
    ".write_all(",
    ".read_exact(",
    "read_to_end",
];

/// Rule 5: no blocking calls in reactor-path modules. The reactor drives
/// every connection from one thread; any call that parks that thread
/// (sleeping, or looping internally until a full buffer is transferred)
/// freezes the whole node. Runs on noise-stripped, test-masked source.
#[must_use]
pub fn check_no_blocking(file: &str, masked: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &pat in BLOCKING_TOKENS {
        let mut i = 0;
        while let Some(pos) = masked[i..].find(pat) {
            let off = i + pos;
            i = off + pat.len();
            findings.push(Finding {
                file: file.to_string(),
                line: line_of(masked, off),
                rule: "no-blocking-call",
                msg: format!(
                    "`{}` in reactor-path code; the reactor thread must never \
                     block — use nonblocking `read`/`write` loops that yield \
                     on `EWOULDBLOCK`",
                    pat.trim_matches(|c| c == '.' || c == '(')
                ),
            });
        }
    }
    findings
}

/// Byte range of the body (inside the outermost braces) of the function
/// whose `fn` keyword starts at `fn_start`.
fn fn_body(src: &str, fn_start: usize) -> Option<std::ops::Range<usize>> {
    let b = src.as_bytes();
    let mut j = fn_start;
    let mut depth = 0i32;
    // Find the opening brace of the body (skip generic/where/params).
    while j < b.len() {
        match b[j] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => break,
            b';' if depth == 0 => return None, // trait method without body
            _ => {}
        }
        j += 1;
    }
    if j >= b.len() {
        return None;
    }
    let body_start = j + 1;
    let mut depth = 1i32;
    j += 1;
    while j < b.len() && depth > 0 {
        match b[j] {
            b'{' => depth += 1,
            b'}' => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    Some(body_start..j.saturating_sub(1))
}

/// Lint one source file's text under the rule scopes that apply to it.
#[must_use]
pub fn lint_source(label: &str, src: &str, scope: Scope) -> Vec<Finding> {
    let cleaned = strip_noise(src);
    let masked = mask_test_items(&cleaned);
    let mut findings = check_msg_wildcards(label, &masked);
    if scope.no_unwrap {
        findings.extend(check_unwraps(label, &masked));
    }
    if scope.persist {
        findings.extend(check_persist_before_send(label, &masked));
    }
    if scope.flush {
        findings.extend(check_flush_barrier(label, &masked));
    }
    if scope.no_blocking {
        findings.extend(check_no_blocking(label, &masked));
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Which rule groups apply to a file.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scope {
    /// Apply the no-unwrap rule.
    pub no_unwrap: bool,
    /// Apply the persist-before-send rules.
    pub persist: bool,
    /// Apply the flush-before-transmit rule.
    pub flush: bool,
    /// Apply the no-blocking-call rule (reactor-path modules).
    pub no_blocking: bool,
}

/// Lint the repository rooted at `root`. Scopes: the `Msg`-wildcard rule
/// covers all of `crates/core/src` and `crates/transport/src`; no-unwrap
/// covers `crates/core/src/replica` and `crates/transport/src`
/// (`tests.rs` files and `#[cfg(test)]` items excluded); the persist
/// rules cover `crates/core/src/replica`; the flush-barrier rule covers
/// `crates/transport/src` (it keys on the drive loop's
/// `flush_and_transmit`); the no-blocking-call rule covers the
/// reactor-path modules `reactor.rs`, `sys.rs` and `backpressure.rs`
/// under `crates/transport/src` (the thread-per-connection `tcp`/`node`/
/// `mux` modules block by design and are excluded).
pub fn lint_repo(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut files: Vec<(PathBuf, Scope)> = Vec::new();
    collect_rs(&root.join("crates/core/src"), &mut |p| {
        let in_replica = p
            .strip_prefix(root)
            .ok()
            .is_some_and(|r| r.starts_with("crates/core/src/replica"));
        let is_test_file = p.file_name().is_some_and(|f| f == "tests.rs");
        files.push((
            p.to_path_buf(),
            Scope {
                no_unwrap: in_replica && !is_test_file,
                persist: in_replica && !is_test_file,
                flush: false,
                no_blocking: false,
            },
        ));
    })?;
    collect_rs(&root.join("crates/transport/src"), &mut |p| {
        let reactor_path = p
            .file_name()
            .is_some_and(|f| f == "reactor.rs" || f == "sys.rs" || f == "backpressure.rs");
        files.push((
            p.to_path_buf(),
            Scope {
                no_unwrap: true,
                persist: false,
                flush: true,
                no_blocking: reactor_path,
            },
        ));
    })?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    for (path, scope) in files {
        let src = std::fs::read_to_string(&path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .display()
            .to_string();
        findings.extend(lint_source(&label, &src, scope));
    }
    Ok(findings)
}

fn collect_rs(dir: &Path, f: &mut impl FnMut(&Path)) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::path);
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, f)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            f(&p);
        }
    }
    Ok(())
}
