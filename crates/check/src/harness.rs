//! Deterministic cluster harness: the model checker's transition system.
//!
//! A [`Cluster`] holds real [`Replica`] instances plus everything the
//! environment normally supplies — the network (a set of pending
//! messages), the clock (advanced only by timer firings) and the clients
//! (a scripted sequence of requests). Every nondeterministic decision the
//! environment could make is reified as a [`Choice`]; applying a choice
//! is a deterministic transition, so a schedule (a sequence of choice
//! indices) replays exactly. The explorer enumerates schedules; the
//! harness also records the client-visible history ([`Observations`])
//! that the invariant layer checks.
//!
//! Timer liveness uses the same generation scheme as the simulator,
//! via the shared [`gridpaxos_simnet::sched::TimerGens`] utility: stale
//! firings (superseded or cancelled) are garbage-collected eagerly so
//! they never appear as choices.

use crate::app::{decode_mask, CheckerApp};
use crate::scenario::{ClientOp, Scenario};
use gridpaxos_core::action::{Action, TimerKind};
use gridpaxos_core::msg::Msg;
use gridpaxos_core::replica::Replica;
use gridpaxos_core::request::{ReplyBody, Request, RequestId, RequestKind};
use gridpaxos_core::storage::{MemStorage, Storage};
use gridpaxos_core::types::{Addr, ClientId, ProcessId, Seq, Time, TxnId};
use gridpaxos_simnet::sched::TimerGens;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Which environment nondeterminism the explorer may exercise.
#[derive(Clone, Copy, Debug, Default)]
pub struct HarnessOpts {
    /// Allow dropping pending messages (message loss).
    pub drops: bool,
    /// Allow duplicating pending messages (at most once per message).
    pub dups: bool,
    /// Leader crashes the explorer may inject.
    pub crashes: u32,
    /// Allow crashed replicas to recover.
    pub recovers: bool,
    /// Allow client retransmission of outstanding requests (drives the
    /// dedup path and forces epoch-confirm rounds).
    pub retransmits: bool,
}

/// A pending environment event.
#[derive(Clone, Debug)]
enum Event {
    /// An in-flight message addressed to replica `to`.
    Msg {
        from: Addr,
        to: ProcessId,
        msg: Msg,
        /// How many times this message has been duplicated already.
        dups: u32,
    },
    /// A pending timer firing (live iff its generation still is).
    Timer {
        on: ProcessId,
        kind: TimerKind,
        gen: u64,
        due: Time,
    },
}

/// One environment decision, by current position in the event list.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Choice {
    /// Deliver pending message event `i`.
    Deliver(usize),
    /// Drop pending message event `i`.
    Drop(usize),
    /// Duplicate pending message event `i` (it stays pending).
    Duplicate(usize),
    /// Fire pending timer event `i`.
    Fire(usize),
    /// Inject the next scripted client request.
    Inject,
    /// Retransmit already-injected request `k` (client retry).
    Retransmit(usize),
    /// Crash the current leader.
    CrashLeader,
    /// Recover crashed replica `r`.
    Recover(u32),
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choice::Deliver(i) => write!(f, "deliver#{i}"),
            Choice::Drop(i) => write!(f, "drop#{i}"),
            Choice::Duplicate(i) => write!(f, "dup#{i}"),
            Choice::Fire(i) => write!(f, "fire#{i}"),
            Choice::Inject => write!(f, "inject"),
            Choice::Retransmit(k) => write!(f, "retransmit#{k}"),
            Choice::CrashLeader => write!(f, "crash-leader"),
            Choice::Recover(r) => write!(f, "recover#{r}"),
        }
    }
}

/// What one injected scripted request tracks for the invariant layer.
#[derive(Clone, Debug)]
pub struct Issued {
    /// The request as injected (used for retransmission).
    pub req: Request,
    /// The scripted operation it came from.
    pub op: ClientOp,
    /// Bits of writes/commits *acked* before this request was issued
    /// (the linearizability lower bound for reads).
    pub acked_at_issue: u64,
    /// First reply body observed, to cross-check duplicate replies.
    pub first_reply: Option<ReplyBody>,
}

/// Client-visible history, accumulated as replies arrive.
#[derive(Clone, Debug, Default)]
pub struct Observations {
    /// Bits of every injected write / txn operation so far.
    pub issued_bits: u64,
    /// Bits of every *acknowledged* write and committed transaction.
    pub acked_bits: u64,
    /// Bits per transaction (full scripted set).
    pub txn_bits: HashMap<TxnId, u64>,
    /// Bits of transactions observed aborted — must never surface.
    pub aborted_bits: u64,
    /// A violation found while recording a reply (reported by the step).
    pub violation: Option<String>,
}

/// The model-checking cluster (see module docs).
pub struct Cluster {
    replicas: Vec<Option<Replica>>,
    /// Detached storages of crashed replicas, keyed by index.
    crashed: Vec<Option<Box<dyn Storage>>>,
    events: Vec<Event>,
    timers: TimerGens<(u32, TimerKind)>,
    now: Time,
    opts: HarnessOpts,
    crashes_left: u32,
    script: Vec<ClientOp>,
    next_inject: usize,
    issued: Vec<Issued>,
    /// Request-id → index into `issued`.
    by_id: HashMap<RequestId, usize>,
    /// Client-visible history.
    pub obs: Observations,
    n: usize,
}

const CLIENT: ClientId = ClientId(1);

impl Cluster {
    /// Build the scenario's initial state: replicas constructed and
    /// started, bootstrap-election traffic pending in the network.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Cluster {
        let n = scenario.cfg.n;
        let mut obs = Observations::default();
        for op in &scenario.script {
            if let ClientOp::TxnOp(txn, bit) = op {
                *obs.txn_bits.entry(*txn).or_insert(0) |= 1u64 << (bit % 64);
            }
        }
        let mut cl = Cluster {
            replicas: Vec::with_capacity(n),
            crashed: (0..n).map(|_| None).collect(),
            events: Vec::new(),
            timers: TimerGens::new(),
            now: Time::ZERO,
            opts: scenario.opts,
            crashes_left: scenario.opts.crashes,
            script: scenario.script.clone(),
            next_inject: 0,
            issued: Vec::new(),
            by_id: HashMap::new(),
            obs,
            n,
        };
        for i in 0..n {
            let id = ProcessId(i as u32);
            let r = Replica::new(
                id,
                scenario.cfg.clone(),
                Box::new(CheckerApp::new()),
                Box::new(MemStorage::new()),
                0x5eed + i as u64,
                Time::ZERO,
            );
            cl.replicas.push(Some(r));
        }
        for i in 0..n {
            let Some(mut r) = cl.replicas[i].take() else {
                continue;
            };
            let actions = r.on_start(cl.now);
            // Same discipline as the drive loops: a covering flush barrier
            // before the actions are released to the network, so the
            // checker explores exactly the states group commit can reach.
            r.flush_storage();
            cl.replicas[i] = Some(r);
            cl.process_actions(ProcessId(i as u32), actions);
        }
        cl
    }

    /// Number of replicas.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current logical time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Immutable access to live replica `i` (None while crashed).
    #[must_use]
    pub fn replica(&self, i: usize) -> Option<&Replica> {
        self.replicas.get(i).and_then(|s| s.as_ref())
    }

    /// Index of the current leader, if exactly one live replica leads.
    #[must_use]
    pub fn leader(&self) -> Option<usize> {
        let mut leader = None;
        for (i, r) in self.replicas.iter().enumerate() {
            if r.as_ref().is_some_and(|r| r.is_leader()) {
                if leader.is_some() {
                    return None; // transient dual leadership: ambiguous
                }
                leader = Some(i);
            }
        }
        leader
    }

    /// Order-independent fingerprint of the whole system state (replicas,
    /// network, clients), for visited-set pruning. Time is deliberately
    /// excluded (see [`Replica::fingerprint`]); pending timer events are
    /// reduced to their (owner, kind, relative order) shape.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (i, slot) in self.replicas.iter().enumerate() {
            match slot {
                Some(r) => (1u8, r.fingerprint()).hash(&mut h),
                None => (0u8, i as u64).hash(&mut h),
            }
        }
        // The pending-event multiset. Message order in the vec matters to
        // choice numbering but not to reachable states (any pending message
        // can be picked at any step), so hash a sorted view.
        let mut evs: Vec<u64> = self
            .events
            .iter()
            .map(|e| {
                let mut eh = std::collections::hash_map::DefaultHasher::new();
                match e {
                    Event::Msg {
                        from,
                        to,
                        msg,
                        dups,
                    } => {
                        (0u8, from, to, msg, dups).hash(&mut eh);
                    }
                    Event::Timer { on, kind, .. } => (1u8, on, kind).hash(&mut eh),
                }
                eh.finish()
            })
            .collect();
        evs.sort_unstable();
        evs.hash(&mut h);
        self.next_inject.hash(&mut h);
        self.crashes_left.hash(&mut h);
        (
            self.obs.issued_bits,
            self.obs.acked_bits,
            self.obs.aborted_bits,
        )
            .hash(&mut h);
        h.finish()
    }

    /// Enumerate every choice available in the current state, in a
    /// deterministic order.
    #[must_use]
    pub fn choices(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            match e {
                Event::Msg { dups, .. } => {
                    out.push(Choice::Deliver(i));
                    if self.opts.drops {
                        out.push(Choice::Drop(i));
                    }
                    if self.opts.dups && *dups == 0 {
                        out.push(Choice::Duplicate(i));
                    }
                }
                Event::Timer { .. } => out.push(Choice::Fire(i)),
            }
        }
        if self.next_inject < self.script.len() {
            out.push(Choice::Inject);
        }
        if self.opts.retransmits {
            for (k, iss) in self.issued.iter().enumerate() {
                if iss.first_reply.is_none() {
                    out.push(Choice::Retransmit(k));
                }
            }
        }
        if self.crashes_left > 0 && self.leader().is_some() {
            out.push(Choice::CrashLeader);
        }
        if self.opts.recovers {
            for (i, s) in self.crashed.iter().enumerate() {
                if s.is_some() {
                    out.push(Choice::Recover(i as u32));
                }
            }
        }
        out
    }

    /// Apply one choice. Returns an invariant violation detected *during*
    /// the transition (reply-history checks), if any; structural
    /// invariants are checked separately by [`crate::invariants`].
    pub fn apply(&mut self, choice: Choice) -> Option<String> {
        self.obs.violation = None;
        match choice {
            Choice::Deliver(i) => {
                let Event::Msg { from, to, msg, .. } = self.events.remove(i) else {
                    return Some("schedule error: Deliver on a timer event".into());
                };
                self.deliver(from, to, msg);
            }
            Choice::Drop(i) => {
                self.events.remove(i);
            }
            Choice::Duplicate(i) => {
                let Event::Msg {
                    from,
                    to,
                    msg,
                    dups,
                } = &mut self.events[i]
                else {
                    return Some("schedule error: Duplicate on a timer event".into());
                };
                *dups += 1;
                let (from, to, msg) = (*from, *to, msg.clone());
                self.events.push(Event::Msg {
                    from,
                    to,
                    msg,
                    dups: 1,
                });
            }
            Choice::Fire(i) => {
                let Event::Timer { on, kind, gen, due } = self.events.remove(i) else {
                    return Some("schedule error: Fire on a message event".into());
                };
                // Firing never moves the clock backwards.
                self.now = self.now.max(due);
                if self.timers.is_live(&(on.0, kind), gen) {
                    self.timers.cancel((on.0, kind)); // fired = consumed
                    let idx = on.0 as usize;
                    if let Some(mut r) = self.replicas[idx].take() {
                        let actions = r.on_timer(kind, self.now);
                        r.flush_storage();
                        self.replicas[idx] = Some(r);
                        self.process_actions(on, actions);
                    }
                }
            }
            Choice::Inject => self.inject_next(),
            Choice::Retransmit(k) => {
                let req = self.issued.get(k)?.req.clone();
                if let Some(target) = self.inject_target() {
                    self.deliver(
                        Addr::Client(CLIENT),
                        ProcessId(target as u32),
                        Msg::Request(req),
                    );
                }
            }
            Choice::CrashLeader => {
                if let Some(i) = self.leader() {
                    self.crash(i);
                    self.crashes_left -= 1;
                }
            }
            Choice::Recover(r) => self.recover(r as usize),
        }
        self.obs.violation.take()
    }

    /// The replica a client would currently send to: the leader if one is
    /// known, else the lowest-id live replica.
    fn inject_target(&self) -> Option<usize> {
        self.leader()
            .or_else(|| self.replicas.iter().position(Option::is_some))
    }

    fn inject_next(&mut self) {
        let Some(op) = self.script.get(self.next_inject).cloned() else {
            return;
        };
        self.next_inject += 1;
        let seq = Seq(self.next_inject as u64);
        let id = RequestId::new(CLIENT, seq);
        let req = match op {
            ClientOp::Write(bit) => Request::new(
                id,
                RequestKind::Write,
                bytes::Bytes::copy_from_slice(&[bit]),
            ),
            ClientOp::Read => Request::new(id, RequestKind::Read, bytes::Bytes::new()),
            ClientOp::TxnOp(txn, bit) => Request::txn_op(
                id,
                RequestKind::Write,
                txn,
                bytes::Bytes::copy_from_slice(&[bit]),
            ),
            ClientOp::TxnCommit(txn, n_ops) => Request::txn_commit(id, txn, n_ops),
            ClientOp::TxnAbort(txn) => Request::txn_abort(id, txn),
        };
        match op {
            ClientOp::Write(bit) | ClientOp::TxnOp(_, bit) => {
                self.obs.issued_bits |= 1u64 << (bit % 64);
            }
            _ => {}
        }
        self.by_id.insert(id, self.issued.len());
        self.issued.push(Issued {
            req: req.clone(),
            op,
            acked_at_issue: self.obs.acked_bits,
            first_reply: None,
        });
        if let Some(target) = self.inject_target() {
            self.deliver(
                Addr::Client(CLIENT),
                ProcessId(target as u32),
                Msg::Request(req),
            );
        }
    }

    fn deliver(&mut self, from: Addr, to: ProcessId, msg: Msg) {
        let idx = to.0 as usize;
        // Deliveries to a crashed replica are consumed no-ops (the wire
        // dropped them).
        if let Some(mut r) = self.replicas[idx].take() {
            let was_leader = r.is_leader();
            let actions = r.on_message(from, msg, self.now);
            r.flush_storage();
            let became_leader = !was_leader && r.is_leader();
            self.replicas[idx] = Some(r);
            if became_leader {
                // §3.6 single-message gap-closing: the new leader recovers
                // every non-contiguous instance with at most one Accept
                // broadcast.
                let accepts = actions
                    .iter()
                    .filter(|a| {
                        matches!(
                            a,
                            Action::ToAllReplicas {
                                msg: Msg::Accept { .. }
                            } | Action::Send {
                                msg: Msg::Accept { .. },
                                ..
                            }
                        )
                    })
                    .count();
                if accepts > 1 {
                    self.obs.violation = Some(format!(
                        "gap-closing: new leader {to} issued {accepts} Accept \
                         messages on takeover (expected at most one batch)"
                    ));
                }
            }
            self.process_actions(to, actions);
        }
    }

    fn crash(&mut self, idx: usize) {
        let Some(r) = self.replicas[idx].take() else {
            return;
        };
        self.crashed[idx] = Some(r.into_storage());
        // The crash destroys the replica's volatile timers and any
        // messages still addressed to it.
        self.events.retain(|e| match e {
            Event::Msg { to, .. } => to.0 as usize != idx,
            Event::Timer { on, .. } => on.0 as usize != idx,
        });
        self.timers.retain(|(owner, _), _| *owner as usize != idx);
    }

    fn recover(&mut self, idx: usize) {
        let Some(storage) = self.crashed[idx].take() else {
            return;
        };
        let id = ProcessId(idx as u32);
        let mut r = Replica::recover(
            id,
            // Recovered incarnations must not re-bootstrap an election.
            {
                let mut cfg = self.replicas.iter().flatten().next().map_or_else(
                    || gridpaxos_core::config::Config::cluster(self.n),
                    |r| r.config().clone(),
                );
                cfg.bootstrap_leader = None;
                cfg
            },
            Box::new(CheckerApp::new()),
            storage,
            0xdead + idx as u64,
            self.now,
        );
        let actions = r.on_start(self.now);
        r.flush_storage();
        self.replicas[idx] = Some(r);
        self.process_actions(id, actions);
    }

    fn process_actions(&mut self, from: ProcessId, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => match to {
                    Addr::Replica(p) => self.push_msg(Addr::Replica(from), p, msg),
                    Addr::Client(_) => self.observe_reply(&msg),
                },
                Action::ToAllReplicas { msg } => {
                    for i in 0..self.n {
                        let p = ProcessId(i as u32);
                        if p != from {
                            self.push_msg(Addr::Replica(from), p, msg.clone());
                        }
                    }
                }
                Action::SetTimer { kind, after } => {
                    let gen = self.timers.arm((from.0, kind));
                    // GC the superseded firing so stale timers never
                    // inflate the choice set.
                    self.gc_timers();
                    self.events.push(Event::Timer {
                        on: from,
                        kind,
                        gen,
                        due: self.now.after(after),
                    });
                }
                Action::CancelTimer { kind } => {
                    self.timers.cancel((from.0, kind));
                    self.gc_timers();
                }
            }
        }
    }

    fn gc_timers(&mut self) {
        let timers = &self.timers;
        self.events.retain(|e| match e {
            Event::Msg { .. } => true,
            Event::Timer { on, kind, gen, .. } => timers.is_live(&(on.0, *kind), *gen),
        });
    }

    fn push_msg(&mut self, from: Addr, to: ProcessId, msg: Msg) {
        // Messages to crashed replicas are dropped at send time; the
        // crash already severed the wire.
        if self.replicas[to.0 as usize].is_some() {
            self.events.push(Event::Msg {
                from,
                to,
                msg,
                dups: 0,
            });
        }
    }

    /// Record a client-visible reply and check the history invariants
    /// that are best verified at observation time.
    fn observe_reply(&mut self, msg: &Msg) {
        let Msg::Reply(reply) = msg else { return };
        let Some(&k) = self.by_id.get(&reply.id) else {
            return;
        };
        let iss = &self.issued[k];
        match &reply.body {
            ReplyBody::Ok(payload) => {
                match iss.op {
                    ClientOp::Read => {
                        if let Some(mask) = decode_mask(payload) {
                            if let Some(v) = crate::invariants::check_read_mask(
                                mask,
                                iss.acked_at_issue,
                                &self.obs,
                            ) {
                                self.obs.violation = Some(format!("read {}: {v}", reply.id));
                            }
                        }
                    }
                    ClientOp::Write(bit) => {
                        self.obs.acked_bits |= 1u64 << (bit % 64);
                    }
                    // A txn op's Ok only acknowledges staging, not commit.
                    _ => {}
                }
                // Duplicate replies to the same mutation must agree (the
                // dedup table's contract). Reads may legitimately observe
                // newer state on re-execution.
                if !matches!(iss.op, ClientOp::Read) {
                    if let Some(first) = &iss.first_reply {
                        if first != &reply.body {
                            self.obs.violation = Some(format!(
                                "dedup: request {} answered twice with different \
                                 replies ({first:?} vs {:?})",
                                reply.id, reply.body
                            ));
                        }
                    }
                }
            }
            ReplyBody::TxnCommitted { txn } => {
                let bits = self.obs.txn_bits.get(txn).copied().unwrap_or(0);
                if self.obs.aborted_bits & bits != 0 {
                    self.obs.violation = Some(format!(
                        "txn {txn:?} committed after it was observed aborted"
                    ));
                }
                self.obs.acked_bits |= bits;
            }
            ReplyBody::TxnAborted { txn, .. } => {
                let bits = self.obs.txn_bits.get(txn).copied().unwrap_or(0);
                if self.obs.acked_bits & bits == bits && bits != 0 {
                    self.obs.violation = Some(format!(
                        "txn {txn:?} aborted after it was observed committed"
                    ));
                } else {
                    self.obs.aborted_bits |= bits;
                }
            }
            ReplyBody::Empty => {}
            // Transport-level shed: the request never reached the
            // protocol, so there is nothing to check (the model checker
            // has no admission gate anyway).
            ReplyBody::Busy => {}
        }
        let first = &mut self.issued[k].first_reply;
        if first.is_none() {
            *first = Some(reply.body.clone());
        }
    }

    /// Chaos hook passthrough for the seeded-mutation self-tests: make
    /// the leader (if replica `i` leads) skip an instance number.
    pub fn chaos_skip_instance(&mut self, i: usize) -> bool {
        self.replicas[i]
            .as_mut()
            .is_some_and(Replica::chaos_skip_instance)
    }
}
