//! Bounded-exhaustive exploration: iterative-deepening DFS over the
//! harness's choice tree, with fingerprint-based visited pruning.
//!
//! `Replica` is deliberately not `Clone` (its storage box isn't), so the
//! explorer is *replay-based*: a node is identified by its schedule (the
//! choice-index prefix from the root), and visiting a node rebuilds the
//! cluster by replaying that prefix. Every transition along a replayed
//! prefix was already invariant-checked when it was first taken (as the
//! final step of its own visit), so only the last step of each visit is
//! checked — each reachable state is still checked exactly once.
//! Iterative deepening keeps counterexamples minimal: the first
//! violation reported is at the shallowest depth it occurs.

use crate::harness::Cluster;
use crate::invariants;
use crate::scenario::Scenario;
use std::collections::{HashMap, HashSet};

/// Exploration statistics for one scenario.
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Distinct state fingerprints reached (across all deepening rounds).
    pub distinct_states: u64,
    /// Transitions executed, counting replay re-execution.
    pub transitions: u64,
    /// Node visits skipped by visited-set pruning.
    pub pruned: u64,
    /// Deepest schedule bound explored.
    pub max_depth: usize,
}

/// A schedule that violates an invariant, with enough detail to replay.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Scenario name.
    pub scenario: &'static str,
    /// Choice indices from the root (feed to [`replay`]).
    pub schedule: Vec<usize>,
    /// Human-readable schedule (one line per step).
    pub trace: Vec<String>,
    /// The violated invariant.
    pub violation: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "counterexample in scenario '{}':", self.scenario)?;
        writeln!(f, "  violation: {}", self.violation)?;
        writeln!(f, "  schedule (replay indices {:?}):", self.schedule)?;
        for (i, line) in self.trace.iter().enumerate() {
            writeln!(f, "    step {i}: {line}")?;
        }
        Ok(())
    }
}

/// Replay a schedule (choice indices per step) against a fresh cluster,
/// invariant-checking every step. Returns the cluster and the first
/// violation hit, if any.
pub fn replay(scenario: &Scenario, schedule: &[usize]) -> (Cluster, Option<String>) {
    let mut cl = Cluster::new(scenario);
    for &ci in schedule {
        let choices = cl.choices();
        let Some(&choice) = choices.get(ci) else {
            return (cl, Some(format!("schedule error: index {ci} out of range")));
        };
        if let Some(v) = cl.apply(choice) {
            return (cl, Some(v));
        }
        if let Some(v) = invariants::check_state(&cl) {
            return (cl, Some(v));
        }
    }
    (cl, None)
}

/// Exhaustively explore `scenario` to `max_depth` via iterative-deepening
/// DFS. Returns statistics, or the first (shallowest) counterexample.
pub fn explore(scenario: &Scenario, max_depth: usize) -> Result<ExploreStats, Box<Counterexample>> {
    let mut stats = ExploreStats::default();
    let mut distinct: HashSet<u64> = HashSet::new();
    for depth in 1..=max_depth {
        // fingerprint → remaining budget it was last expanded with; only
        // revisit when a larger budget could reach new states below it.
        let mut visited: HashMap<u64, usize> = HashMap::new();
        let mut schedule: Vec<usize> = Vec::new();
        dfs(
            scenario,
            depth,
            &mut schedule,
            &mut visited,
            &mut distinct,
            &mut stats,
        )?;
        stats.max_depth = depth;
        stats.distinct_states = distinct.len() as u64;
    }
    Ok(stats)
}

/// Visit the node identified by `schedule` with `budget` steps left:
/// rebuild its state, invariant-check the step that created it, then
/// expand its children.
fn dfs(
    scenario: &Scenario,
    budget: usize,
    schedule: &mut Vec<usize>,
    visited: &mut HashMap<u64, usize>,
    distinct: &mut HashSet<u64>,
    stats: &mut ExploreStats,
) -> Result<(), Box<Counterexample>> {
    let mut cl = Cluster::new(scenario);
    let last = schedule.len().checked_sub(1);
    let mut violation = None;
    for (i, &ci) in schedule.iter().enumerate() {
        let choices = cl.choices();
        let Some(&choice) = choices.get(ci) else {
            violation = Some(format!("schedule error: index {ci} out of range"));
            break;
        };
        let step_violation = cl.apply(choice);
        stats.transitions += 1;
        if Some(i) == last {
            violation = step_violation.or_else(|| invariants::check_state(&cl));
        }
    }
    if let Some(v) = violation {
        let trace = describe(scenario, schedule);
        return Err(Box::new(Counterexample {
            scenario: scenario.name,
            schedule: schedule.clone(),
            trace,
            violation: v,
        }));
    }

    let fp = cl.fingerprint();
    distinct.insert(fp);
    match visited.get(&fp) {
        Some(&seen) if seen >= budget => {
            stats.pruned += 1;
            return Ok(());
        }
        _ => {
            visited.insert(fp, budget);
        }
    }
    if budget == 0 {
        return Ok(());
    }
    let n_choices = cl.choices().len();
    drop(cl);
    for ci in 0..n_choices {
        schedule.push(ci);
        dfs(scenario, budget - 1, schedule, visited, distinct, stats)?;
        schedule.pop();
    }
    Ok(())
}

/// Render a schedule as human-readable steps (for counterexamples).
fn describe(scenario: &Scenario, schedule: &[usize]) -> Vec<String> {
    let mut cl = Cluster::new(scenario);
    let mut out = Vec::with_capacity(schedule.len());
    for &ci in schedule {
        let choices = cl.choices();
        let Some(&choice) = choices.get(ci) else {
            out.push(format!("<index {ci} out of range>"));
            break;
        };
        out.push(format!("{choice}"));
        let _ = cl.apply(choice);
    }
    out
}
