//! Checker scenarios: an initial configuration plus a client script.
//!
//! Each scenario pins down the protocol features under test (read mode,
//! transaction mode, confirm batching) and the workload; the explorer
//! then covers every environment schedule up to a depth bound. The smoke
//! suite ([`smoke_scenarios`]) is sized to finish comfortably inside CI;
//! the `gridcheck` binary exposes depth knobs for deeper offline sweeps.

use crate::harness::HarnessOpts;
use gridpaxos_core::config::{Config, ReadMode, TxnMode};
use gridpaxos_core::types::{Dur, ProcessId, TxnId};

/// One scripted client operation. Bits identify operations in observed
/// state masks (see [`crate::app::CheckerApp`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientOp {
    /// A write setting the given bit.
    Write(u8),
    /// A read of the whole bit-set.
    Read,
    /// A T-Paxos transaction operation setting the given bit.
    TxnOp(TxnId, u8),
    /// Commit the transaction (`n_ops` = operations the client issued).
    TxnCommit(TxnId, u32),
    /// Abort the transaction.
    TxnAbort(TxnId),
}

/// A checker scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name (appears in counterexamples and progress output).
    pub name: &'static str,
    /// Replica configuration.
    pub cfg: Config,
    /// Scripted client operations, injected in order.
    pub script: Vec<ClientOp>,
    /// Environment nondeterminism the explorer may exercise.
    pub opts: HarnessOpts,
    /// Exploration depth bound for the smoke suite.
    pub smoke_depth: usize,
}

/// Base configuration for checking: 3 replicas, pre-elected leader 0,
/// batching windows off (they only add timer noise at depth 1).
#[must_use]
pub fn base_config() -> Config {
    let mut cfg = Config::cluster(3);
    cfg.batch_window = Dur::ZERO;
    cfg.bootstrap_leader = Some(ProcessId(0));
    cfg
}

/// The bounded suite run by `gridcheck --smoke` and CI.
#[must_use]
pub fn smoke_scenarios() -> Vec<Scenario> {
    vec![
        // Plain writes + read, lossy reordered network: agreement,
        // gap-freedom and the X-Paxos per-read confirm path.
        Scenario {
            name: "write-read-lossy",
            cfg: base_config(),
            script: vec![ClientOp::Write(0), ClientOp::Write(1), ClientOp::Read],
            opts: HarnessOpts {
                drops: true,
                dups: true,
                ..HarnessOpts::default()
            },
            smoke_depth: 6,
        },
        // Epoch-batched confirm rounds (PR 2): retransmissions force the
        // round-launch path; reads must stay linearizable.
        Scenario {
            name: "confirm-batching",
            cfg: Config {
                read_mode: ReadMode::XPaxos,
                confirm_batching: true,
                ..base_config()
            },
            script: vec![ClientOp::Write(0), ClientOp::Read, ClientOp::Read],
            opts: HarnessOpts {
                dups: true,
                retransmits: true,
                ..HarnessOpts::default()
            },
            smoke_depth: 7,
        },
        // Leader crash + recovery mid-write: durability of acked writes,
        // single-message gap-closing on takeover.
        Scenario {
            name: "leader-crash",
            cfg: base_config(),
            script: vec![ClientOp::Write(0), ClientOp::Write(1), ClientOp::Read],
            opts: HarnessOpts {
                crashes: 1,
                recovers: true,
                ..HarnessOpts::default()
            },
            smoke_depth: 7,
        },
        // T-Paxos commit: staged effects surface atomically, exactly once.
        Scenario {
            name: "tpaxos-commit",
            cfg: Config {
                txn_mode: TxnMode::TPaxos,
                ..base_config()
            },
            script: vec![
                ClientOp::TxnOp(TxnId(1), 0),
                ClientOp::TxnOp(TxnId(1), 1),
                ClientOp::TxnCommit(TxnId(1), 2),
                ClientOp::Read,
            ],
            opts: HarnessOpts {
                dups: true,
                ..HarnessOpts::default()
            },
            smoke_depth: 7,
        },
        // Apply lag: with drops and duplication the Chosen notifications
        // that advance a backup's apply loop can arrive late, reordered
        // or twice, so replicas run with visibly lagging applied state.
        // Reads must stay linearizable against acked writes regardless
        // (§3.4), and the order-sensitive apply chain in the agreement
        // invariant proves no replica ever applies the same-register
        // writes out of decree order while catching up.
        Scenario {
            name: "read-under-apply-lag",
            cfg: Config {
                read_mode: ReadMode::XPaxos,
                ..base_config()
            },
            script: vec![
                ClientOp::Write(0),
                ClientOp::Write(1),
                ClientOp::Read,
                ClientOp::Write(2),
                ClientOp::Read,
            ],
            opts: HarnessOpts {
                drops: true,
                dups: true,
                ..HarnessOpts::default()
            },
            smoke_depth: 6,
        },
        // T-Paxos abort + leader crash: staged effects must vanish; an
        // aborted transaction's bits may never surface anywhere.
        Scenario {
            name: "tpaxos-abort-crash",
            cfg: Config {
                txn_mode: TxnMode::TPaxos,
                ..base_config()
            },
            script: vec![
                ClientOp::TxnOp(TxnId(1), 0),
                ClientOp::TxnAbort(TxnId(1)),
                ClientOp::Write(1),
                ClientOp::Read,
            ],
            opts: HarnessOpts {
                crashes: 1,
                recovers: true,
                ..HarnessOpts::default()
            },
            smoke_depth: 6,
        },
    ]
}
