//! The paper's safety invariants, as assertions over a [`Cluster`] state
//! and its observed history. DESIGN.md §"Checked invariants" maps each
//! check to its paper section.

use crate::app::decode_mask;
use crate::harness::{Cluster, Observations};
use gridpaxos_core::types::Instance;
use std::collections::HashMap;

/// Check every structural invariant of the current cluster state.
/// Returns a description of the first violation found.
#[must_use]
pub fn check_state(cl: &Cluster) -> Option<String> {
    agreement(cl)
        .or_else(|| gap_freedom(cl))
        .or_else(|| snapshot_history(cl))
}

/// §3.3 agreement: no two replicas decide different `⟨req, state⟩`
/// decrees for the same instance, and replicas at the same chosen prefix
/// hold identical service state.
fn agreement(cl: &Cluster) -> Option<String> {
    let per_replica: Vec<(usize, Vec<(Instance, u64)>)> = (0..cl.n())
        .filter_map(|i| cl.replica(i).map(|r| (i, r.chosen_digests())))
        .collect();
    if let Some(v) = check_chosen_digests(&per_replica) {
        return Some(v);
    }
    // Equal chosen prefix ⟹ byte-identical applied service state, except
    // on a leader mid-tentative-execution (§3.3: the leader executes
    // before the decree is chosen, so its service state may run one step
    // ahead). Comparing full snapshots (not just the OR-mask) makes this
    // order-sensitive: the CheckerApp state embeds an apply chain, so a
    // pipeline that applied the same writes in a different order is
    // caught even though the final masks coincide.
    let states: Vec<(usize, Instance, bytes::Bytes)> = (0..cl.n())
        .filter_map(|i| {
            let r = cl.replica(i)?;
            (!r.checker_view().tentative_exec).then(|| (i, r.chosen_prefix(), r.service_snapshot()))
        })
        .collect();
    check_state_agreement(&states)
}

/// State-level core of the agreement check: replicas at the same chosen
/// prefix must hold byte-identical service snapshots. Exposed for the
/// seeded-mutation self-tests.
#[must_use]
pub fn check_state_agreement(states: &[(usize, Instance, bytes::Bytes)]) -> Option<String> {
    let mut state_at: HashMap<Instance, (usize, &bytes::Bytes)> = HashMap::new();
    for (i, prefix, snap) in states {
        match state_at.get(prefix) {
            None => {
                state_at.insert(*prefix, (*i, snap));
            }
            Some(&(j, other)) if other != snap => {
                return Some(format!(
                    "agreement: replicas {j} and {i} applied the same prefix \
                     {prefix:?} but hold different state (mask {:#x} chain \
                     {:#x} vs mask {:#x} chain {:#x})",
                    decode_mask(other).unwrap_or(0),
                    crate::app::decode_chain(other),
                    decode_mask(snap).unwrap_or(0),
                    crate::app::decode_chain(snap),
                ));
            }
            Some(_) => {}
        }
    }
    None
}

/// §3.3 strict pipelining: a quiescent leader (nothing in flight, no
/// recovery outstanding) has assigned exactly the chosen instances — its
/// next instance number immediately follows the chosen prefix, i.e. the
/// log it is building has no gap.
fn gap_freedom(cl: &Cluster) -> Option<String> {
    for i in 0..cl.n() {
        let Some(r) = cl.replica(i) else { continue };
        let v = r.checker_view();
        if v.role == "leader" && v.quiescent {
            let (Some(next), prefix) = (v.next_instance, v.chosen_prefix) else {
                continue;
            };
            if next != prefix.next() {
                return Some(format!(
                    "gap-freedom: quiescent leader {i} would assign {next:?} \
                     but the chosen prefix is {prefix:?}"
                ));
            }
        }
    }
    None
}

/// History-facing checks on replica snapshots: transaction atomicity
/// (§3.5) and no resurrection of aborted transactions (§3.6), applied to
/// every replica's service state.
fn snapshot_history(cl: &Cluster) -> Option<String> {
    for i in 0..cl.n() {
        let Some(r) = cl.replica(i) else { continue };
        let Some(mask) = decode_mask(&r.service_snapshot()) else {
            continue;
        };
        if let Some(v) = check_mask_invariants(mask, &cl.obs) {
            return Some(format!("replica {i} state: {v}"));
        }
    }
    None
}

/// Digest-level core of the agreement check (§3.3): given each replica's
/// chosen `(instance, decree digest)` pairs, any two replicas holding
/// different digests for the same instance is a violation.
#[must_use]
pub fn check_chosen_digests(per_replica: &[(usize, Vec<(Instance, u64)>)]) -> Option<String> {
    let mut chosen: HashMap<Instance, (usize, u64)> = HashMap::new();
    for (i, digests) in per_replica {
        for &(inst, digest) in digests {
            match chosen.get(&inst) {
                None => {
                    chosen.insert(inst, (*i, digest));
                }
                Some(&(j, other)) if other != digest => {
                    return Some(format!(
                        "agreement: replicas {j} and {i} decided different \
                         decrees for instance {inst:?}"
                    ));
                }
                Some(_) => {}
            }
        }
    }
    None
}

/// Invariants every observed state mask must satisfy, whether it came
/// from a read reply or a replica snapshot.
#[must_use]
pub fn check_mask_invariants(mask: u64, obs: &Observations) -> Option<String> {
    if mask & !obs.issued_bits != 0 {
        return Some(format!(
            "contains bits {:#x} that were never issued",
            mask & !obs.issued_bits
        ));
    }
    if mask & obs.aborted_bits != 0 {
        return Some(format!(
            "contains bits {:#x} of an aborted transaction (§3.6: staged \
             effects die with the leadership / abort)",
            mask & obs.aborted_bits
        ));
    }
    for (txn, bits) in &obs.txn_bits {
        let seen = mask & bits;
        if seen != 0 && seen != *bits {
            return Some(format!(
                "atomicity (§3.5): transaction {txn:?} is partially visible \
                 ({seen:#x} of {bits:#x})"
            ));
        }
    }
    None
}

/// §3.4 read linearizability bounds: a read's result must include every
/// write acknowledged before the read was issued (reads never travel
/// back in time past an ack) and may include only issued writes, with
/// the mask-level invariants on top. The epoch-batched confirm path
/// (PR 2) answers through the same reply route, so it is covered by the
/// same bound.
#[must_use]
pub fn check_read_mask(mask: u64, acked_at_issue: u64, obs: &Observations) -> Option<String> {
    if acked_at_issue & !mask != 0 {
        return Some(format!(
            "linearizability (§3.4): missing bits {:#x} that were \
             acknowledged before the read was issued",
            acked_at_issue & !mask
        ));
    }
    check_mask_invariants(mask, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{chain_fold, decode_chain, CheckerApp};
    use bytes::Bytes;
    use gridpaxos_core::command::StateUpdate;
    use gridpaxos_core::request::{Request, RequestId, RequestKind};
    use gridpaxos_core::service::App;
    use gridpaxos_core::types::{ClientId, Seq};

    fn full_update(mask: u64, chain: u64) -> StateUpdate {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&mask.to_le_bytes());
        b[8..].copy_from_slice(&chain.to_le_bytes());
        StateUpdate::Full(Bytes::copy_from_slice(&b))
    }

    fn wreq(seq: u64, bit: u8) -> Request {
        Request::new(
            RequestId::new(ClientId(1), Seq(seq)),
            RequestKind::Write,
            Bytes::copy_from_slice(&[bit]),
        )
    }

    /// Seeded mutation: two backups apply the same two same-register
    /// writes in opposite orders (both decrees set bit 0, so either
    /// order ends at mask 0b1). A mask-only agreement check would pass —
    /// the apply chain must catch it.
    #[test]
    fn state_agreement_fires_on_reordered_applies() {
        let updates = [
            full_update(0b01, chain_fold(0, 0b01)),
            full_update(0b01, chain_fold(chain_fold(0, 0b01), 0b01)),
        ];
        let mut in_order = CheckerApp::new();
        let mut reordered = CheckerApp::new();
        for u in &updates {
            in_order.apply(&wreq(1, 0), u);
        }
        for u in updates.iter().rev() {
            reordered.apply(&wreq(1, 0), u);
        }
        assert_eq!(
            decode_mask(&in_order.snapshot()),
            decode_mask(&reordered.snapshot()),
            "the mutation is invisible to the OR-mask"
        );
        assert_ne!(
            decode_chain(&in_order.snapshot()),
            decode_chain(&reordered.snapshot()),
            "the apply chain distinguishes the orders"
        );
        let prefix = Instance(2);
        let states = vec![
            (0usize, prefix, in_order.snapshot()),
            (1usize, prefix, reordered.snapshot()),
        ];
        let v = check_state_agreement(&states).expect("must flag the reorder");
        assert!(v.contains("agreement"), "got: {v}");
    }

    #[test]
    fn state_agreement_accepts_identical_histories() {
        let mut a = CheckerApp::new();
        let mut b = CheckerApp::new();
        for (seq, bit) in [(1, 3), (2, 5), (3, 3)] {
            let u = {
                let mut leader_ctx_rng = {
                    use rand::SeedableRng;
                    rand::rngs::SmallRng::seed_from_u64(1)
                };
                let mut ctx = gridpaxos_core::service::ExecCtx::new(
                    gridpaxos_core::types::Time::ZERO,
                    &mut leader_ctx_rng,
                );
                let mut leader = a.clone();
                let (_, u) = leader.execute(&wreq(seq, bit), &mut ctx);
                u
            };
            a.apply(&wreq(seq, bit), &u);
            b.apply(&wreq(seq, bit), &u);
        }
        let states = vec![
            (0usize, Instance(3), a.snapshot()),
            (1usize, Instance(3), b.snapshot()),
            // A replica at a different prefix is allowed to differ.
            (2usize, Instance(1), CheckerApp::new().snapshot()),
        ];
        assert!(check_state_agreement(&states).is_none());
    }
}
