//! # check
//!
//! Correctness tooling for the gridpaxos protocol core, two engines:
//!
//! * **Model checker** ([`harness`], [`explore`], [`invariants`]): drives
//!   real [`gridpaxos_core::replica::Replica`] instances through bounded,
//!   exhaustive state-space exploration — every interleaving of message
//!   delivery, drop, duplication, timer firing and leader crash up to a
//!   depth bound — asserting the paper's safety invariants (§3.3–§3.6)
//!   after every transition. Run it with `cargo run -p check --release`.
//! * **Repo lint** ([`lint`]): a source-level pass enforcing protocol
//!   coding rules clippy cannot express (exhaustive `Msg` dispatch,
//!   no non-test `unwrap`/`expect` in replica/transport code,
//!   persist-before-send ordering). Run it with
//!   `cargo run -p check --bin lint`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod explore;
pub mod harness;
pub mod invariants;
pub mod lint;
pub mod scenario;

pub use app::CheckerApp;
pub use explore::{explore, replay, Counterexample, ExploreStats};
pub use harness::{Choice, Cluster, HarnessOpts};
pub use scenario::{smoke_scenarios, ClientOp, Scenario};
