//! Seeded-mutation self-tests: prove each checker invariant actually
//! fires by feeding it a known-bad state, and that clean states pass.
//!
//! The chaos hooks used here are compiled under the `check-hooks`
//! feature of gridpaxos-core, which this crate enables; production
//! builds never contain them.

use check::harness::{Choice, Cluster, Observations};
use check::invariants::{
    check_chosen_digests, check_mask_invariants, check_read_mask, check_state,
};
use check::{replay, smoke_scenarios, Scenario};
use gridpaxos_core::types::{Instance, TxnId};

fn scenario(name: &str) -> Scenario {
    smoke_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scenario named {name}"))
}

/// A freshly booted cluster satisfies every invariant.
#[test]
fn clean_initial_state_passes() {
    let cl = Cluster::new(&scenario("write-read-lossy"));
    assert_eq!(check_state(&cl), None);
}

/// Deliver pending messages (in queue order) until a leader emerges —
/// drives the bootstrap Prepare/Promise election to completion.
fn establish_leader(cl: &mut Cluster) -> usize {
    for _ in 0..64 {
        if let Some(i) = cl.leader() {
            return i;
        }
        let choices = cl.choices();
        let c = choices
            .iter()
            .find(|c| matches!(c, Choice::Deliver(_)))
            .copied()
            .expect("bootstrap election ran out of messages without a leader");
        assert_eq!(cl.apply(c), None);
    }
    panic!("no leader after 64 deliveries");
}

/// §3.3 strict pipelining: a leader that skips an instance number (a
/// pipeline gap) is caught by the gap-freedom invariant.
#[test]
fn skipped_instance_trips_gap_freedom() {
    let mut cl = Cluster::new(&scenario("write-read-lossy"));
    let leader = establish_leader(&mut cl);
    assert_eq!(check_state(&cl), None, "pre-mutation state must be clean");
    assert!(cl.chaos_skip_instance(leader), "replica must lead");
    let v = check_state(&cl).expect("gap must be detected");
    assert!(v.contains("gap-freedom"), "unexpected violation: {v}");
}

/// §3.3 agreement: two replicas deciding different decrees for the same
/// instance is a violation; identical decrees are not.
#[test]
fn conflicting_decrees_trip_agreement() {
    let inst = Instance(3);
    let agree = vec![(0, vec![(inst, 7)]), (1, vec![(inst, 7)])];
    assert_eq!(check_chosen_digests(&agree), None);

    let conflict = vec![(0, vec![(inst, 7)]), (2, vec![(inst, 8)])];
    let v = check_chosen_digests(&conflict).expect("conflict must be detected");
    assert!(v.contains("agreement"), "unexpected violation: {v}");
}

/// §3.4 read linearizability: a read missing a write that was already
/// acknowledged when the read was issued is a violation.
#[test]
fn stale_read_trips_linearizability() {
    let obs = Observations {
        issued_bits: 0b11,
        acked_bits: 0b10,
        ..Observations::default()
    };
    // Read issued after bit 1 was acked, but its result lacks bit 1.
    let v = check_read_mask(0b01, 0b10, &obs).expect("stale read must be detected");
    assert!(v.contains("linearizability"), "unexpected violation: {v}");
    // The same result is fine for a read issued before the ack.
    assert_eq!(check_read_mask(0b01, 0b00, &obs), None);
}

/// A state mask containing a bit no client ever issued is a violation
/// (state must come from decided requests only).
#[test]
fn unissued_bits_trip_state_check() {
    let obs = Observations {
        issued_bits: 0b01,
        ..Observations::default()
    };
    let v = check_mask_invariants(0b10, &obs).expect("phantom write must be detected");
    assert!(v.contains("never issued"), "unexpected violation: {v}");
}

/// §3.5 atomicity: a transaction's effects surfacing partially is a
/// violation; all-or-nothing is not.
#[test]
fn partial_transaction_trips_atomicity() {
    let mut obs = Observations {
        issued_bits: 0b111,
        ..Observations::default()
    };
    obs.txn_bits.insert(TxnId(1), 0b110);
    let v = check_mask_invariants(0b010, &obs).expect("partial txn must be detected");
    assert!(v.contains("atomicity"), "unexpected violation: {v}");
    assert_eq!(check_mask_invariants(0b000, &obs), None);
    assert_eq!(check_mask_invariants(0b110, &obs), None);
}

/// §3.6: effects of an aborted transaction may never resurface in any
/// state, even after leader switches.
#[test]
fn aborted_bits_trip_resurrection_check() {
    let obs = Observations {
        issued_bits: 0b11,
        aborted_bits: 0b01,
        ..Observations::default()
    };
    let v = check_mask_invariants(0b01, &obs).expect("resurrection must be detected");
    assert!(v.contains("aborted"), "unexpected violation: {v}");
    assert_eq!(check_mask_invariants(0b10, &obs), None);
}

/// Replay is deterministic: the same schedule reproduces the same state,
/// so a printed counterexample schedule is sufficient to reproduce it.
#[test]
fn replay_is_deterministic() {
    let s = scenario("leader-crash");
    let schedule = [0, 0, 1, 0, 0];
    let (a, va) = replay(&s, &schedule);
    let (b, vb) = replay(&s, &schedule);
    assert_eq!(va, None);
    assert_eq!(vb, None);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

/// Replay rejects schedules that index past the available choices.
#[test]
fn replay_reports_bad_schedule() {
    let s = scenario("write-read-lossy");
    let (_, v) = replay(&s, &[usize::MAX]);
    let v = v.expect("out-of-range index must be reported");
    assert!(v.contains("schedule error"), "unexpected violation: {v}");
}
