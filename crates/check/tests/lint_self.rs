//! Lint self-tests: each rule fires on a deliberately bad snippet and
//! stays silent on the idiomatic equivalent. The wildcard-arm case is
//! the CI tripwire: introducing `_ =>` into Msg dispatch anywhere in the
//! core makes `cargo run -p check --bin lint` (and these tests) fail.

use check::lint::{
    check_flush_barrier, check_msg_wildcards, check_no_blocking, check_persist_before_send,
    check_unwraps, lint_source, mask_test_items, strip_noise, Scope,
};

const FULL: Scope = Scope {
    no_unwrap: true,
    persist: true,
    flush: true,
    no_blocking: true,
};

#[test]
fn wildcard_msg_arm_is_flagged() {
    let src = r#"
        fn dispatch(&mut self, msg: Msg) {
            match msg {
                Msg::Request(req) => self.handle_request(req),
                Msg::Prepare { ballot, .. } => self.handle_prepare(ballot),
                _ => {}
            }
        }
    "#;
    let findings = check_msg_wildcards("dispatch.rs", &strip_noise(src));
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "msg-wildcard");
}

#[test]
fn exhaustive_msg_match_is_clean() {
    let src = r#"
        fn dispatch(&mut self, msg: Msg) {
            match msg {
                Msg::Request(req) => self.handle_request(req),
                Msg::Prepare { ballot, .. } | Msg::Promise { ballot, .. } => {
                    self.handle_ballot(ballot)
                }
                Msg::Reply(r) => drop(r),
            }
        }
    "#;
    assert!(check_msg_wildcards("dispatch.rs", &strip_noise(src)).is_empty());
}

/// A match over a *different* enum that merely binds a nested `Msg::`
/// pattern is a filter, not Msg dispatch — its `_` arm is fine.
#[test]
fn nested_msg_pattern_in_action_match_is_clean() {
    let src = r#"
        fn sent(actions: &[Action]) -> Vec<GroupId> {
            actions
                .iter()
                .filter_map(|a| match a {
                    Action::Send { msg: Msg::Grouped { group, .. }, .. } => Some(*group),
                    _ => None,
                })
                .collect()
        }
    "#;
    assert!(check_msg_wildcards("helpers.rs", &strip_noise(src)).is_empty());
}

#[test]
fn wildcard_inside_test_module_is_exempt() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            fn pick(msg: Msg) -> u32 {
                match msg {
                    Msg::Request(_) => 1,
                    _ => 0,
                }
            }
        }
    "#;
    let masked = mask_test_items(&strip_noise(src));
    assert!(check_msg_wildcards("mod.rs", &masked).is_empty());
}

#[test]
fn unwrap_outside_tests_is_flagged() {
    let src = r#"
        fn decode(buf: &[u8]) -> Frame {
            let len = buf.first().copied().unwrap();
            parse(&buf[1..]).expect("valid frame")
        }
    "#;
    let findings = check_unwraps("decode.rs", &mask_test_items(&strip_noise(src)));
    assert_eq!(findings.len(), 2, "findings: {findings:?}");
    assert!(findings.iter().all(|f| f.rule == "no-unwrap"));
}

#[test]
fn unwrap_inside_test_module_is_exempt() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn roundtrip() {
                decode(&encode()).unwrap();
            }
        }
    "#;
    let findings = check_unwraps("decode.rs", &mask_test_items(&strip_noise(src)));
    assert!(findings.is_empty(), "findings: {findings:?}");
}

/// The string literal `".unwrap()"` must not fool the rule — noise
/// stripping removes string contents before scanning.
#[test]
fn unwrap_in_string_literal_is_clean() {
    let src = r#"
        fn banner() -> &'static str {
            "never call .unwrap() here"
        }
    "#;
    assert!(check_unwraps("doc.rs", &mask_test_items(&strip_noise(src))).is_empty());
}

#[test]
fn send_before_persist_is_flagged() {
    // `handle_accept` builds its Accepted reply before calling
    // save_accepted: acknowledging before durability (§3.1 violation).
    let src = r#"
        fn handle_accept(&mut self, from: Addr) {
            let reply = Msg::Accepted { instance: i };
            out.push(Action::Send { to: from, msg: reply });
            self.storage.save_accepted(i, &decree);
        }
    "#;
    let findings = check_persist_before_send("mod.rs", &mask_test_items(&strip_noise(src)));
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "persist-before-send");
}

#[test]
fn missing_persist_is_flagged() {
    let src = r#"
        fn handle_accept(&mut self, from: Addr) {
            out.push(Action::Send { to: from, msg: Msg::Accepted { instance: i } });
        }
    "#;
    let findings = check_persist_before_send("mod.rs", &mask_test_items(&strip_noise(src)));
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "persist-before-send");
}

#[test]
fn persist_before_send_is_clean() {
    let src = r#"
        fn handle_accept(&mut self, from: Addr) {
            self.storage.save_accepted(i, &decree);
            out.push(Action::Send { to: from, msg: Msg::Accepted { instance: i } });
        }
    "#;
    let findings = check_persist_before_send("mod.rs", &mask_test_items(&strip_noise(src)));
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn transmit_before_flush_is_flagged() {
    // The drive loop hands a buffered message to the transport before the
    // covering flush: under group commit the WAL record backing that
    // message may still be un-synced.
    let src = r#"
        fn flush_and_transmit(&mut self) {
            for out in std::mem::take(&mut self.outbox) {
                self.transport.send(out.0, out.1);
            }
            self.replica.flush_storage();
        }
    "#;
    let findings = check_flush_barrier("node.rs", &mask_test_items(&strip_noise(src)));
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "flush-before-transmit");
}

#[test]
fn missing_flush_barrier_is_flagged() {
    let src = r#"
        fn flush_and_transmit(&mut self) {
            for out in std::mem::take(&mut self.outbox) {
                broadcast(&self.transport, n, Some(me), out);
            }
        }
    "#;
    let findings = check_flush_barrier("node.rs", &mask_test_items(&strip_noise(src)));
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "flush-before-transmit");
}

#[test]
fn flush_before_transmit_is_clean() {
    let src = r#"
        fn flush_and_transmit(&mut self) {
            if self.replica.storage_dirty() {
                self.replica.flush_storage();
            }
            for out in std::mem::take(&mut self.outbox) {
                self.transport.send(out.0, out.1);
            }
        }
    "#;
    let findings = check_flush_barrier("node.rs", &mask_test_items(&strip_noise(src)));
    assert!(findings.is_empty(), "findings: {findings:?}");
}

/// The reactor's `flush_and_transmit` hands frames out via
/// `enqueue_msg`; that token counts as a transmit, so enqueuing before
/// the barrier is flagged exactly like a raw `transport.send`.
#[test]
fn reactor_enqueue_before_flush_is_flagged() {
    let src = r#"
        fn flush_and_transmit(&mut self) {
            for out in std::mem::take(&mut self.outbox) {
                self.enqueue_msg(out.0, out.1);
            }
            for core in &mut self.cores {
                core.flush_storage();
            }
        }
    "#;
    let findings = check_flush_barrier("reactor.rs", &mask_test_items(&strip_noise(src)));
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "flush-before-transmit");
}

#[test]
fn reactor_flush_before_enqueue_is_clean() {
    let src = r#"
        fn flush_and_transmit(&mut self) {
            for core in &mut self.cores {
                if core.storage_dirty() {
                    core.flush_storage();
                }
            }
            for out in std::mem::take(&mut self.outbox) {
                self.enqueue_msg(out.0, out.1);
            }
        }
    "#;
    let findings = check_flush_barrier("reactor.rs", &mask_test_items(&strip_noise(src)));
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn blocking_calls_on_reactor_path_are_flagged() {
    // Each of the four forbidden primitives parks the reactor thread:
    // sleep outright, the others loop internally past EWOULDBLOCK.
    let src = r#"
        fn drain(&mut self, stream: &mut TcpStream) {
            std::thread::sleep(Duration::from_millis(1));
            stream.write_all(&self.buf);
            stream.read_exact(&mut self.hdr);
            stream.read_to_end(&mut self.rest);
        }
    "#;
    let findings = check_no_blocking("reactor.rs", &mask_test_items(&strip_noise(src)));
    assert_eq!(findings.len(), 4, "findings: {findings:?}");
    assert!(findings.iter().all(|f| f.rule == "no-blocking-call"));
}

#[test]
fn nonblocking_read_write_loops_are_clean() {
    let src = r#"
        fn flush_conn(&mut self, stream: &mut TcpStream) -> io::Result<()> {
            loop {
                match stream.write(&self.buf[self.off..]) {
                    Ok(n) => self.off += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) => return Err(e),
                }
            }
        }
    "#;
    let findings = check_no_blocking("reactor.rs", &mask_test_items(&strip_noise(src)));
    assert!(findings.is_empty(), "findings: {findings:?}");
}

/// Blocking calls inside `#[cfg(test)]` harness code are exempt — the
/// reactor's own tests drive it from blocking client sockets.
#[test]
fn blocking_call_inside_test_module_is_exempt() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn burst() {
                sock.write_all(&batch).expect("send burst");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    "#;
    let findings = check_no_blocking("reactor.rs", &mask_test_items(&strip_noise(src)));
    assert!(findings.is_empty(), "findings: {findings:?}");
}

/// Mentioning a blocking primitive in a comment or string is fine —
/// noise stripping removes both before the scan.
#[test]
fn blocking_token_in_comment_is_clean() {
    let src = r#"
        // Unlike write_all, flush_into surfaces EWOULDBLOCK to the caller.
        fn doc() -> &'static str {
            "never thread::sleep here"
        }
    "#;
    let findings = check_no_blocking("backpressure.rs", &mask_test_items(&strip_noise(src)));
    assert!(findings.is_empty(), "findings: {findings:?}");
}

/// End-to-end: `lint_source` composes stripping, masking and every rule.
#[test]
fn lint_source_composes_all_rules() {
    let src = r#"
        fn handle(&mut self, msg: Msg) {
            match msg {
                Msg::Request(req) => self.queue.push(req),
                _ => self.count.checked_add(1).unwrap(),
            }
        }
    "#;
    let findings = lint_source("handle.rs", src, FULL);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"msg-wildcard"), "rules: {rules:?}");
    assert!(rules.contains(&"no-unwrap"), "rules: {rules:?}");
}
