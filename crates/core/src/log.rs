//! The per-replica command log (§3.3).
//!
//! "Every service process has ... a log of commands that it uses throughout
//! an execution to remember executed commands. This log is important to
//! guarantee that once a new leader emerges, this leader learns about all
//! previously accepted requests."
//!
//! The log tracks, per instance, the highest-ballot decree *accepted*, and
//! separately which instances are known *chosen*. Chosen decrees are
//! applied to the service strictly in instance order; `chosen_prefix` is
//! the contiguous applied prefix, and `known_chosen_above` holds instances
//! known chosen but blocked behind a hole (the paper's "knows requests 1–87
//! and 90" situation).

use crate::ballot::Ballot;
use crate::command::{AcceptedEntry, Decree};
use crate::storage::DurableState;
use crate::types::Instance;
use std::collections::{BTreeMap, BTreeSet};

/// In-memory mirror of the durable log plus chosen-tracking.
#[derive(Clone, Debug, Default)]
pub struct ReplicaLog {
    accepted: BTreeMap<Instance, (Ballot, Decree)>,
    chosen_prefix: Instance,
    known_chosen_above: BTreeSet<Instance>,
}

impl ReplicaLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> ReplicaLog {
        ReplicaLog::default()
    }

    /// Rebuild from reloaded durable state. Entries at or below the durable
    /// chosen prefix are known chosen (we only persist the prefix after
    /// applying), so the prefix is restored directly.
    #[must_use]
    pub fn from_durable(d: &DurableState) -> ReplicaLog {
        ReplicaLog {
            accepted: d.accepted.clone(),
            chosen_prefix: d.chosen_prefix,
            known_chosen_above: BTreeSet::new(),
        }
    }

    /// Contiguous chosen-and-applied prefix.
    #[must_use]
    pub fn chosen_prefix(&self) -> Instance {
        self.chosen_prefix
    }

    /// Record an accepted decree (highest ballot wins; the caller has
    /// already checked the promise invariant).
    pub fn record_accept(&mut self, i: Instance, b: Ballot, d: Decree) {
        self.accepted.insert(i, (b, d));
    }

    /// The accepted entry for an instance, if any.
    #[must_use]
    pub fn get(&self, i: Instance) -> Option<&(Ballot, Decree)> {
        self.accepted.get(&i)
    }

    /// Mark instance `i` as known chosen (our accepted entry for `i` *is*
    /// the chosen decree). No-op if already applied.
    pub fn mark_chosen(&mut self, i: Instance) {
        if i > self.chosen_prefix {
            debug_assert!(self.accepted.contains_key(&i), "mark_chosen without entry");
            self.known_chosen_above.insert(i);
        }
    }

    /// Whether `i` is known chosen (applied or pending application).
    #[must_use]
    pub fn is_known_chosen(&self, i: Instance) -> bool {
        i <= self.chosen_prefix || self.known_chosen_above.contains(&i)
    }

    /// The next instance whose decree can be applied: the instance right
    /// above the prefix, if it is known chosen. Applying in this order is
    /// what makes state shipping sound — "the state after executing the
    /// i-th request depends on all the requests executed previously".
    #[must_use]
    pub fn next_applicable(&self) -> Option<(Instance, &Decree)> {
        let next = self.chosen_prefix.next();
        if self.known_chosen_above.contains(&next) {
            self.accepted.get(&next).map(|(_, d)| (next, d))
        } else {
            None
        }
    }

    /// Advance the prefix past `i` after the caller applied its decree.
    pub fn advance_applied(&mut self, i: Instance) {
        debug_assert_eq!(i, self.chosen_prefix.next(), "apply out of order");
        self.known_chosen_above.remove(&i);
        self.chosen_prefix = i;
    }

    /// Instances above the prefix known chosen — the `known_above` field of
    /// an outgoing `Prepare`.
    #[must_use]
    pub fn known_above(&self) -> Vec<Instance> {
        self.known_chosen_above.iter().copied().collect()
    }

    /// Every retained accepted entry, in instance order. Used by the model
    /// checker (`crates/check`) to fingerprint and compare log state.
    pub fn iter_accepted(&self) -> impl Iterator<Item = (Instance, &(Ballot, Decree))> + '_ {
        self.accepted.iter().map(|(i, e)| (*i, e))
    }

    /// Highest instance with any accepted entry (or the prefix if none).
    #[must_use]
    pub fn max_instance(&self) -> Instance {
        self.accepted
            .keys()
            .next_back()
            .copied()
            .unwrap_or(self.chosen_prefix)
            .max(self.chosen_prefix)
    }

    /// Accepted entries for instances strictly above `floor`, excluding the
    /// instances in `skip` — what a promiser sends a candidate.
    #[must_use]
    pub fn entries_above(&self, floor: Instance, skip: &[Instance]) -> Vec<AcceptedEntry> {
        self.accepted
            .range(floor.next()..)
            .filter(|(i, _)| !skip.contains(i))
            .map(|(i, (b, d))| AcceptedEntry {
                instance: *i,
                ballot: *b,
                decree: d.clone(),
            })
            .collect()
    }

    /// Chosen decrees in `(have, upto]`, if the log still holds *all* of
    /// them — used to serve catch-up from the log instead of a snapshot.
    #[must_use]
    pub fn chosen_range(&self, have: Instance, upto: Instance) -> Option<Vec<(Instance, Decree)>> {
        let mut out = Vec::new();
        let mut i = have.next();
        while i <= upto {
            if !self.is_known_chosen(i) {
                return None;
            }
            match self.accepted.get(&i) {
                Some((_, d)) => out.push((i, d.clone())),
                None => return None,
            }
            i = i.next();
        }
        Some(out)
    }

    /// Jump the chosen prefix forward to `upto` after installing a
    /// snapshot that covers every instance `<= upto`. No-op if the log is
    /// already at or past `upto`.
    pub fn force_prefix(&mut self, upto: Instance) {
        if upto > self.chosen_prefix {
            self.chosen_prefix = upto;
            self.known_chosen_above = self.known_chosen_above.split_off(&upto.next());
        }
    }

    /// Drop entries for instances `<= upto` (covered by a checkpoint).
    pub fn truncate_upto(&mut self, upto: Instance) {
        self.accepted = self.accepted.split_off(&upto.next());
        self.known_chosen_above = self.known_chosen_above.split_off(&upto.next());
    }

    /// Number of retained accepted entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accepted.len()
    }

    /// Whether the log holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accepted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ProcessId;

    fn b(r: u64) -> Ballot {
        Ballot::new(r, ProcessId(0))
    }

    fn filled(upto: u64) -> ReplicaLog {
        let mut log = ReplicaLog::new();
        for i in 1..=upto {
            log.record_accept(Instance(i), b(1), Decree::noop());
            log.mark_chosen(Instance(i));
        }
        while let Some((i, _)) = log.next_applicable().map(|(i, d)| (i, d.clone())) {
            log.advance_applied(i);
        }
        log
    }

    #[test]
    fn applies_strictly_in_order() {
        let mut log = ReplicaLog::new();
        log.record_accept(Instance(1), b(1), Decree::noop());
        log.record_accept(Instance(2), b(1), Decree::noop());
        log.mark_chosen(Instance(2));
        // Instance 2 is chosen but 1 is not yet: nothing applicable.
        assert!(log.next_applicable().is_none());
        log.mark_chosen(Instance(1));
        let (i, _) = log.next_applicable().unwrap();
        assert_eq!(i, Instance(1));
        log.advance_applied(Instance(1));
        let (i, _) = log.next_applicable().unwrap();
        assert_eq!(i, Instance(2));
        log.advance_applied(Instance(2));
        assert_eq!(log.chosen_prefix(), Instance(2));
        assert!(log.next_applicable().is_none());
    }

    #[test]
    fn known_above_reports_holes() {
        // The paper's scenario: knows 1..=87 and 90.
        let mut log = filled(87);
        log.record_accept(Instance(90), b(1), Decree::noop());
        log.mark_chosen(Instance(90));
        assert_eq!(log.chosen_prefix(), Instance(87));
        assert_eq!(log.known_above(), vec![Instance(90)]);
        assert!(log.is_known_chosen(Instance(90)));
        assert!(!log.is_known_chosen(Instance(88)));
    }

    #[test]
    fn entries_above_skips_requested() {
        let mut log = ReplicaLog::new();
        for i in 5..=9 {
            log.record_accept(Instance(i), b(2), Decree::noop());
        }
        let got = log.entries_above(Instance(5), &[Instance(7)]);
        let idx: Vec<_> = got.iter().map(|e| e.instance).collect();
        assert_eq!(idx, vec![Instance(6), Instance(8), Instance(9)]);
    }

    #[test]
    fn chosen_range_requires_full_coverage() {
        let log = filled(10);
        let r = log.chosen_range(Instance(3), Instance(6)).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].0, Instance(4));
        // Beyond what is chosen: unavailable.
        assert!(log.chosen_range(Instance(3), Instance(11)).is_none());
    }

    #[test]
    fn truncate_drops_prefix_entries() {
        let mut log = filled(10);
        assert_eq!(log.len(), 10);
        log.truncate_upto(Instance(8));
        assert_eq!(log.len(), 2);
        assert!(log.get(Instance(8)).is_none());
        assert!(log.get(Instance(9)).is_some());
        // Catch-up from below the truncation point must now fail over to a
        // snapshot.
        assert!(log.chosen_range(Instance(5), Instance(10)).is_none());
        assert!(log.chosen_range(Instance(8), Instance(10)).is_some());
    }

    #[test]
    fn max_instance_tracks_log_and_prefix() {
        let mut log = filled(4);
        assert_eq!(log.max_instance(), Instance(4));
        log.record_accept(Instance(9), b(2), Decree::noop());
        assert_eq!(log.max_instance(), Instance(9));
        log.truncate_upto(Instance(9));
        assert_eq!(log.max_instance(), Instance(4).max(log.chosen_prefix()));
    }

    #[test]
    fn from_durable_restores_prefix() {
        let mut d = DurableState {
            chosen_prefix: Instance(3),
            ..DurableState::default()
        };
        d.accepted.insert(Instance(4), (b(2), Decree::noop()));
        let log = ReplicaLog::from_durable(&d);
        assert_eq!(log.chosen_prefix(), Instance(3));
        assert!(log.get(Instance(4)).is_some());
        assert!(!log.is_known_chosen(Instance(4)));
        assert!(log.is_known_chosen(Instance(3)));
    }
}
