//! Protocol messages exchanged between clients and replicas.
//!
//! One flat enum keeps the transports simple: both the simulator and the
//! real TCP transport ship `Msg` values end to end.

use crate::ballot::Ballot;
use crate::command::{AcceptedEntry, Decree, SnapshotBlob};
use crate::request::{Reply, Request, RequestId};
use crate::types::{GroupId, Instance};

/// A protocol message.
#[derive(Clone, PartialEq, Hash, Debug)]
pub enum Msg {
    // ----- client <-> replicas ------------------------------------------
    /// Client request; clients send it to **all** replicas (§3.3: "Clients
    /// send requests to all service replicas so that they do not need to
    /// know which replica is the current leader").
    Request(Request),
    /// Reply from the leader (only the leader replies).
    Reply(Reply),

    // ----- Paxos: prepare phase -----------------------------------------
    /// A candidate declares ballot `ballot` and asks for promises. One
    /// message covers *all* open instances (§3.3): the candidate states the
    /// prefix it already knows chosen (`chosen_prefix`) and any instances
    /// above it that it also knows (`known_above`, e.g. the "90" in the
    /// paper's 88/89/90 example); promisers fill in the rest.
    Prepare {
        /// Candidate's ballot.
        ballot: Ballot,
        /// All instances `<= chosen_prefix` are known chosen by the candidate.
        chosen_prefix: Instance,
        /// Additional instances above the prefix known chosen by the candidate.
        known_above: Vec<Instance>,
    },
    /// Positive answer to a [`Msg::Prepare`].
    Promise {
        /// The ballot being promised.
        ballot: Ballot,
        /// The promiser's own contiguous chosen prefix.
        chosen_prefix: Instance,
        /// Accepted entries the candidate may be missing (only for
        /// instances not covered by `snapshot` and not known chosen by the
        /// candidate).
        accepted: Vec<AcceptedEntry>,
        /// If the promiser's chosen prefix is ahead of the candidate's, its
        /// full state so the candidate can catch up — the paper's "it sends
        /// the leader ... the state of the latest proposal it knows".
        snapshot: Option<SnapshotBlob>,
    },
    /// Negative answer: the receiver already promised a higher ballot.
    /// Tells the candidate to back off (and who outbid it).
    PrepareNack {
        /// Ballot that was rejected.
        ballot: Ballot,
        /// The higher ballot the receiver is bound to.
        promised: Ballot,
    },

    // ----- Paxos: accept phase ------------------------------------------
    /// Accept request. Normally a single `(instance, decree)`; during
    /// recovery one message carries the whole batch of re-proposed and
    /// gap-filling decrees (§3.3: "executes the accept phases of instances
    /// 88, 89, and 91 by sending one single message").
    Accept {
        /// Leader's ballot.
        ballot: Ballot,
        /// Proposals, ordered by instance.
        entries: Vec<(Instance, Decree)>,
    },
    /// Acknowledgement of an [`Msg::Accept`].
    Accepted {
        /// Ballot the acceptor accepted under.
        ballot: Ballot,
        /// Instances acknowledged.
        instances: Vec<Instance>,
    },
    /// Rejection: the acceptor has promised a higher ballot.
    AcceptNack {
        /// Ballot that was rejected.
        ballot: Ballot,
        /// The higher ballot the acceptor is bound to.
        promised: Ballot,
    },
    /// Commit notification: every instance `<= upto` proposed under
    /// `ballot` is chosen. Receivers holding the matching accepted entries
    /// apply them in order; anyone missing entries requests catch-up.
    Chosen {
        /// Leader's ballot.
        ballot: Ballot,
        /// Chosen prefix under this leadership.
        upto: Instance,
    },

    // ----- X-Paxos (§3.4) -------------------------------------------------
    /// Confirmation vote for a read: sent by every replica, upon receiving
    /// a read request from a client, to the process with the highest ballot
    /// it has accepted. The leader replies to the client only after a
    /// majority confirms — guaranteeing only the *latest* leader answers.
    Confirm {
        /// The ballot the sender believes is the current leadership.
        ballot: Ballot,
        /// The read being confirmed.
        read: RequestId,
    },
    /// Batched-confirm round request (extension, §3.4 amortized): the
    /// leader seals every open read into confirm epoch `epoch` and asks
    /// followers to validate the whole epoch with one answer instead of one
    /// [`Msg::Confirm`] per read. The round launches the moment a read
    /// arrives with no round in flight, so a lone read never waits on a
    /// batching window.
    ConfirmReq {
        /// Leader's ballot.
        ballot: Ballot,
        /// The confirm epoch being sealed; monotonically increasing per
        /// leadership.
        epoch: u64,
        /// True when the round covers more than one read — tells followers
        /// the leader is under read load, so they should stop sending
        /// per-read [`Msg::Confirm`]s (the traffic this extension removes)
        /// until a single-read round lifts the suppression.
        backlog: bool,
    },
    /// A follower's answer to a [`Msg::ConfirmReq`]: one message validates
    /// *every* read the leader opened in epoch `epoch` or earlier —
    /// "I have accepted no ballot higher than `ballot`" holds at a point
    /// after all those reads arrived, which is exactly what a per-read
    /// confirm certifies.
    ConfirmBatch {
        /// The ballot being confirmed (must match the sender's promise).
        ballot: Ballot,
        /// The epoch being confirmed.
        epoch: u64,
    },

    // ----- liveness / leader election -------------------------------------
    /// Leader heartbeat; doubles as a `Chosen` retransmission, and its
    /// absence is what followers' failure detectors time out on.
    Heartbeat {
        /// Leader's ballot.
        ballot: Ballot,
        /// Leader's chosen prefix.
        chosen: Instance,
        /// Monotonic heartbeat number, echoed by lease acks so the leader
        /// can anchor a lease to the heartbeat's *send* time.
        hb_seq: u64,
    },
    /// A follower's acknowledgement of a heartbeat — only sent in
    /// [`crate::config::ReadMode::Lease`] mode; a majority of acks for one
    /// heartbeat grants the leader a read lease.
    HeartbeatAck {
        /// The leadership being acknowledged.
        ballot: Ballot,
        /// Which heartbeat.
        hb_seq: u64,
    },

    // ----- catch-up / state transfer ---------------------------------------
    /// A lagging replica asks the leader for everything after `have`.
    CatchUpReq {
        /// The requester's contiguous chosen prefix.
        have: Instance,
    },
    /// Catch-up payload: either the missing chosen decrees (when the leader
    /// still has them in its log) or a full snapshot (when truncated).
    CatchUp {
        /// Leader's ballot.
        ballot: Ballot,
        /// Missing chosen decrees, ordered by instance.
        entries: Vec<(Instance, Decree)>,
        /// Full snapshot if the log no longer covers the gap.
        snapshot: Option<SnapshotBlob>,
        /// Leader's chosen prefix (entries/snapshot reach this point).
        upto: Instance,
    },
    /// One chunk of a chunked snapshot transfer (incremental-checkpoint
    /// path). When the leader's latest checkpoint was taken in chunks it
    /// streams those chunks to the lagging replica instead of one giant
    /// [`Msg::CatchUp`] snapshot; the receiver reassembles `total` chunks
    /// (matched by `upto`) and installs the result. Chunk 0 carries the
    /// snapshot's dedup table; the rest leave it empty.
    CatchUpChunk {
        /// Leader's ballot.
        ballot: Ballot,
        /// Snapshot coverage: state reflects every instance `<= upto`.
        upto: Instance,
        /// This chunk's index, `0..total`.
        seq: u32,
        /// Total chunks in the transfer.
        total: u32,
        /// Snapshot dedup table (chunk 0 only; empty otherwise).
        dedup: Vec<crate::command::DedupEntry>,
        /// Raw snapshot bytes: chunk `seq` of the canonical encoding.
        data: bytes::Bytes,
    },

    // ----- multi-group sharding (extension) --------------------------------
    /// Envelope tagging `inner` with the consensus group it belongs to.
    /// Only emitted by multi-group deployments (`n_groups > 1`); a
    /// single-group deployment never wraps, so its byte stream is
    /// identical to the unsharded protocol. Never nested.
    Grouped {
        /// Destination consensus group.
        group: GroupId,
        /// The protocol message, unchanged.
        inner: Box<Msg>,
    },
}

impl Msg {
    /// Short tag for tracing and metrics.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Msg::Request(_) => "request",
            Msg::Reply(_) => "reply",
            Msg::Prepare { .. } => "prepare",
            Msg::Promise { .. } => "promise",
            Msg::PrepareNack { .. } => "prepare_nack",
            Msg::Accept { .. } => "accept",
            Msg::Accepted { .. } => "accepted",
            Msg::AcceptNack { .. } => "accept_nack",
            Msg::Chosen { .. } => "chosen",
            Msg::Confirm { .. } => "confirm",
            Msg::ConfirmReq { .. } => "confirm_req",
            Msg::ConfirmBatch { .. } => "confirm_batch",
            Msg::Heartbeat { .. } => "heartbeat",
            Msg::HeartbeatAck { .. } => "heartbeat_ack",
            Msg::CatchUpReq { .. } => "catchup_req",
            Msg::CatchUp { .. } => "catchup",
            Msg::CatchUpChunk { .. } => "catchup_chunk",
            // The envelope is transparent for tracing: what matters is the
            // protocol message it carries.
            Msg::Grouped { inner, .. } => inner.tag(),
        }
    }

    /// Whether this message belongs to the replica-to-replica coordination
    /// traffic (as opposed to client traffic). Used by the metrics layer to
    /// report replication overhead separately.
    #[must_use]
    pub fn is_coordination(&self) -> bool {
        match self {
            Msg::Request(_) | Msg::Reply(_) => false,
            Msg::Grouped { inner, .. } => inner.is_coordination(),
            Msg::Prepare { .. }
            | Msg::Promise { .. }
            | Msg::PrepareNack { .. }
            | Msg::Accept { .. }
            | Msg::Accepted { .. }
            | Msg::AcceptNack { .. }
            | Msg::Chosen { .. }
            | Msg::Confirm { .. }
            | Msg::ConfirmReq { .. }
            | Msg::ConfirmBatch { .. }
            | Msg::Heartbeat { .. }
            | Msg::HeartbeatAck { .. }
            | Msg::CatchUpReq { .. }
            | Msg::CatchUp { .. }
            | Msg::CatchUpChunk { .. } => true,
        }
    }

    /// Approximate on-the-wire size in bytes (headers + payloads). Used by
    /// the simulator's bandwidth model; tracks the transport codec closely
    /// enough for transmission-delay purposes without depending on it.
    #[must_use]
    pub fn approx_wire_len(&self) -> usize {
        const HDR: usize = 8; // frame length + tag + slack
        fn req_len(r: &Request) -> usize {
            16 + 1 + 13 + 4 + r.op.len()
        }
        fn reply_body_len(b: &crate::request::ReplyBody) -> usize {
            match b {
                crate::request::ReplyBody::Ok(p) => 5 + p.len(),
                _ => 16,
            }
        }
        fn update_len(u: &crate::command::StateUpdate) -> usize {
            1 + u.payload_len() + 4
        }
        fn decree_len(d: &Decree) -> usize {
            4 + d
                .entries
                .iter()
                .map(|e| {
                    let cmd = match &e.cmd {
                        crate::command::Command::Noop => 1,
                        crate::command::Command::Req(r) => 1 + req_len(r),
                        crate::command::Command::TxnCommit { ops, .. } => {
                            29 + ops.iter().map(req_len).sum::<usize>()
                        }
                    };
                    cmd + update_len(&e.update) + reply_body_len(&e.reply)
                })
                .sum::<usize>()
        }
        fn snapshot_len(s: &Option<SnapshotBlob>) -> usize {
            match s {
                None => 1,
                Some(s) => 13 + s.app.len() + s.dedup.len() * 34,
            }
        }
        HDR + match self {
            Msg::Request(r) => req_len(r),
            Msg::Reply(r) => 20 + reply_body_len(&r.body),
            Msg::Prepare { known_above, .. } => 20 + 4 + known_above.len() * 8,
            Msg::Promise {
                accepted, snapshot, ..
            } => {
                24 + accepted
                    .iter()
                    .map(|e| 20 + decree_len(&e.decree))
                    .sum::<usize>()
                    + snapshot_len(snapshot)
            }
            Msg::PrepareNack { .. } | Msg::AcceptNack { .. } => 24,
            Msg::Accept { entries, .. } => {
                16 + entries
                    .iter()
                    .map(|(_, d)| 8 + decree_len(d))
                    .sum::<usize>()
            }
            Msg::Accepted { instances, .. } => 16 + instances.len() * 8,
            Msg::Chosen { .. } => 20,
            Msg::Heartbeat { .. } => 28,
            Msg::HeartbeatAck { .. } => 28,
            Msg::Confirm { .. } => 28,
            // ballot (12) + epoch (8) + backlog flag.
            Msg::ConfirmReq { .. } => 21,
            Msg::ConfirmBatch { .. } => 20,
            Msg::CatchUpReq { .. } => 8,
            Msg::CatchUp {
                entries, snapshot, ..
            } => {
                28 + entries
                    .iter()
                    .map(|(_, d)| 8 + decree_len(d))
                    .sum::<usize>()
                    + snapshot_len(snapshot)
            }
            // ballot (12) + upto (8) + seq/total (8) + dedup + data.
            Msg::CatchUpChunk { dedup, data, .. } => 28 + dedup.len() * 34 + 4 + data.len(),
            // The envelope adds its group id on top of the inner message's
            // own length (whose HDR already covers the frame).
            Msg::Grouped { inner, .. } => 4 + inner.approx_wire_len() - HDR,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ReplyBody, Request, RequestKind};
    use crate::types::{ClientId, ProcessId, Seq};
    use bytes::Bytes;

    #[test]
    fn tags_are_distinct_for_client_and_coordination() {
        let req = Msg::Request(Request::new(
            RequestId::new(ClientId(1), Seq(1)),
            RequestKind::Read,
            Bytes::new(),
        ));
        assert_eq!(req.tag(), "request");
        assert!(!req.is_coordination());

        let rep = Msg::Reply(Reply {
            id: RequestId::new(ClientId(1), Seq(1)),
            leader: ProcessId(0),
            body: ReplyBody::Empty,
        });
        assert!(!rep.is_coordination());

        let hb = Msg::Heartbeat {
            ballot: Ballot::ZERO,
            chosen: Instance::ZERO,
            hb_seq: 0,
        };
        assert!(hb.is_coordination());
        assert_eq!(hb.tag(), "heartbeat");
    }

    #[test]
    fn wire_len_scales_with_payload() {
        let small = Msg::Request(Request::new(
            RequestId::new(ClientId(1), Seq(1)),
            RequestKind::Write,
            Bytes::from(vec![0u8; 16]),
        ));
        let big = Msg::Request(Request::new(
            RequestId::new(ClientId(1), Seq(1)),
            RequestKind::Write,
            Bytes::from(vec![0u8; 64 * 1024]),
        ));
        assert!(big.approx_wire_len() > small.approx_wire_len() + 64 * 1024 - 64);
        // Control messages are small.
        let hb = Msg::Heartbeat {
            ballot: Ballot::ZERO,
            chosen: Instance::ZERO,
            hb_seq: 0,
        };
        assert!(hb.approx_wire_len() < 64);
    }

    #[test]
    fn wire_len_counts_accept_state_payloads() {
        use crate::command::{Command, Decree, StateUpdate};
        use crate::request::ReplyBody;
        let accept = |state: usize| Msg::Accept {
            ballot: Ballot::ZERO,
            entries: vec![(
                Instance(1),
                Decree::single(
                    Command::Noop,
                    StateUpdate::Full(Bytes::from(vec![0u8; state])),
                    ReplyBody::Empty,
                ),
            )],
        };
        let small = accept(8).approx_wire_len();
        let big = accept(32 * 1024).approx_wire_len();
        assert!(big - small >= 32 * 1024 - 8);
    }

    #[test]
    fn grouped_envelope_is_transparent() {
        use crate::types::GroupId;
        let inner = Msg::Heartbeat {
            ballot: Ballot::ZERO,
            chosen: Instance::ZERO,
            hb_seq: 0,
        };
        let wrapped = Msg::Grouped {
            group: GroupId(3),
            inner: Box::new(inner.clone()),
        };
        assert_eq!(wrapped.tag(), "heartbeat");
        assert!(wrapped.is_coordination());
        // Only the 4-byte group id on top of the inner frame.
        assert_eq!(wrapped.approx_wire_len(), inner.approx_wire_len() + 4);

        let req = Msg::Request(Request::new(
            RequestId::new(ClientId(1), Seq(1)),
            RequestKind::Write,
            Bytes::new(),
        ));
        let wrapped_req = Msg::Grouped {
            group: GroupId::ZERO,
            inner: Box::new(req),
        };
        assert!(!wrapped_req.is_coordination());
        assert_eq!(wrapped_req.tag(), "request");
    }
}
