//! Client-side protocol core (sans-io).
//!
//! Per §3.3, a client sends each request to **all** service replicas (so it
//! never needs to know who the leader is) and only the leader answers. The
//! client keeps at most one request outstanding, retransmits on timeout,
//! and matches replies by request id, which makes retries idempotent end
//! to end.

use crate::action::{Action, TimerKind};
use crate::msg::Msg;
use crate::request::{Reply, ReplyBody, Request, RequestId, RequestKind, TxnCtl};
use crate::types::{Addr, ClientId, Dur, ProcessId, Seq, Time, TxnId};
use bytes::Bytes;

/// A finished operation, as reported to the embedding workload driver.
#[derive(Clone, Debug)]
pub struct CompletedOp {
    /// The request that completed.
    pub req: Request,
    /// The leader's reply.
    pub body: ReplyBody,
    /// Leader that answered.
    pub leader: ProcessId,
    /// Round-trip time from first transmission to reply.
    pub rtt: Dur,
    /// Number of retransmissions that were needed.
    pub retries: u32,
}

#[derive(Clone, Debug)]
struct Pending {
    req: Request,
    first_sent: Time,
    retries: u32,
}

/// Sans-io client state machine.
#[derive(Clone, Debug)]
pub struct ClientCore {
    id: ClientId,
    n_replicas: usize,
    next_seq: Seq,
    next_txn: TxnId,
    retry_timeout: Dur,
    outstanding: Option<Pending>,
}

impl ClientCore {
    /// A client talking to a group of `n_replicas` replicas.
    #[must_use]
    pub fn new(id: ClientId, n_replicas: usize, retry_timeout: Dur) -> ClientCore {
        ClientCore {
            id,
            n_replicas,
            next_seq: Seq(1),
            next_txn: TxnId(1),
            retry_timeout,
            outstanding: None,
        }
    }

    /// This client's id.
    #[must_use]
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Whether a request is currently in flight.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.outstanding.is_some()
    }

    /// Allocate the next request id.
    pub fn next_request_id(&mut self) -> RequestId {
        let id = RequestId::new(self.id, self.next_seq);
        self.next_seq = self.next_seq.next();
        id
    }

    /// Allocate a fresh transaction id.
    pub fn next_txn_id(&mut self) -> TxnId {
        let t = self.next_txn;
        self.next_txn = TxnId(t.0 + 1);
        t
    }

    /// Build and submit a plain request. Panics if one is already
    /// outstanding (the closed-loop discipline of the paper's clients:
    /// "A client will not send a new request until it receives the reply
    /// associated with the previous one").
    pub fn submit_op(&mut self, kind: RequestKind, op: Bytes, now: Time) -> Vec<Action> {
        let id = self.next_request_id();
        self.submit(Request::new(id, kind, op), now)
    }

    /// Submit a pre-built request (used for transaction traffic).
    pub fn submit(&mut self, req: Request, now: Time) -> Vec<Action> {
        assert!(
            self.outstanding.is_none(),
            "client {} already has an outstanding request",
            self.id
        );
        self.outstanding = Some(Pending {
            req: req.clone(),
            first_sent: now,
            retries: 0,
        });
        let mut actions = self.broadcast(req);
        actions.push(Action::timer(TimerKind::ClientRetry, self.retry_timeout));
        actions
    }

    fn broadcast(&self, req: Request) -> Vec<Action> {
        (0..self.n_replicas)
            .map(|r| Action::send(Addr::Replica(ProcessId(r as u32)), Msg::Request(req.clone())))
            .collect()
    }

    /// Handle an incoming message. Returns the completed operation when the
    /// outstanding request is answered.
    pub fn on_message(&mut self, msg: Msg, now: Time) -> (Option<CompletedOp>, Vec<Action>) {
        let Msg::Reply(reply) = msg else {
            return (None, Vec::new());
        };
        self.on_reply(reply, now)
    }

    fn on_reply(&mut self, reply: Reply, now: Time) -> (Option<CompletedOp>, Vec<Action>) {
        match &self.outstanding {
            Some(p) if p.req.id == reply.id => {
                let p = self.outstanding.take().expect("checked above");
                let done = CompletedOp {
                    req: p.req,
                    body: reply.body,
                    leader: reply.leader,
                    rtt: now.since(p.first_sent),
                    retries: p.retries,
                };
                (
                    Some(done),
                    vec![Action::CancelTimer {
                        kind: TimerKind::ClientRetry,
                    }],
                )
            }
            // Stale duplicate (a retransmitted earlier request answered
            // twice) or a reply while idle: ignore.
            _ => (None, Vec::new()),
        }
    }

    /// Handle a timer firing: retransmit the outstanding request to all
    /// replicas and re-arm.
    pub fn on_timer(&mut self, kind: TimerKind, _now: Time) -> Vec<Action> {
        if kind != TimerKind::ClientRetry {
            return Vec::new();
        }
        let Some(p) = &mut self.outstanding else {
            return Vec::new();
        };
        p.retries += 1;
        let req = p.req.clone();
        let mut actions = self.broadcast(req);
        actions.push(Action::timer(TimerKind::ClientRetry, self.retry_timeout));
        actions
    }
}

/// Outcome of driving a whole transaction to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnOutcome {
    /// All operations executed and the commit was acknowledged.
    Committed,
    /// The transaction aborted (reason attached).
    Aborted(crate::request::AbortReason),
}

/// A scripted transaction: the ordered operations to run, then commit.
#[derive(Clone, Debug)]
pub struct TxnScript {
    /// Operations as `(kind, payload)` pairs, e.g. 2 reads + 1 write for
    /// the paper's 3-request read/write transactions.
    pub ops: Vec<(RequestKind, Bytes)>,
}

impl TxnScript {
    /// The evaluation's read/write transaction shape: `reads` reads
    /// followed by `writes` writes.
    #[must_use]
    pub fn read_write(reads: usize, writes: usize) -> TxnScript {
        let mut ops = Vec::with_capacity(reads + writes);
        ops.extend((0..reads).map(|_| (RequestKind::Read, Bytes::new())));
        ops.extend((0..writes).map(|_| (RequestKind::Write, Bytes::new())));
        TxnScript { ops }
    }

    /// The evaluation's write-only transaction shape.
    #[must_use]
    pub fn write_only(writes: usize) -> TxnScript {
        TxnScript {
            ops: (0..writes).map(|_| (RequestKind::Write, Bytes::new())).collect(),
        }
    }
}

/// Drives one transaction through a [`ClientCore`], one operation at a
/// time, finishing with the commit.
#[derive(Clone, Debug)]
pub struct TxnDriver {
    script: TxnScript,
    txn: TxnId,
    next_op: usize,
    started: Option<Time>,
    finished: Option<TxnOutcome>,
}

impl TxnDriver {
    /// Start driving `script` as transaction `txn`.
    #[must_use]
    pub fn new(script: TxnScript, txn: TxnId) -> TxnDriver {
        TxnDriver {
            script,
            txn,
            next_op: 0,
            started: None,
            finished: None,
        }
    }

    /// The transaction id.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Whether the driver has issued everything and seen the final reply.
    #[must_use]
    pub fn outcome(&self) -> Option<&TxnOutcome> {
        self.finished.as_ref()
    }

    /// Issue the next step (an operation or the commit) through `client`.
    /// Returns `None` if the transaction already finished.
    pub fn step(&mut self, client: &mut ClientCore, now: Time) -> Option<Vec<Action>> {
        if self.finished.is_some() {
            return None;
        }
        self.started.get_or_insert(now);
        let id = client.next_request_id();
        let req = if self.next_op < self.script.ops.len() {
            let (kind, op) = self.script.ops[self.next_op].clone();
            Request::txn_op(id, kind, self.txn, op)
        } else {
            Request::txn_commit(id, self.txn, self.script.ops.len() as u32)
        };
        Some(client.submit(req, now))
    }

    /// Feed a completed operation back. Returns the outcome once final.
    pub fn on_complete(&mut self, done: &CompletedOp) -> Option<TxnOutcome> {
        match &done.body {
            ReplyBody::TxnAborted { txn, reason } if *txn == self.txn => {
                self.finished = Some(TxnOutcome::Aborted(*reason));
            }
            ReplyBody::TxnCommitted { txn } if *txn == self.txn => {
                self.finished = Some(TxnOutcome::Committed);
            }
            _ => {
                // An ordinary op reply: move to the next step.
                if matches!(done.req.txn, Some(TxnCtl::Op { txn }) if txn == self.txn) {
                    self.next_op += 1;
                }
            }
        }
        self.finished.clone()
    }

    /// Total steps (ops + commit) this script issues.
    #[must_use]
    pub fn total_steps(&self) -> usize {
        self.script.ops.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(id: RequestId, body: ReplyBody) -> Msg {
        Msg::Reply(Reply {
            id,
            leader: ProcessId(0),
            body,
        })
    }

    #[test]
    fn submit_broadcasts_to_all_replicas_and_arms_retry() {
        let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
        let actions = c.submit_op(RequestKind::Write, Bytes::new(), Time::ZERO);
        let sends = actions
            .iter()
            .filter(|a| matches!(a, Action::Send { .. }))
            .count();
        assert_eq!(sends, 3, "request goes to all replicas");
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SetTimer { kind: TimerKind::ClientRetry, .. })));
        assert!(c.is_busy());
    }

    #[test]
    fn reply_completes_and_measures_rtt() {
        let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
        let actions = c.submit_op(RequestKind::Read, Bytes::new(), Time(1_000));
        let id = match &actions[0] {
            Action::Send {
                msg: Msg::Request(r),
                ..
            } => r.id,
            other => panic!("unexpected {other:?}"),
        };
        let (done, actions) =
            c.on_message(reply(id, ReplyBody::Ok(Bytes::new())), Time(5_000));
        let done = done.expect("completed");
        assert_eq!(done.rtt, Dur(4_000));
        assert_eq!(done.retries, 0);
        assert!(!c.is_busy());
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::CancelTimer { kind: TimerKind::ClientRetry })));
    }

    #[test]
    fn stale_reply_is_ignored() {
        let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
        c.submit_op(RequestKind::Read, Bytes::new(), Time::ZERO);
        let stale = RequestId::new(ClientId(1), Seq(999));
        let (done, actions) = c.on_message(reply(stale, ReplyBody::Empty), Time(1));
        assert!(done.is_none());
        assert!(actions.is_empty());
        assert!(c.is_busy());
    }

    #[test]
    fn retry_rebroadcasts() {
        let mut c = ClientCore::new(ClientId(1), 5, Dur::from_millis(100));
        c.submit_op(RequestKind::Write, Bytes::new(), Time::ZERO);
        let actions = c.on_timer(TimerKind::ClientRetry, Time(1));
        let sends = actions
            .iter()
            .filter(|a| matches!(a, Action::Send { .. }))
            .count();
        assert_eq!(sends, 5);
        // Completion then reports one retry.
        let id = RequestId::new(ClientId(1), Seq(1));
        let (done, _) = c.on_message(reply(id, ReplyBody::Ok(Bytes::new())), Time(2));
        assert_eq!(done.unwrap().retries, 1);
    }

    #[test]
    fn txn_driver_walks_ops_then_commit() {
        let mut c = ClientCore::new(ClientId(2), 3, Dur::from_millis(100));
        let mut d = TxnDriver::new(TxnScript::read_write(2, 1), TxnId(1));
        assert_eq!(d.total_steps(), 4);

        for step in 0..4 {
            let actions = d.step(&mut c, Time(step)).expect("more steps");
            let req = match &actions[0] {
                Action::Send {
                    msg: Msg::Request(r),
                    ..
                } => r.clone(),
                other => panic!("unexpected {other:?}"),
            };
            if step < 3 {
                assert!(req.is_txn_op());
            } else {
                assert!(req.txn.unwrap().is_commit());
            }
            let body = if step < 3 {
                ReplyBody::Ok(Bytes::new())
            } else {
                ReplyBody::TxnCommitted { txn: TxnId(1) }
            };
            let (done, _) = c.on_message(reply(req.id, body), Time(step + 10));
            let outcome = d.on_complete(&done.unwrap());
            if step < 3 {
                assert!(outcome.is_none());
            } else {
                assert_eq!(outcome, Some(TxnOutcome::Committed));
            }
        }
        assert!(d.step(&mut c, Time(99)).is_none(), "finished");
    }

    #[test]
    fn txn_driver_reports_abort() {
        let mut c = ClientCore::new(ClientId(2), 3, Dur::from_millis(100));
        let mut d = TxnDriver::new(TxnScript::write_only(2), TxnId(4));
        let actions = d.step(&mut c, Time(0)).unwrap();
        let req = match &actions[0] {
            Action::Send {
                msg: Msg::Request(r),
                ..
            } => r.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let (done, _) = c.on_message(
            reply(
                req.id,
                ReplyBody::TxnAborted {
                    txn: TxnId(4),
                    reason: crate::request::AbortReason::LeaderSwitch,
                },
            ),
            Time(5),
        );
        let outcome = d.on_complete(&done.unwrap()).unwrap();
        assert_eq!(
            outcome,
            TxnOutcome::Aborted(crate::request::AbortReason::LeaderSwitch)
        );
    }
}
