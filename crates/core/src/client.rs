//! Client-side protocol core (sans-io).
//!
//! Per §3.3, a client sends each request to **all** service replicas (so it
//! never needs to know who the leader is) and only the leader answers. The
//! client keeps at most one request outstanding, retransmits on timeout,
//! and matches replies by request id, which makes retries idempotent end
//! to end.
//!
//! In a multi-group (sharded) deployment the client additionally routes
//! each request to its consensus group — determined by a [`ShardRouter`]
//! over the request's service-level key — wraps traffic in the group
//! envelope, and caches a leader hint per group so steady-state writes are
//! a single unicast instead of an n-way broadcast. Reads always broadcast
//! (the X-Paxos fast path needs the followers' confirm votes).

use crate::action::{Action, TimerKind};
use crate::msg::Msg;
use crate::request::{Reply, ReplyBody, Request, RequestId, RequestKind, TxnCtl};
use crate::types::{shard_of, Addr, ClientId, Dur, GroupId, ProcessId, Seq, Time, TxnId};
use bytes::Bytes;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Maps a request to its service-level shard key (`None` = keyless, routes
/// to group 0). A pure function of the request — typically a hash of the
/// key the service would extract via
/// [`crate::service::App::shard_key`] — shared by every client.
#[derive(Clone)]
pub struct ShardRouter(pub Arc<RouteFn>);

/// The routing function a [`ShardRouter`] wraps.
pub type RouteFn = dyn Fn(&Request) -> Option<u64> + Send + Sync;

impl ShardRouter {
    /// Wrap a routing function.
    pub fn new(f: impl Fn(&Request) -> Option<u64> + Send + Sync + 'static) -> ShardRouter {
        ShardRouter(Arc::new(f))
    }

    /// The shard key of `req`, if any.
    #[must_use]
    pub fn key_of(&self, req: &Request) -> Option<u64> {
        (self.0)(req)
    }
}

impl fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ShardRouter(..)")
    }
}

/// A finished operation, as reported to the embedding workload driver.
#[derive(Clone, Debug)]
pub struct CompletedOp {
    /// The request that completed.
    pub req: Request,
    /// The leader's reply.
    pub body: ReplyBody,
    /// Leader that answered.
    pub leader: ProcessId,
    /// Round-trip time from first transmission to reply.
    pub rtt: Dur,
    /// Number of retransmissions that were needed.
    pub retries: u32,
}

#[derive(Clone, Debug)]
struct Pending {
    req: Request,
    group: GroupId,
    first_sent: Time,
    retries: u32,
}

/// Sans-io client state machine.
#[derive(Clone, Debug)]
pub struct ClientCore {
    id: ClientId,
    n_replicas: usize,
    next_seq: Seq,
    next_txn: TxnId,
    retry_timeout: Dur,
    outstanding: Option<Pending>,
    n_groups: usize,
    router: Option<ShardRouter>,
    /// Last leader observed to answer, per group (`GroupId.0` keyed).
    leader_hints: HashMap<u32, ProcessId>,
}

impl ClientCore {
    /// A client talking to a group of `n_replicas` replicas.
    #[must_use]
    pub fn new(id: ClientId, n_replicas: usize, retry_timeout: Dur) -> ClientCore {
        ClientCore {
            id,
            n_replicas,
            next_seq: Seq(1),
            next_txn: TxnId(1),
            retry_timeout,
            outstanding: None,
            n_groups: 1,
            router: None,
            leader_hints: HashMap::new(),
        }
    }

    /// Make the client shard-aware: route each request into one of
    /// `n_groups` consensus groups using `router`. With `n_groups == 1`
    /// (or no router) behavior is identical to [`ClientCore::new`].
    #[must_use]
    pub fn with_groups(mut self, n_groups: usize, router: Option<ShardRouter>) -> ClientCore {
        assert!(n_groups >= 1, "need at least one group");
        self.n_groups = n_groups;
        self.router = router;
        self
    }

    /// Number of consensus groups this client routes across.
    #[must_use]
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// This client's id.
    #[must_use]
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Whether a request is currently in flight.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.outstanding.is_some()
    }

    /// Allocate the next request id.
    pub fn next_request_id(&mut self) -> RequestId {
        let id = RequestId::new(self.id, self.next_seq);
        self.next_seq = self.next_seq.next();
        id
    }

    /// Allocate a fresh transaction id.
    pub fn next_txn_id(&mut self) -> TxnId {
        let t = self.next_txn;
        self.next_txn = TxnId(t.0 + 1);
        t
    }

    /// Build and submit a plain request. Panics if one is already
    /// outstanding (the closed-loop discipline of the paper's clients:
    /// "A client will not send a new request until it receives the reply
    /// associated with the previous one").
    pub fn submit_op(&mut self, kind: RequestKind, op: Bytes, now: Time) -> Vec<Action> {
        let id = self.next_request_id();
        self.submit(Request::new(id, kind, op), now)
    }

    /// Submit a pre-built request (used for transaction traffic).
    pub fn submit(&mut self, req: Request, now: Time) -> Vec<Action> {
        assert!(
            self.outstanding.is_none(),
            "client {} already has an outstanding request",
            self.id
        );
        let group = self.group_of(&req);
        self.outstanding = Some(Pending {
            req: req.clone(),
            group,
            first_sent: now,
            retries: 0,
        });
        let mut actions = self.send_request(group, req);
        actions.push(Action::timer(TimerKind::ClientRetry, self.retry_timeout));
        actions
    }

    /// The consensus group `req` routes to. Transactions are pinned to
    /// group 0: a transaction session lives on one leader (§3.5), so all
    /// its operations must share a group.
    fn group_of(&self, req: &Request) -> GroupId {
        if self.n_groups <= 1 || req.txn.is_some() {
            return GroupId::ZERO;
        }
        match self.router.as_ref().and_then(|r| r.key_of(req)) {
            Some(key) => shard_of(key, self.n_groups),
            None => GroupId::ZERO,
        }
    }

    /// Wrap `msg` in the group envelope iff this is a multi-group client.
    fn wrap(&self, group: GroupId, msg: Msg) -> Msg {
        if self.n_groups <= 1 {
            msg
        } else {
            Msg::Grouped {
                group,
                inner: Box::new(msg),
            }
        }
    }

    /// First transmission of `req`: unicast to the group's cached leader
    /// when one is known and the request doesn't need the full quorum to
    /// see it. Reads always broadcast — the X-Paxos fast path (§3.4)
    /// collects Confirm votes from the followers, which therefore must
    /// receive the request too. Single-group clients always broadcast,
    /// exactly as §3.3 prescribes.
    fn send_request(&self, group: GroupId, req: Request) -> Vec<Action> {
        if self.n_groups > 1 && req.kind != RequestKind::Read {
            if let Some(&leader) = self.leader_hints.get(&group.0) {
                return vec![Action::send(
                    Addr::Replica(leader),
                    self.wrap(group, Msg::Request(req)),
                )];
            }
        }
        self.broadcast(group, req)
    }

    fn broadcast(&self, group: GroupId, req: Request) -> Vec<Action> {
        (0..self.n_replicas)
            .map(|r| {
                Action::send(
                    Addr::Replica(ProcessId(r as u32)),
                    self.wrap(group, Msg::Request(req.clone())),
                )
            })
            .collect()
    }

    /// Handle an incoming message. Returns the completed operation when the
    /// outstanding request is answered.
    pub fn on_message(&mut self, msg: Msg, now: Time) -> (Option<CompletedOp>, Vec<Action>) {
        let (group, msg) = match msg {
            Msg::Grouped { group, inner } => (Some(group), *inner),
            other => (None, other),
        };
        let Msg::Reply(reply) = msg else {
            return (None, Vec::new());
        };
        self.on_reply(group, reply, now)
    }

    fn on_reply(
        &mut self,
        group: Option<GroupId>,
        reply: Reply,
        now: Time,
    ) -> (Option<CompletedOp>, Vec<Action>) {
        match &self.outstanding {
            // Overload shed: the node's admission gate refused the request
            // before it reached the protocol. The op stays outstanding —
            // the already-armed retry timer re-broadcasts after a backoff,
            // which is exactly the degradation the gate asks for. The
            // shedder is not the leader, so the hint is not updated.
            Some(p) if p.req.id == reply.id && reply.body.is_busy() => (None, Vec::new()),
            Some(p) if p.req.id == reply.id => {
                let p = self.outstanding.take().expect("checked above");
                if self.n_groups > 1 {
                    // Whoever answered is that group's leader; unicast the
                    // next write there.
                    let g = group.unwrap_or(p.group);
                    self.leader_hints.insert(g.0, reply.leader);
                }
                let done = CompletedOp {
                    req: p.req,
                    body: reply.body,
                    leader: reply.leader,
                    rtt: now.since(p.first_sent),
                    retries: p.retries,
                };
                (
                    Some(done),
                    vec![Action::CancelTimer {
                        kind: TimerKind::ClientRetry,
                    }],
                )
            }
            // Stale duplicate (a retransmitted earlier request answered
            // twice) or a reply while idle: ignore.
            _ => (None, Vec::new()),
        }
    }

    /// Handle a timer firing: retransmit the outstanding request to all
    /// replicas and re-arm. A timeout also invalidates the group's leader
    /// hint — the hinted leader may have crashed or been deposed — so the
    /// retry reverts to the §3.3 broadcast.
    pub fn on_timer(&mut self, kind: TimerKind, _now: Time) -> Vec<Action> {
        if kind != TimerKind::ClientRetry {
            return Vec::new();
        }
        let Some(p) = &mut self.outstanding else {
            return Vec::new();
        };
        p.retries += 1;
        let (req, group) = (p.req.clone(), p.group);
        self.leader_hints.remove(&group.0);
        let mut actions = self.broadcast(group, req);
        actions.push(Action::timer(TimerKind::ClientRetry, self.retry_timeout));
        actions
    }
}

/// Outcome of driving a whole transaction to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnOutcome {
    /// All operations executed and the commit was acknowledged.
    Committed,
    /// The transaction aborted (reason attached).
    Aborted(crate::request::AbortReason),
}

/// A scripted transaction: the ordered operations to run, then commit.
#[derive(Clone, Debug)]
pub struct TxnScript {
    /// Operations as `(kind, payload)` pairs, e.g. 2 reads + 1 write for
    /// the paper's 3-request read/write transactions.
    pub ops: Vec<(RequestKind, Bytes)>,
}

impl TxnScript {
    /// The evaluation's read/write transaction shape: `reads` reads
    /// followed by `writes` writes.
    #[must_use]
    pub fn read_write(reads: usize, writes: usize) -> TxnScript {
        let mut ops = Vec::with_capacity(reads + writes);
        ops.extend((0..reads).map(|_| (RequestKind::Read, Bytes::new())));
        ops.extend((0..writes).map(|_| (RequestKind::Write, Bytes::new())));
        TxnScript { ops }
    }

    /// The evaluation's write-only transaction shape.
    #[must_use]
    pub fn write_only(writes: usize) -> TxnScript {
        TxnScript {
            ops: (0..writes)
                .map(|_| (RequestKind::Write, Bytes::new()))
                .collect(),
        }
    }
}

/// Drives one transaction through a [`ClientCore`], one operation at a
/// time, finishing with the commit.
#[derive(Clone, Debug)]
pub struct TxnDriver {
    script: TxnScript,
    txn: TxnId,
    next_op: usize,
    started: Option<Time>,
    finished: Option<TxnOutcome>,
}

impl TxnDriver {
    /// Start driving `script` as transaction `txn`.
    #[must_use]
    pub fn new(script: TxnScript, txn: TxnId) -> TxnDriver {
        TxnDriver {
            script,
            txn,
            next_op: 0,
            started: None,
            finished: None,
        }
    }

    /// The transaction id.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Whether the driver has issued everything and seen the final reply.
    #[must_use]
    pub fn outcome(&self) -> Option<&TxnOutcome> {
        self.finished.as_ref()
    }

    /// Issue the next step (an operation or the commit) through `client`.
    /// Returns `None` if the transaction already finished.
    pub fn step(&mut self, client: &mut ClientCore, now: Time) -> Option<Vec<Action>> {
        if self.finished.is_some() {
            return None;
        }
        self.started.get_or_insert(now);
        let id = client.next_request_id();
        let req = if self.next_op < self.script.ops.len() {
            let (kind, op) = self.script.ops[self.next_op].clone();
            Request::txn_op(id, kind, self.txn, op)
        } else {
            Request::txn_commit(id, self.txn, self.script.ops.len() as u32)
        };
        Some(client.submit(req, now))
    }

    /// Feed a completed operation back. Returns the outcome once final.
    pub fn on_complete(&mut self, done: &CompletedOp) -> Option<TxnOutcome> {
        match &done.body {
            ReplyBody::TxnAborted { txn, reason } if *txn == self.txn => {
                self.finished = Some(TxnOutcome::Aborted(*reason));
            }
            ReplyBody::TxnCommitted { txn } if *txn == self.txn => {
                self.finished = Some(TxnOutcome::Committed);
            }
            _ => {
                // An ordinary op reply: move to the next step.
                if matches!(done.req.txn, Some(TxnCtl::Op { txn }) if txn == self.txn) {
                    self.next_op += 1;
                }
            }
        }
        self.finished.clone()
    }

    /// Total steps (ops + commit) this script issues.
    #[must_use]
    pub fn total_steps(&self) -> usize {
        self.script.ops.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(id: RequestId, body: ReplyBody) -> Msg {
        Msg::Reply(Reply {
            id,
            leader: ProcessId(0),
            body,
        })
    }

    #[test]
    fn submit_broadcasts_to_all_replicas_and_arms_retry() {
        let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
        let actions = c.submit_op(RequestKind::Write, Bytes::new(), Time::ZERO);
        let sends = actions
            .iter()
            .filter(|a| matches!(a, Action::Send { .. }))
            .count();
        assert_eq!(sends, 3, "request goes to all replicas");
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::ClientRetry,
                ..
            }
        )));
        assert!(c.is_busy());
    }

    #[test]
    fn reply_completes_and_measures_rtt() {
        let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
        let actions = c.submit_op(RequestKind::Read, Bytes::new(), Time(1_000));
        let id = match &actions[0] {
            Action::Send {
                msg: Msg::Request(r),
                ..
            } => r.id,
            other => panic!("unexpected {other:?}"),
        };
        let (done, actions) = c.on_message(reply(id, ReplyBody::Ok(Bytes::new())), Time(5_000));
        let done = done.expect("completed");
        assert_eq!(done.rtt, Dur(4_000));
        assert_eq!(done.retries, 0);
        assert!(!c.is_busy());
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::CancelTimer {
                kind: TimerKind::ClientRetry
            }
        )));
    }

    #[test]
    fn stale_reply_is_ignored() {
        let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
        c.submit_op(RequestKind::Read, Bytes::new(), Time::ZERO);
        let stale = RequestId::new(ClientId(1), Seq(999));
        let (done, actions) = c.on_message(reply(stale, ReplyBody::Empty), Time(1));
        assert!(done.is_none());
        assert!(actions.is_empty());
        assert!(c.is_busy());
    }

    #[test]
    fn busy_reply_leaves_request_outstanding_and_completes_on_retry() {
        let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
        let actions = c.submit_op(RequestKind::Write, Bytes::new(), Time::ZERO);
        let id = match &actions[0] {
            Action::Send {
                msg: Msg::Request(r),
                ..
            } => r.id,
            other => panic!("unexpected {other:?}"),
        };
        // An overloaded node sheds: the op must stay outstanding (no
        // completion, no timer cancellation) so the retry timer can
        // re-broadcast it.
        let (done, actions) = c.on_message(reply(id, ReplyBody::Busy), Time(1));
        assert!(done.is_none(), "Busy must not complete the op");
        assert!(actions.is_empty(), "retry timer stays armed");
        assert!(c.is_busy());
        // The retry then re-broadcasts, and a real reply completes with the
        // retry counted.
        let actions = c.on_timer(TimerKind::ClientRetry, Time(2));
        assert!(actions.iter().any(|a| matches!(a, Action::Send { .. })));
        let (done, _) = c.on_message(reply(id, ReplyBody::Ok(Bytes::new())), Time(3));
        assert_eq!(done.expect("completes").retries, 1);
    }

    #[test]
    fn retry_rebroadcasts() {
        let mut c = ClientCore::new(ClientId(1), 5, Dur::from_millis(100));
        c.submit_op(RequestKind::Write, Bytes::new(), Time::ZERO);
        let actions = c.on_timer(TimerKind::ClientRetry, Time(1));
        let sends = actions
            .iter()
            .filter(|a| matches!(a, Action::Send { .. }))
            .count();
        assert_eq!(sends, 5);
        // Completion then reports one retry.
        let id = RequestId::new(ClientId(1), Seq(1));
        let (done, _) = c.on_message(reply(id, ReplyBody::Ok(Bytes::new())), Time(2));
        assert_eq!(done.unwrap().retries, 1);
    }

    #[test]
    fn txn_driver_walks_ops_then_commit() {
        let mut c = ClientCore::new(ClientId(2), 3, Dur::from_millis(100));
        let mut d = TxnDriver::new(TxnScript::read_write(2, 1), TxnId(1));
        assert_eq!(d.total_steps(), 4);

        for step in 0..4 {
            let actions = d.step(&mut c, Time(step)).expect("more steps");
            let req = match &actions[0] {
                Action::Send {
                    msg: Msg::Request(r),
                    ..
                } => r.clone(),
                other => panic!("unexpected {other:?}"),
            };
            if step < 3 {
                assert!(req.is_txn_op());
            } else {
                assert!(req.txn.unwrap().is_commit());
            }
            let body = if step < 3 {
                ReplyBody::Ok(Bytes::new())
            } else {
                ReplyBody::TxnCommitted { txn: TxnId(1) }
            };
            let (done, _) = c.on_message(reply(req.id, body), Time(step + 10));
            let outcome = d.on_complete(&done.unwrap());
            if step < 3 {
                assert!(outcome.is_none());
            } else {
                assert_eq!(outcome, Some(TxnOutcome::Committed));
            }
        }
        assert!(d.step(&mut c, Time(99)).is_none(), "finished");
    }

    #[test]
    fn txn_driver_reports_abort() {
        let mut c = ClientCore::new(ClientId(2), 3, Dur::from_millis(100));
        let mut d = TxnDriver::new(TxnScript::write_only(2), TxnId(4));
        let actions = d.step(&mut c, Time(0)).unwrap();
        let req = match &actions[0] {
            Action::Send {
                msg: Msg::Request(r),
                ..
            } => r.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let (done, _) = c.on_message(
            reply(
                req.id,
                ReplyBody::TxnAborted {
                    txn: TxnId(4),
                    reason: crate::request::AbortReason::LeaderSwitch,
                },
            ),
            Time(5),
        );
        let outcome = d.on_complete(&done.unwrap()).unwrap();
        assert_eq!(
            outcome,
            TxnOutcome::Aborted(crate::request::AbortReason::LeaderSwitch)
        );
    }

    // ----- multi-group routing ------------------------------------------

    /// Router that shards on the first payload byte.
    fn byte_router() -> ShardRouter {
        ShardRouter::new(|req: &Request| req.op.first().map(|b| u64::from(*b)))
    }

    fn sharded_client(n_groups: usize) -> ClientCore {
        ClientCore::new(ClientId(9), 3, Dur::from_millis(100))
            .with_groups(n_groups, Some(byte_router()))
    }

    fn sent_groups(actions: &[Action]) -> Vec<GroupId> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg: Msg::Grouped { group, .. },
                    ..
                } => Some(*group),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn sharded_submit_routes_by_key_and_wraps() {
        let mut c = sharded_client(4);
        // Key byte 6 → 6 % 4 = group 2; broadcast (no hint yet) to all 3.
        let actions = c.submit_op(RequestKind::Write, Bytes::from_static(&[6]), Time::ZERO);
        let groups = sent_groups(&actions);
        assert_eq!(groups.len(), 3, "no hint yet: broadcast to all replicas");
        assert!(groups.iter().all(|g| *g == GroupId(2)));
    }

    #[test]
    fn keyless_and_txn_requests_route_to_group_zero() {
        let mut c = sharded_client(4);
        let actions = c.submit_op(RequestKind::Write, Bytes::new(), Time::ZERO);
        assert!(sent_groups(&actions).iter().all(|g| *g == GroupId::ZERO));
        let (done, _) = c.on_message(
            Msg::Grouped {
                group: GroupId::ZERO,
                inner: Box::new(reply(
                    RequestId::new(ClientId(9), Seq(1)),
                    ReplyBody::Ok(Bytes::new()),
                )),
            },
            Time(1),
        );
        assert!(done.is_some());

        // A transaction op with a "shardable" payload still pins to group 0.
        let id = c.next_request_id();
        let treq = Request::txn_op(id, RequestKind::Write, TxnId(1), Bytes::from_static(&[7]));
        let actions = c.submit(treq, Time(2));
        assert!(sent_groups(&actions).iter().all(|g| *g == GroupId::ZERO));
    }

    #[test]
    fn reply_caches_leader_hint_and_next_write_unicasts() {
        let mut c = sharded_client(4);
        let actions = c.submit_op(RequestKind::Write, Bytes::from_static(&[6]), Time::ZERO);
        assert_eq!(sent_groups(&actions).len(), 3);
        // Group 2's leader (replica 1) answers.
        let (done, _) = c.on_message(
            Msg::Grouped {
                group: GroupId(2),
                inner: Box::new(Msg::Reply(Reply {
                    id: RequestId::new(ClientId(9), Seq(1)),
                    leader: ProcessId(1),
                    body: ReplyBody::Ok(Bytes::new()),
                })),
            },
            Time(5),
        );
        assert!(done.is_some());

        // Next write to the same group goes straight to the hinted leader.
        let actions = c.submit_op(RequestKind::Write, Bytes::from_static(&[2]), Time(10));
        let sends: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![Addr::Replica(ProcessId(1))], "unicast to hint");
        assert_eq!(sent_groups(&actions), vec![GroupId(2)]);

        // A retry invalidates the hint and reverts to broadcast.
        let actions = c.on_timer(TimerKind::ClientRetry, Time(200));
        assert_eq!(sent_groups(&actions).len(), 3, "hint dropped on timeout");
    }

    #[test]
    fn sharded_reads_always_broadcast() {
        let mut c = sharded_client(4);
        c.submit_op(RequestKind::Write, Bytes::from_static(&[6]), Time::ZERO);
        let (done, _) = c.on_message(
            Msg::Grouped {
                group: GroupId(2),
                inner: Box::new(Msg::Reply(Reply {
                    id: RequestId::new(ClientId(9), Seq(1)),
                    leader: ProcessId(1),
                    body: ReplyBody::Ok(Bytes::new()),
                })),
            },
            Time(5),
        );
        assert!(done.is_some());
        // Same group, but a read: the X-Paxos fast path needs every
        // replica to see it, so it must broadcast despite the hint.
        let actions = c.submit_op(RequestKind::Read, Bytes::from_static(&[2]), Time(10));
        assert_eq!(sent_groups(&actions).len(), 3);
    }
}
