//! Output actions of the sans-io protocol state machines.
//!
//! Replica and client cores never perform I/O; every handler returns a
//! list of [`Action`]s that the embedding runtime (the discrete-event
//! simulator or the real TCP runner) carries out. This is what lets the
//! exact same protocol code run deterministically under simulation and
//! natively over sockets.

use crate::msg::Msg;
use crate::types::{Addr, Dur};

/// Timers a protocol core may request. At most one timer per kind is
/// pending at a time: setting a kind replaces any pending timer of the
/// same kind; firing removes it (handlers re-arm as needed).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimerKind {
    /// Leader: emit the next heartbeat.
    Heartbeat,
    /// Follower: leader suspicion timeout (failure detector).
    LeaderCheck,
    /// Leader: retransmit the outstanding accept if unacknowledged
    /// (§3.3: "If the leader fails to receive the expected response ... it
    /// retransmits those messages").
    Retransmit,
    /// Candidate: prepare-phase timeout / election backoff.
    Election,
    /// Client: retransmit the outstanding request.
    ClientRetry,
    /// Leader: the batch-accumulation window expired; propose what queued.
    BatchWindow,
}

/// One output action from a protocol handler.
#[derive(Clone, Debug)]
pub enum Action {
    /// Send `msg` to one participant.
    Send {
        /// Destination.
        to: Addr,
        /// Payload.
        msg: Msg,
    },
    /// Send `msg` to every replica *other than the emitter*. (Protocol
    /// cores deliver to themselves internally, without a network hop.)
    ToAllReplicas {
        /// Payload.
        msg: Msg,
    },
    /// Arm (or re-arm) the timer of the given kind to fire after `after`.
    SetTimer {
        /// Which timer.
        kind: TimerKind,
        /// Delay from now.
        after: Dur,
    },
    /// Cancel a pending timer of the given kind, if any.
    CancelTimer {
        /// Which timer.
        kind: TimerKind,
    },
}

impl Action {
    /// Convenience constructor for a unicast send.
    #[must_use]
    pub fn send(to: Addr, msg: Msg) -> Action {
        Action::Send { to, msg }
    }

    /// Convenience constructor for a replica broadcast.
    #[must_use]
    pub fn broadcast(msg: Msg) -> Action {
        Action::ToAllReplicas { msg }
    }

    /// Convenience constructor for arming a timer.
    #[must_use]
    pub fn timer(kind: TimerKind, after: Dur) -> Action {
        Action::SetTimer { kind, after }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ballot::Ballot;
    use crate::types::{Instance, ProcessId};

    #[test]
    fn constructors_build_expected_variants() {
        let msg = Msg::Heartbeat {
            ballot: Ballot::ZERO,
            chosen: Instance::ZERO,
            hb_seq: 0,
        };
        match Action::send(Addr::Replica(ProcessId(1)), msg.clone()) {
            Action::Send { to, .. } => assert_eq!(to, Addr::Replica(ProcessId(1))),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            Action::broadcast(msg),
            Action::ToAllReplicas { .. }
        ));
        assert!(matches!(
            Action::timer(TimerKind::Heartbeat, Dur::from_millis(5)),
            Action::SetTimer {
                kind: TimerKind::Heartbeat,
                ..
            }
        ));
    }
}
