//! The parallel apply pipeline: per-node worker pool that takes state
//! application off the protocol drive thread.
//!
//! The paper's `⟨req, state⟩` decrees make *application* (decoding a
//! [`StateUpdate`] and mutating the service) part of the decree hot path:
//! since the reactor transport landed, that work runs on the node's one
//! epoll thread, so a slow apply stalls connection I/O for every group on
//! the node. This module splits protocol decision from state application:
//!
//! * Each consensus group's [`App`] is wrapped in a [`PipelinedApp`] bound
//!   to one **slot** of an [`ApplyPool`]. The hot-path entry points —
//!   [`App::apply`] and [`App::apply_txn_commit`], the only calls made for
//!   decrees chosen elsewhere — enqueue a job and return immediately.
//! * Pool workers drain each slot's queue in FIFO order, so *within a
//!   group* applies retain decree order exactly (same-key writes can never
//!   reorder). *Across groups* (keyspace-partitioned shards) applies run
//!   concurrently on up to `workers` threads — cross-group independence is
//!   free, which is where the parallel speedup comes from.
//! * Every other [`App`] method — reads ([`App::execute`]), snapshots,
//!   restores, transaction staging — first waits for the slot's queue to
//!   drain (the **conflict fence**), so callers always observe a state
//!   that reflects every decree handed off before them. This is exactly
//!   the §3.4 read rule: a linearizable read must see the applied prefix
//!   it was confirmed against, and the fence blocks it only on the
//!   applied-index it needs (its own group's backlog), never on other
//!   groups' apply work.
//!
//! The wrapper is transparent: a `PipelinedApp` is itself an [`App`], so
//! the sans-io [`crate::replica::Replica`] stays thread-free and
//! byte-identical in behavior — only the *when* of apply work moves.

use crate::command::StateUpdate;
use crate::request::{AbortReason, Request};
use crate::service::{App, ExecCtx};
use crate::types::TxnId;
use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// One deferred application, queued in decree order.
enum Job {
    /// [`App::apply`].
    Apply(Request, StateUpdate),
    /// [`App::apply_txn_commit`].
    TxnCommit(TxnId, Vec<Request>, StateUpdate),
}

/// Per-group slot: the wrapped app plus its pending apply queue.
struct SlotState {
    /// The group's service. `None` while a worker has it checked out for
    /// a batch (enqueues never block on an in-progress batch).
    app: Option<Box<dyn App>>,
    /// Pending applications, FIFO = decree order.
    queue: VecDeque<Job>,
    /// Whether this slot currently sits in its worker's run queue.
    scheduled: bool,
}

struct Slot {
    state: Mutex<SlotState>,
    /// Signalled by the worker whenever a batch completes (fence wakeup).
    done: Condvar,
}

/// Shared state of one worker thread.
struct WorkerShared {
    /// Slots with pending work, in scheduling order.
    runq: Mutex<VecDeque<Arc<Slot>>>,
    /// Signalled when `runq` gains an entry or `stop` is set.
    work: Condvar,
    stop: AtomicBool,
}

/// Everything the pool owns; dropped (and its threads joined) when the
/// last [`ApplyPool`] handle *and* every [`PipelinedApp`] are gone.
struct PoolInner {
    workers: Vec<Arc<WorkerShared>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        for w in &self.workers {
            w.stop.store(true, Ordering::SeqCst);
            w.work.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

/// A pool of apply workers shared by every consensus group on one node.
/// Cheap to clone (a handle); the threads live until the last handle and
/// the last wrapped app are dropped.
#[derive(Clone)]
pub struct ApplyPool {
    inner: Arc<PoolInner>,
    next_slot: Arc<Mutex<usize>>,
}

impl ApplyPool {
    /// Spawn a pool with `workers` threads (at least 1).
    #[must_use]
    pub fn new(workers: usize) -> ApplyPool {
        let workers = workers.max(1);
        let shared: Vec<Arc<WorkerShared>> = (0..workers)
            .map(|_| {
                Arc::new(WorkerShared {
                    runq: Mutex::new(VecDeque::new()),
                    work: Condvar::new(),
                    stop: AtomicBool::new(false),
                })
            })
            .collect();
        let handles = shared
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let w = Arc::clone(w);
                std::thread::Builder::new()
                    .name(format!("apply-{i}"))
                    .spawn(move || worker_loop(&w))
                    .expect("spawn apply worker")
            })
            .collect();
        ApplyPool {
            inner: Arc::new(PoolInner {
                workers: shared,
                handles: Mutex::new(handles),
            }),
            next_slot: Arc::new(Mutex::new(0)),
        }
    }

    /// Wrap one group's app: returns an [`App`] whose `apply` paths are
    /// asynchronous through this pool. Slots are assigned to workers
    /// round-robin, so `G` groups over `W` workers apply on
    /// `min(G, W)`-way parallelism.
    #[must_use]
    pub fn wrap(&self, app: Box<dyn App>) -> Box<dyn App> {
        let slot_idx = {
            let mut n = self.next_slot.lock().unwrap();
            let i = *n;
            *n += 1;
            i
        };
        let worker = Arc::clone(&self.inner.workers[slot_idx % self.inner.workers.len()]);
        Box::new(PipelinedApp {
            slot: Arc::new(Slot {
                state: Mutex::new(SlotState {
                    app: Some(app),
                    queue: VecDeque::new(),
                    scheduled: false,
                }),
                done: Condvar::new(),
            }),
            worker,
            _pool: Arc::clone(&self.inner),
        })
    }
}

fn worker_loop(w: &WorkerShared) {
    loop {
        let slot = {
            let mut q = w.runq.lock().unwrap();
            loop {
                if w.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(s) = q.pop_front() {
                    break s;
                }
                q = w.work.wait(q).unwrap();
            }
        };
        drain_slot(&slot);
    }
}

/// Apply every queued job of `slot`, batch by batch, until its queue is
/// empty. The app is checked out during a batch so enqueues (and queue
/// inspection by the fence) never block on apply work.
fn drain_slot(slot: &Slot) {
    let mut st = slot.state.lock().unwrap();
    loop {
        if st.queue.is_empty() {
            st.scheduled = false;
            drop(st);
            slot.done.notify_all();
            return;
        }
        let batch = std::mem::take(&mut st.queue);
        // Invariant: each slot belongs to exactly one worker and workers
        // process slots one at a time, so the app is present whenever the
        // worker picks the slot up; the fence mutates it only under the
        // same lock while no batch is out.
        let Some(mut app) = st.app.take() else {
            st.scheduled = false;
            return;
        };
        drop(st);
        for job in batch {
            match job {
                Job::Apply(req, update) => app.apply(&req, &update),
                Job::TxnCommit(txn, ops, update) => app.apply_txn_commit(txn, &ops, &update),
            }
        }
        st = slot.state.lock().unwrap();
        st.app = Some(app);
        slot.done.notify_all();
    }
}

/// [`App`] adapter produced by [`ApplyPool::wrap`]: `apply` and
/// `apply_txn_commit` are handed to the pool; every synchronous entry
/// point fences on the slot's queue first.
pub struct PipelinedApp {
    slot: Arc<Slot>,
    worker: Arc<WorkerShared>,
    /// Keeps the worker threads alive as long as any wrapped app exists.
    _pool: Arc<PoolInner>,
}

impl PipelinedApp {
    fn enqueue(&self, job: Job) {
        let mut st = self.slot.state.lock().unwrap();
        st.queue.push_back(job);
        if !st.scheduled {
            st.scheduled = true;
            drop(st);
            let mut q = self.worker.runq.lock().unwrap();
            q.push_back(Arc::clone(&self.slot));
            drop(q);
            self.worker.work.notify_all();
        }
    }

    /// The conflict fence: wait until every apply handed off so far has
    /// executed, then return the guard holding the (present) app. Callers
    /// observe a state reflecting all prior decrees of *this* group.
    fn fence(&self) -> MutexGuard<'_, SlotState> {
        let mut st = self.slot.state.lock().unwrap();
        while !(st.queue.is_empty() && st.app.is_some()) {
            st = self.slot.done.wait(st).unwrap();
        }
        st
    }

    fn with_app<R>(&self, f: impl FnOnce(&mut dyn App) -> R) -> R {
        let mut st = self.fence();
        let Some(app) = st.app.as_mut() else {
            unreachable!("fence returns with the app present");
        };
        f(app.as_mut())
    }
}

impl App for PipelinedApp {
    fn execute(&mut self, req: &Request, ctx: &mut ExecCtx<'_>) -> (Bytes, StateUpdate) {
        self.with_app(|a| a.execute(req, ctx))
    }

    fn apply(&mut self, req: &Request, update: &StateUpdate) {
        self.enqueue(Job::Apply(req.clone(), update.clone()));
    }

    fn snapshot(&self) -> Bytes {
        self.with_app(|a| a.snapshot())
    }

    fn restore(&mut self, snap: &[u8]) {
        self.with_app(|a| a.restore(snap));
    }

    fn shard_key(&self, req: &Request) -> Option<u64> {
        self.with_app(|a| a.shard_key(req))
    }

    fn txn_begin(&mut self, txn: TxnId) {
        self.with_app(|a| a.txn_begin(txn));
    }

    fn txn_execute(
        &mut self,
        txn: TxnId,
        req: &Request,
        durable: bool,
        ctx: &mut ExecCtx<'_>,
    ) -> Result<(Bytes, StateUpdate), AbortReason> {
        self.with_app(|a| a.txn_execute(txn, req, durable, ctx))
    }

    fn txn_commit(&mut self, txn: TxnId) -> StateUpdate {
        self.with_app(|a| a.txn_commit(txn))
    }

    fn txn_abort(&mut self, txn: TxnId) {
        self.with_app(|a| a.txn_abort(txn));
    }

    fn apply_txn_commit(&mut self, txn: TxnId, ops: &[Request], update: &StateUpdate) {
        self.enqueue(Job::TxnCommit(txn, ops.to_vec(), update.clone()));
    }

    fn tentative_begin(&mut self) -> bool {
        self.with_app(|a| a.tentative_begin())
    }

    fn tentative_rollback(&mut self) {
        self.with_app(|a| a.tentative_rollback());
    }

    fn tentative_commit(&mut self) {
        self.with_app(|a| a.tentative_commit());
    }

    fn snapshot_begin(&mut self, chunk_bytes: usize) -> usize {
        self.with_app(|a| a.snapshot_begin(chunk_bytes))
    }

    fn snapshot_chunk(&mut self, idx: usize) -> Bytes {
        // A frozen app serves chunks from its freeze-time image, so this
        // does not need the full fence — but chunk emission is cheap
        // (O(chunk)) and ordering with in-flight applies is subtle, so we
        // fence anyway: the drive loop emits at most a chunk per cycle and
        // the queue it waits on is this group's own backlog.
        self.with_app(|a| a.snapshot_chunk(idx))
    }

    fn snapshot_end(&mut self) {
        self.with_app(|a| a.snapshot_end());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestId, RequestKind};
    use crate::service::NoopApp;
    use crate::types::{ClientId, Seq};
    use std::sync::atomic::AtomicU64;

    fn wreq(seq: u64) -> Request {
        Request::new(
            RequestId::new(ClientId(1), Seq(seq)),
            RequestKind::Write,
            Bytes::new(),
        )
    }

    /// Records the order of applied values; panics on reorder.
    struct OrderApp {
        seen: Vec<u64>,
        shared: Arc<AtomicU64>,
    }

    impl App for OrderApp {
        fn execute(&mut self, _req: &Request, _ctx: &mut ExecCtx<'_>) -> (Bytes, StateUpdate) {
            (Bytes::new(), StateUpdate::None)
        }
        fn apply(&mut self, req: &Request, _update: &StateUpdate) {
            self.seen.push(req.id.seq.0);
            self.shared.fetch_add(1, Ordering::SeqCst);
        }
        fn snapshot(&self) -> Bytes {
            let mut out = Vec::new();
            for s in &self.seen {
                out.extend_from_slice(&s.to_le_bytes());
            }
            Bytes::from(out)
        }
        fn restore(&mut self, snap: &[u8]) {
            self.seen = snap
                .chunks(8)
                .map(|c| {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(c);
                    u64::from_le_bytes(b)
                })
                .collect();
        }
    }

    #[test]
    fn applies_run_in_order_and_fence_observes_them() {
        let pool = ApplyPool::new(2);
        let shared = Arc::new(AtomicU64::new(0));
        let mut app = pool.wrap(Box::new(OrderApp {
            seen: Vec::new(),
            shared: Arc::clone(&shared),
        }));
        for seq in 1..=100 {
            app.apply(&wreq(seq), &StateUpdate::None);
        }
        // The fence (snapshot) must observe all 100 applies, in order.
        let snap = app.snapshot();
        assert_eq!(shared.load(Ordering::SeqCst), 100);
        assert_eq!(snap.len(), 100 * 8);
        for (i, c) in snap.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            assert_eq!(u64::from_le_bytes(b), i as u64 + 1, "in-order apply");
        }
    }

    #[test]
    fn groups_apply_in_parallel_without_cross_blocking() {
        let pool = ApplyPool::new(4);
        let shared = Arc::new(AtomicU64::new(0));
        let mut apps: Vec<Box<dyn App>> = (0..4)
            .map(|_| {
                pool.wrap(Box::new(OrderApp {
                    seen: Vec::new(),
                    shared: Arc::clone(&shared),
                }))
            })
            .collect();
        for seq in 1..=50 {
            for app in &mut apps {
                app.apply(&wreq(seq), &StateUpdate::None);
            }
        }
        for app in &mut apps {
            let snap = app.snapshot(); // fence per group
            assert_eq!(snap.len(), 50 * 8);
        }
        assert_eq!(shared.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn noop_app_counter_matches_serial_apply() {
        let pool = ApplyPool::new(3);
        let mut piped = pool.wrap(Box::new(NoopApp::new()));
        let mut serial = NoopApp::new();
        for seq in 1..=64 {
            let r = wreq(seq);
            let up = StateUpdate::Reproduce(Bytes::new());
            piped.apply(&r, &up);
            serial.apply(&r, &up);
        }
        assert_eq!(piped.snapshot(), serial.snapshot());
    }

    #[test]
    fn pool_shuts_down_cleanly_with_outstanding_slots() {
        let pool = ApplyPool::new(2);
        let mut app = pool.wrap(Box::new(NoopApp::new()));
        app.apply(&wreq(1), &StateUpdate::Reproduce(Bytes::new()));
        drop(pool); // workers stay alive: the app holds the pool
        app.apply(&wreq(2), &StateUpdate::Reproduce(Bytes::new()));
        let snap = app.snapshot();
        assert!(!snap.is_empty());
        drop(app); // last owner: joins the threads
    }
}
