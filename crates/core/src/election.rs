//! Leader-election support: failure detection and stability pacing.
//!
//! Paxos (and, more strongly, X-Paxos and T-Paxos — §3.6) require a leader
//! that stays leader "long enough". Following the Ω-with-stability line of
//! work the paper cites (\[22\], Malkhi et al.), we bias the system toward
//! keeping an incumbent: followers only challenge after a full suspicion
//! timeout with no sign of life, challengers back off with rank-scaled
//! jitter so they rarely duel, and any sign of a leader with a ballot at
//! least as high as a challenger's immediately demotes the challenger.

use crate::ballot::Ballot;
use crate::types::{Dur, Time};
use rand::rngs::SmallRng;
use rand::Rng;

/// Tracks evidence of the current leader's liveness.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    suspect_timeout: Dur,
    /// Ballot of the leadership we are following (== promised ballot).
    leader_ballot: Ballot,
    /// Last time we saw any message from that leader.
    last_sign: Time,
}

impl FailureDetector {
    /// New detector with the given suspicion timeout.
    #[must_use]
    pub fn new(suspect_timeout: Dur, now: Time) -> FailureDetector {
        FailureDetector {
            suspect_timeout,
            leader_ballot: Ballot::ZERO,
            last_sign: now,
        }
    }

    /// Record a sign of life from the leadership with ballot `b` (only if
    /// it is the leadership we follow or a higher one).
    pub fn observe(&mut self, b: Ballot, now: Time) {
        if b >= self.leader_ballot {
            self.leader_ballot = b;
            self.last_sign = now;
        }
    }

    /// Forget the current leader (e.g. we are starting an election).
    pub fn reset(&mut self, now: Time) {
        self.last_sign = now;
    }

    /// The ballot of the leadership currently followed.
    #[must_use]
    pub fn leader_ballot(&self) -> Ballot {
        self.leader_ballot
    }

    /// Whether the leader should be suspected at `now`.
    #[must_use]
    pub fn suspects(&self, now: Time) -> bool {
        now.since(self.last_sign) >= self.suspect_timeout
    }

    /// When the next suspicion check should run.
    #[must_use]
    pub fn next_check(&self, now: Time) -> Dur {
        let elapsed = now.since(self.last_sign);
        if elapsed >= self.suspect_timeout {
            Dur::ZERO
        } else {
            Dur(self.suspect_timeout.0 - elapsed.0)
        }
    }
}

/// Computes stability-biased election backoffs.
///
/// Each failed attempt lengthens the wait (bounded exponential), each
/// replica adds a rank-proportional stagger, and a random jitter breaks
/// remaining ties. The combination makes split elections short-lived,
/// which is what keeps "long enough" leadership periods (§3.6) the norm.
#[derive(Clone, Debug)]
pub struct ElectionPacer {
    base: Dur,
    rank: u32,
    attempts: u32,
}

impl ElectionPacer {
    /// `base` is the configured election backoff, `rank` the replica's id
    /// within the group.
    #[must_use]
    pub fn new(base: Dur, rank: u32) -> ElectionPacer {
        ElectionPacer {
            base,
            rank,
            attempts: 0,
        }
    }

    /// Record the start of an attempt.
    pub fn note_attempt(&mut self) {
        self.attempts = self.attempts.saturating_add(1);
    }

    /// Reset after an election settles (either we won or a stable leader
    /// emerged).
    pub fn settle(&mut self) {
        self.attempts = 0;
    }

    /// Number of attempts since the last settle.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Backoff before (re)trying: `base * 2^min(attempts,6) * rank-stagger`
    /// plus up to half a base of jitter.
    #[must_use]
    pub fn backoff(&self, rng: &mut SmallRng) -> Dur {
        let exp = 1u64 << self.attempts.min(6);
        let stagger = 1 + u64::from(self.rank);
        let fixed = self.base.0.saturating_mul(exp).saturating_mul(stagger) / 2;
        let jitter = rng.gen_range(0..=self.base.0 / 2);
        Dur(fixed + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ProcessId;
    use rand::SeedableRng;

    #[test]
    fn detector_suspects_after_timeout() {
        let mut fd = FailureDetector::new(Dur::from_millis(50), Time::ZERO);
        let b = Ballot::new(1, ProcessId(0));
        fd.observe(b, Time::ZERO);
        assert!(!fd.suspects(Time(Dur::from_millis(49).0)));
        assert!(fd.suspects(Time(Dur::from_millis(50).0)));
    }

    #[test]
    fn detector_ignores_lower_ballots() {
        let mut fd = FailureDetector::new(Dur::from_millis(50), Time::ZERO);
        fd.observe(Ballot::new(5, ProcessId(1)), Time(0));
        // A stale sign of life from an older leadership must not refresh.
        fd.observe(Ballot::new(4, ProcessId(0)), Time(Dur::from_millis(40).0));
        assert!(fd.suspects(Time(Dur::from_millis(50).0)));
        assert_eq!(fd.leader_ballot(), Ballot::new(5, ProcessId(1)));
    }

    #[test]
    fn detector_next_check_counts_down() {
        let mut fd = FailureDetector::new(Dur::from_millis(50), Time::ZERO);
        fd.observe(Ballot::new(1, ProcessId(0)), Time(0));
        assert_eq!(fd.next_check(Time(0)), Dur::from_millis(50));
        assert_eq!(
            fd.next_check(Time(Dur::from_millis(20).0)),
            Dur::from_millis(30)
        );
        assert_eq!(fd.next_check(Time(Dur::from_millis(60).0)), Dur::ZERO);
    }

    #[test]
    fn pacer_backoff_grows_with_attempts_and_rank() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut p0 = ElectionPacer::new(Dur::from_millis(10), 0);
        let b0 = p0.backoff(&mut rng);
        p0.note_attempt();
        p0.note_attempt();
        let b2 = p0.backoff(&mut rng);
        assert!(b2 > b0, "backoff grows with attempts: {b0:?} vs {b2:?}");

        let p_high_rank = ElectionPacer::new(Dur::from_millis(10), 3);
        // Deterministic part: rank 3 stagger is 4x rank 0 stagger.
        let mut rng2 = SmallRng::seed_from_u64(7);
        let p_low = ElectionPacer::new(Dur::from_millis(10), 0);
        let low = p_low.backoff(&mut rng2);
        let mut rng3 = SmallRng::seed_from_u64(7);
        let high = p_high_rank.backoff(&mut rng3);
        assert!(high > low);
    }

    #[test]
    fn pacer_settles_back_to_zero_attempts() {
        let mut p = ElectionPacer::new(Dur::from_millis(10), 0);
        p.note_attempt();
        p.note_attempt();
        assert_eq!(p.attempts(), 2);
        p.settle();
        assert_eq!(p.attempts(), 0);
    }
}
