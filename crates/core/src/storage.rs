//! Stable storage abstraction.
//!
//! The paper's model allows crashed processes to *recover* (§3.1), which
//! requires that promises, accepted proposals and checkpoints survive a
//! crash. The protocol core writes through the [`Storage`] trait; the
//! simulator keeps each process's [`MemStorage`] alive across simulated
//! crashes, and a real deployment would back the same trait with fsync'd
//! files.

use crate::ballot::Ballot;
use crate::command::{Decree, SnapshotBlob};
use crate::types::Instance;
use std::collections::BTreeMap;

/// Everything a replica reloads after a crash.
#[derive(Clone, Debug, Default)]
pub struct DurableState {
    /// Highest ballot promised (never accept/promise below this).
    pub promised: Ballot,
    /// Accepted proposals still in the log, by instance.
    pub accepted: BTreeMap<Instance, (Ballot, Decree)>,
    /// Contiguous chosen-and-applied prefix at the time of the last write.
    pub chosen_prefix: Instance,
    /// Latest checkpoint, if any.
    pub checkpoint: Option<SnapshotBlob>,
}

/// Write-ahead stable storage for one replica.
///
/// Durability is *batch-granular*: `save_*` records a write-ahead entry
/// but need not reach the platter on its own — [`Storage::flush`] is the
/// barrier that makes everything recorded so far durable. The protocol's
/// persist-before-send rule (§3.1/§3.3) therefore holds as long as the
/// embedding runtime calls `flush()` after the handlers run and before
/// any resulting `Promise`/`Accepted` leaves the process; see
/// `gridpaxos_transport::node` for the drive loop that enforces it.
/// Backends that sync on every `save_*` (or keep state purely in memory)
/// implement `flush` as a no-op.
pub trait Storage: Send {
    /// Persist a promise. Must be durable (after the covering [`Storage::flush`])
    /// before the promise is sent.
    fn save_promised(&mut self, b: Ballot);
    /// Persist an accepted proposal. Must be durable (after the covering
    /// [`Storage::flush`]) before `Accepted` is sent. Overwrites any
    /// previous acceptance for the same instance.
    fn save_accepted(&mut self, i: Instance, b: Ballot, d: &Decree);
    /// Persist the contiguous chosen-and-applied prefix.
    fn save_chosen_prefix(&mut self, upto: Instance);
    /// Persist a checkpoint.
    fn save_checkpoint(&mut self, snap: &SnapshotBlob);
    /// Drop accepted entries for instances `<= upto` (they are covered by a
    /// checkpoint).
    fn truncate_upto(&mut self, upto: Instance);
    /// Reload everything (crash recovery).
    fn load(&self) -> DurableState;
    /// Durability barrier: everything recorded by earlier `save_*` calls
    /// is on stable storage when this returns. One `flush` may cover many
    /// records (group commit); backends that sync per record or hold
    /// state in memory need not override the default no-op.
    fn flush(&mut self) {}
    /// Whether records recorded since the last [`Storage::flush`] are
    /// still awaiting the barrier. Always `false` for backends whose
    /// `save_*` calls are immediately durable.
    fn is_dirty(&self) -> bool {
        false
    }
    /// Total persist operations recorded so far (observability: the
    /// simulator's durability cost model reads deltas of this counter).
    fn write_count(&self) -> u64 {
        0
    }
}

/// In-memory [`Storage`]. "Durability" means surviving a *simulated* crash:
/// the embedding runtime detaches the storage from the dead replica and
/// hands it to the recovered incarnation.
#[derive(Clone, Debug, Default)]
pub struct MemStorage {
    state: DurableState,
    /// Number of persist operations performed (observability for tests
    /// and the write-amplification ablation bench).
    pub writes: u64,
}

impl MemStorage {
    /// Fresh, empty storage.
    #[must_use]
    pub fn new() -> MemStorage {
        MemStorage::default()
    }
}

impl Storage for MemStorage {
    fn save_promised(&mut self, b: Ballot) {
        self.state.promised = b;
        self.writes += 1;
    }

    fn save_accepted(&mut self, i: Instance, b: Ballot, d: &Decree) {
        self.state.accepted.insert(i, (b, d.clone()));
        self.writes += 1;
    }

    fn save_chosen_prefix(&mut self, upto: Instance) {
        debug_assert!(upto >= self.state.chosen_prefix);
        self.state.chosen_prefix = upto;
        self.writes += 1;
    }

    fn save_checkpoint(&mut self, snap: &SnapshotBlob) {
        self.state.checkpoint = Some(snap.clone());
        self.writes += 1;
    }

    fn truncate_upto(&mut self, upto: Instance) {
        self.state.accepted = self.state.accepted.split_off(&upto.next());
        self.writes += 1;
    }

    fn load(&self) -> DurableState {
        self.state.clone()
    }

    // `flush` stays the default no-op: a MemStorage write is "durable"
    // the moment it lands in the struct, so the barrier has nothing to do
    // and `is_dirty` is always false.

    fn write_count(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ballot::Ballot;
    use crate::types::ProcessId;

    fn ballot(r: u64) -> Ballot {
        Ballot::new(r, ProcessId(0))
    }

    #[test]
    fn roundtrip_promise_and_accepts() {
        let mut s = MemStorage::new();
        s.save_promised(ballot(3));
        s.save_accepted(Instance(1), ballot(3), &Decree::noop());
        s.save_accepted(Instance(2), ballot(3), &Decree::noop());
        s.save_chosen_prefix(Instance(1));

        let d = s.load();
        assert_eq!(d.promised, ballot(3));
        assert_eq!(d.accepted.len(), 2);
        assert_eq!(d.chosen_prefix, Instance(1));
        assert!(d.checkpoint.is_none());
    }

    #[test]
    fn accept_overwrites_same_instance() {
        let mut s = MemStorage::new();
        s.save_accepted(Instance(1), ballot(1), &Decree::noop());
        s.save_accepted(Instance(1), ballot(2), &Decree::noop());
        let d = s.load();
        assert_eq!(d.accepted[&Instance(1)].0, ballot(2));
    }

    #[test]
    fn truncate_drops_covered_entries() {
        let mut s = MemStorage::new();
        for i in 1..=5 {
            s.save_accepted(Instance(i), ballot(1), &Decree::noop());
        }
        s.truncate_upto(Instance(3));
        let d = s.load();
        assert_eq!(
            d.accepted.keys().copied().collect::<Vec<_>>(),
            vec![Instance(4), Instance(5)]
        );
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut s = MemStorage::new();
        let snap = SnapshotBlob {
            upto: Instance(7),
            app: bytes::Bytes::from_static(b"state"),
            dedup: vec![],
        };
        s.save_checkpoint(&snap);
        assert_eq!(s.load().checkpoint.unwrap().upto, Instance(7));
    }

    #[test]
    fn write_counter_tracks_persist_ops() {
        let mut s = MemStorage::new();
        assert_eq!(s.writes, 0);
        s.save_promised(ballot(1));
        s.save_chosen_prefix(Instance(0));
        assert_eq!(s.writes, 2);
        assert_eq!(s.write_count(), 2);
    }

    #[test]
    fn mem_storage_flush_is_a_clean_no_op() {
        let mut s = MemStorage::new();
        s.save_promised(ballot(1));
        assert!(!s.is_dirty(), "MemStorage writes are durable immediately");
        s.flush();
        assert_eq!(s.load().promised, ballot(1));
        assert_eq!(s.writes, 1, "flush is not a persist op");
    }
}
