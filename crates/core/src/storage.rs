//! Stable storage abstraction.
//!
//! The paper's model allows crashed processes to *recover* (§3.1), which
//! requires that promises, accepted proposals and checkpoints survive a
//! crash. The protocol core writes through the [`Storage`] trait; the
//! simulator keeps each process's [`MemStorage`] alive across simulated
//! crashes, and a real deployment would back the same trait with fsync'd
//! files.

use crate::ballot::Ballot;
use crate::command::{Decree, DedupEntry, SnapshotBlob};
use crate::types::Instance;
use bytes::Bytes;
use std::collections::BTreeMap;

/// A chunked checkpoint as held by a [`Storage`] backend: the frozen
/// apply epoch, the dedup table at that epoch and the app-state chunks
/// (whose concatenation is the canonical `App::snapshot()` encoding).
/// Chunks are refcounted [`Bytes`], so cloning one of these to serve a
/// catch-up costs O(chunks), not O(state bytes).
#[derive(Clone, Debug)]
pub struct ChunkedCheckpoint {
    /// Instances `<= upto` are covered by this checkpoint.
    pub upto: Instance,
    /// Dedup table at the frozen epoch.
    pub dedup: Vec<DedupEntry>,
    /// App-state chunks, in emission order.
    pub chunks: Vec<Bytes>,
}

impl ChunkedCheckpoint {
    /// Reassemble the monolithic [`SnapshotBlob`] (recovery-time cost
    /// only: one concatenation of the chunk bytes).
    #[must_use]
    pub fn assemble(&self) -> SnapshotBlob {
        let total: usize = self.chunks.iter().map(|c| c.len()).sum();
        let mut app = bytes::BytesMut::with_capacity(total);
        for c in &self.chunks {
            app.extend_from_slice(c);
        }
        SnapshotBlob {
            upto: self.upto,
            app: app.freeze(),
            dedup: self.dedup.clone(),
        }
    }
}

/// Everything a replica reloads after a crash.
#[derive(Clone, Debug, Default)]
pub struct DurableState {
    /// Highest ballot promised (never accept/promise below this).
    pub promised: Ballot,
    /// Accepted proposals still in the log, by instance.
    pub accepted: BTreeMap<Instance, (Ballot, Decree)>,
    /// Contiguous chosen-and-applied prefix at the time of the last write.
    pub chosen_prefix: Instance,
    /// Latest checkpoint, if any.
    pub checkpoint: Option<SnapshotBlob>,
}

/// Write-ahead stable storage for one replica.
///
/// Durability is *batch-granular*: `save_*` records a write-ahead entry
/// but need not reach the platter on its own — [`Storage::flush`] is the
/// barrier that makes everything recorded so far durable. The protocol's
/// persist-before-send rule (§3.1/§3.3) therefore holds as long as the
/// embedding runtime calls `flush()` after the handlers run and before
/// any resulting `Promise`/`Accepted` leaves the process; see
/// `gridpaxos_transport::node` for the drive loop that enforces it.
/// Backends that sync on every `save_*` (or keep state purely in memory)
/// implement `flush` as a no-op.
pub trait Storage: Send {
    /// Persist a promise. Must be durable (after the covering [`Storage::flush`])
    /// before the promise is sent.
    fn save_promised(&mut self, b: Ballot);
    /// Persist an accepted proposal. Must be durable (after the covering
    /// [`Storage::flush`]) before `Accepted` is sent. Overwrites any
    /// previous acceptance for the same instance.
    fn save_accepted(&mut self, i: Instance, b: Ballot, d: &Decree);
    /// Persist the contiguous chosen-and-applied prefix.
    fn save_chosen_prefix(&mut self, upto: Instance);
    /// Persist a checkpoint.
    fn save_checkpoint(&mut self, snap: &SnapshotBlob);
    /// Drop accepted entries for instances `<= upto` (they are covered by a
    /// checkpoint).
    fn truncate_upto(&mut self, upto: Instance);
    /// Reload everything (crash recovery).
    fn load(&self) -> DurableState;
    /// Durability barrier: everything recorded by earlier `save_*` calls
    /// is on stable storage when this returns. One `flush` may cover many
    /// records (group commit); backends that sync per record or hold
    /// state in memory need not override the default no-op.
    fn flush(&mut self) {}
    /// Whether records recorded since the last [`Storage::flush`] are
    /// still awaiting the barrier. Always `false` for backends whose
    /// `save_*` calls are immediately durable.
    fn is_dirty(&self) -> bool {
        false
    }
    /// Total persist operations recorded so far (observability: the
    /// simulator's durability cost model reads deltas of this counter).
    fn write_count(&self) -> u64 {
        0
    }

    /// Whether this backend implements the incremental checkpoint calls
    /// below. The replica probes this before starting a chunked
    /// checkpoint and falls back to the monolithic
    /// [`Storage::save_checkpoint`] when unsupported, so third-party
    /// backends that only implement the required methods stay correct.
    fn supports_chunked_checkpoint(&self) -> bool {
        false
    }

    /// Open an incremental checkpoint at apply epoch `upto` with the given
    /// dedup table; `total` chunks will follow. Replaces any prior pending
    /// (uncommitted) chunked checkpoint.
    fn checkpoint_begin(&mut self, upto: Instance, dedup: &[DedupEntry], total: usize) {
        let _ = (upto, dedup, total);
    }

    /// Append chunk `idx` (ascending from 0) of the pending checkpoint.
    fn checkpoint_chunk(&mut self, idx: usize, data: Bytes) {
        let _ = (idx, data);
    }

    /// Atomically commit the pending chunked checkpoint: after this
    /// returns, [`Storage::load`] reflects the new checkpoint.
    fn checkpoint_commit(&mut self) {}

    /// Discard the pending chunked checkpoint (e.g. superseded by an
    /// installed catch-up snapshot).
    fn checkpoint_abort(&mut self) {}

    /// The latest *committed* chunked checkpoint, if this backend holds
    /// one. Serving replicas stream these chunks to lagging peers without
    /// re-serializing O(state) (the chunks are refcounted).
    fn checkpoint_chunks(&self) -> Option<ChunkedCheckpoint> {
        None
    }
}

/// In-memory [`Storage`]. "Durability" means surviving a *simulated* crash:
/// the embedding runtime detaches the storage from the dead replica and
/// hands it to the recovered incarnation.
#[derive(Clone, Debug, Default)]
pub struct MemStorage {
    state: DurableState,
    /// Latest committed chunked checkpoint (authoritative over
    /// `state.checkpoint` when present; `load` assembles it lazily).
    chunked: Option<ChunkedCheckpoint>,
    /// Chunked checkpoint under construction: `(partial, expected_total)`.
    pending: Option<(ChunkedCheckpoint, usize)>,
    /// Number of persist operations performed (observability for tests
    /// and the write-amplification ablation bench).
    pub writes: u64,
}

impl MemStorage {
    /// Fresh, empty storage.
    #[must_use]
    pub fn new() -> MemStorage {
        MemStorage::default()
    }
}

impl Storage for MemStorage {
    fn save_promised(&mut self, b: Ballot) {
        self.state.promised = b;
        self.writes += 1;
    }

    fn save_accepted(&mut self, i: Instance, b: Ballot, d: &Decree) {
        self.state.accepted.insert(i, (b, d.clone()));
        self.writes += 1;
    }

    fn save_chosen_prefix(&mut self, upto: Instance) {
        debug_assert!(upto >= self.state.chosen_prefix);
        self.state.chosen_prefix = upto;
        self.writes += 1;
    }

    fn save_checkpoint(&mut self, snap: &SnapshotBlob) {
        self.state.checkpoint = Some(snap.clone());
        // A monolithic save supersedes any chunked image (e.g. a catch-up
        // snapshot installed over a half-streamed checkpoint).
        self.chunked = None;
        self.writes += 1;
    }

    fn truncate_upto(&mut self, upto: Instance) {
        self.state.accepted = self.state.accepted.split_off(&upto.next());
        self.writes += 1;
    }

    fn load(&self) -> DurableState {
        let mut d = self.state.clone();
        if let Some(ck) = &self.chunked {
            // Assemble lazily: recovery is the only reader that needs the
            // monolithic blob.
            d.checkpoint = Some(ck.assemble());
        }
        d
    }

    // `flush` stays the default no-op: a MemStorage write is "durable"
    // the moment it lands in the struct, so the barrier has nothing to do
    // and `is_dirty` is always false.

    fn write_count(&self) -> u64 {
        self.writes
    }

    fn supports_chunked_checkpoint(&self) -> bool {
        true
    }

    fn checkpoint_begin(&mut self, upto: Instance, dedup: &[DedupEntry], total: usize) {
        self.pending = Some((
            ChunkedCheckpoint {
                upto,
                dedup: dedup.to_vec(),
                chunks: Vec::with_capacity(total),
            },
            total,
        ));
        self.writes += 1;
    }

    fn checkpoint_chunk(&mut self, idx: usize, data: Bytes) {
        if let Some((ck, _)) = &mut self.pending {
            debug_assert_eq!(idx, ck.chunks.len(), "chunks arrive in order");
            ck.chunks.push(data);
        }
        self.writes += 1;
    }

    fn checkpoint_commit(&mut self) {
        if let Some((ck, total)) = self.pending.take() {
            debug_assert_eq!(ck.chunks.len(), total, "commit of a complete image");
            self.chunked = Some(ck);
            // The chunked image is now authoritative; drop a stale
            // monolithic blob so `load` can't resurrect it.
            self.state.checkpoint = None;
        }
        self.writes += 1;
    }

    fn checkpoint_abort(&mut self) {
        self.pending = None;
    }

    fn checkpoint_chunks(&self) -> Option<ChunkedCheckpoint> {
        self.chunked.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ballot::Ballot;
    use crate::types::ProcessId;

    fn ballot(r: u64) -> Ballot {
        Ballot::new(r, ProcessId(0))
    }

    #[test]
    fn roundtrip_promise_and_accepts() {
        let mut s = MemStorage::new();
        s.save_promised(ballot(3));
        s.save_accepted(Instance(1), ballot(3), &Decree::noop());
        s.save_accepted(Instance(2), ballot(3), &Decree::noop());
        s.save_chosen_prefix(Instance(1));

        let d = s.load();
        assert_eq!(d.promised, ballot(3));
        assert_eq!(d.accepted.len(), 2);
        assert_eq!(d.chosen_prefix, Instance(1));
        assert!(d.checkpoint.is_none());
    }

    #[test]
    fn accept_overwrites_same_instance() {
        let mut s = MemStorage::new();
        s.save_accepted(Instance(1), ballot(1), &Decree::noop());
        s.save_accepted(Instance(1), ballot(2), &Decree::noop());
        let d = s.load();
        assert_eq!(d.accepted[&Instance(1)].0, ballot(2));
    }

    #[test]
    fn truncate_drops_covered_entries() {
        let mut s = MemStorage::new();
        for i in 1..=5 {
            s.save_accepted(Instance(i), ballot(1), &Decree::noop());
        }
        s.truncate_upto(Instance(3));
        let d = s.load();
        assert_eq!(
            d.accepted.keys().copied().collect::<Vec<_>>(),
            vec![Instance(4), Instance(5)]
        );
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut s = MemStorage::new();
        let snap = SnapshotBlob {
            upto: Instance(7),
            app: bytes::Bytes::from_static(b"state"),
            dedup: vec![],
        };
        s.save_checkpoint(&snap);
        assert_eq!(s.load().checkpoint.unwrap().upto, Instance(7));
    }

    #[test]
    fn write_counter_tracks_persist_ops() {
        let mut s = MemStorage::new();
        assert_eq!(s.writes, 0);
        s.save_promised(ballot(1));
        s.save_chosen_prefix(Instance(0));
        assert_eq!(s.writes, 2);
        assert_eq!(s.write_count(), 2);
    }

    #[test]
    fn chunked_checkpoint_commit_is_visible_to_load() {
        let mut s = MemStorage::new();
        assert!(s.supports_chunked_checkpoint());
        s.checkpoint_begin(Instance(9), &[], 3);
        for (i, part) in [b"aa".as_slice(), b"bbb", b"c"].iter().enumerate() {
            s.checkpoint_chunk(i, Bytes::copy_from_slice(part));
        }
        // Uncommitted: load sees nothing.
        assert!(s.load().checkpoint.is_none());
        s.checkpoint_commit();
        let d = s.load();
        let snap = d.checkpoint.expect("committed checkpoint");
        assert_eq!(snap.upto, Instance(9));
        assert_eq!(&snap.app[..], b"aabbbc", "chunks concatenate in order");
        let ck = s.checkpoint_chunks().expect("chunks retained");
        assert_eq!(ck.chunks.len(), 3);
        assert_eq!(ck.assemble().app, snap.app);
    }

    #[test]
    fn chunked_checkpoint_abort_discards_pending() {
        let mut s = MemStorage::new();
        s.checkpoint_begin(Instance(4), &[], 2);
        s.checkpoint_chunk(0, Bytes::from_static(b"xy"));
        s.checkpoint_abort();
        s.checkpoint_commit(); // nothing pending: a no-op
        assert!(s.load().checkpoint.is_none());
        assert!(s.checkpoint_chunks().is_none());
    }

    #[test]
    fn monolithic_save_supersedes_chunked() {
        let mut s = MemStorage::new();
        s.checkpoint_begin(Instance(2), &[], 1);
        s.checkpoint_chunk(0, Bytes::from_static(b"old"));
        s.checkpoint_commit();
        s.save_checkpoint(&SnapshotBlob {
            upto: Instance(5),
            app: bytes::Bytes::from_static(b"new"),
            dedup: vec![],
        });
        assert!(s.checkpoint_chunks().is_none());
        assert_eq!(s.load().checkpoint.unwrap().upto, Instance(5));
    }

    #[test]
    fn mem_storage_flush_is_a_clean_no_op() {
        let mut s = MemStorage::new();
        s.save_promised(ballot(1));
        assert!(!s.is_dirty(), "MemStorage writes are durable immediately");
        s.flush();
        assert_eq!(s.load().promised, ballot(1));
        assert_eq!(s.writes, 1, "flush is not a persist op");
    }
}
