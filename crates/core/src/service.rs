//! The service abstraction: what the replication layer replicates.
//!
//! A *nondeterministic* service implements [`App`]. Only the current leader
//! ever calls [`App::execute`] — the one place nondeterminism (randomness,
//! local time) may enter, via the [`ExecCtx`] handed in. Backups never
//! execute; they *apply* the leader's state update ([`App::apply`]), which
//! must be deterministic. This split is precisely what lets the protocol of
//! §3.3 keep nondeterministic replicas consistent.

use crate::command::StateUpdate;
use crate::request::{AbortReason, Request};
use crate::types::{Time, TxnId};
use bytes::Bytes;
use rand::rngs::SmallRng;

/// Execution context handed to [`App::execute`]. Encapsulates every source
/// of nondeterminism so the rest of the system stays deterministic and
/// simulation-friendly: the *logical* current time and a per-replica seeded
/// RNG (distinct seeds per replica are exactly what makes replicas diverge
/// if run independently — the scenario the paper's protocol exists to fix).
pub struct ExecCtx<'a> {
    /// Current time as seen by the executing replica.
    pub now: Time,
    /// Per-replica random number generator.
    pub rng: &'a mut SmallRng,
}

impl<'a> ExecCtx<'a> {
    /// Construct a context.
    pub fn new(now: Time, rng: &'a mut SmallRng) -> ExecCtx<'a> {
        ExecCtx { now, rng }
    }
}

/// A replicated service application.
///
/// # Contract
///
/// * `execute` may be nondeterministic (it gets an [`ExecCtx`]); it returns
///   the client-visible reply and a [`StateUpdate`] describing the state
///   change.
/// * `apply` must be **deterministic**: given the same pre-state, request
///   and update, every replica ends in the same post-state. For
///   [`StateUpdate::Reproduce`] the update carries whatever auxiliary
///   record (`aux`) `execute` chose to emit, and `apply` replays the
///   request deterministically from it.
/// * `snapshot`/`restore` serialize the complete service state; they back
///   checkpoints, recovery promises and catch-up transfers.
///
/// The transaction hooks are only exercised for services driven through
/// T-Paxos or per-operation transactions; the defaults reject transactions.
pub trait App: Send {
    /// Execute `req` against current state (leader only). Returns the reply
    /// payload and the update to replicate.
    ///
    /// For a [`crate::request::RequestKind::Read`] request the update must
    /// be [`StateUpdate::None`]; the replica layer enforces this.
    fn execute(&mut self, req: &Request, ctx: &mut ExecCtx<'_>) -> (Bytes, StateUpdate);

    /// Deterministically apply a replicated update (all replicas, including
    /// the leader replaying its own log after recovery).
    fn apply(&mut self, req: &Request, update: &StateUpdate);

    /// Serialize the complete service state.
    fn snapshot(&self) -> Bytes;

    /// Replace the service state with a snapshot produced by [`App::snapshot`].
    fn restore(&mut self, snap: &[u8]);

    /// The shard key of `req`, for multi-group (sharded) deployments: two
    /// requests returning the same key are guaranteed to land in the same
    /// consensus group and therefore observe each other in a total order.
    /// `None` means the request is keyless (or the service is unsharded)
    /// and routes to group 0. The default keeps every service unsharded.
    fn shard_key(&self, _req: &Request) -> Option<u64> {
        None
    }

    /// Begin staging transaction `txn` (leader only).
    fn txn_begin(&mut self, _txn: TxnId) {}

    /// Execute one operation inside `txn`, staging its effects (leader
    /// only). Returns the reply payload and — for per-operation coordinated
    /// transactions — a staging update the backups apply to mirror the
    /// staged effect. Services that cannot honor the operation (e.g. a lock
    /// conflict with a concurrent transaction) return an [`AbortReason`].
    ///
    /// `durable` distinguishes the two transaction modes:
    ///
    /// * `true` (per-operation coordination): the staged effect is
    ///   replicated through consensus, so it is part of replicated state
    ///   and **must** be included in [`App::snapshot`].
    /// * `false` (T-Paxos): the staged effect lives only on the leader and
    ///   dies with its leadership (§3.6), so it **must not** appear in
    ///   snapshots; [`App::restore`] additionally clears all volatile
    ///   staging.
    fn txn_execute(
        &mut self,
        _txn: TxnId,
        _req: &Request,
        _durable: bool,
        _ctx: &mut ExecCtx<'_>,
    ) -> Result<(Bytes, StateUpdate), AbortReason> {
        Err(AbortReason::Unsupported)
    }

    /// Commit `txn`: fold its staged effects into committed state and
    /// return the combined update for replication (leader only).
    fn txn_commit(&mut self, _txn: TxnId) -> StateUpdate {
        StateUpdate::None
    }

    /// Abort `txn`, discarding staged effects (leader only).
    fn txn_abort(&mut self, _txn: TxnId) {}

    /// Begin an undo-logged tentative execution (leader only). The replica
    /// layer calls this immediately before [`App::execute`]-ing a proposal
    /// it may later have to abandon (a lost leadership race, §3.3). A
    /// service that returns `true` promises that a later
    /// [`App::tentative_rollback`] restores the exact pre-`execute` state
    /// and that [`App::tentative_commit`] makes the execution permanent.
    /// The default returns `false`, and the replica falls back to taking a
    /// full [`App::snapshot`] before executing — correct for any service,
    /// but O(state size) per decree.
    fn tentative_begin(&mut self) -> bool {
        false
    }

    /// Discard the effects of the tentative execution opened by the last
    /// [`App::tentative_begin`], restoring the pre-execution state.
    fn tentative_rollback(&mut self) {}

    /// Make the tentative execution permanent (its decree was chosen).
    fn tentative_commit(&mut self) {}

    /// Freeze the current state for incremental (chunked) snapshot
    /// emission and return the number of chunks. The frozen image must
    /// equal what [`App::snapshot`] would have returned at the moment of
    /// the freeze, and the concatenation of
    /// `snapshot_chunk(0) .. snapshot_chunk(n-1)` must reproduce those
    /// bytes exactly. While frozen, `apply`/`execute` may continue to
    /// mutate live state without disturbing the frozen image, and
    /// [`App::snapshot`] keeps returning the *live* state. `chunk_bytes`
    /// is the target chunk size; the default freezes nothing and reports a
    /// single chunk (emitted by the default [`App::snapshot_chunk`], which
    /// falls back to a monolithic [`App::snapshot`]).
    fn snapshot_begin(&mut self, _chunk_bytes: usize) -> usize {
        1
    }

    /// Emit chunk `idx` (ascending from 0, each index exactly once) of the
    /// image frozen by the last [`App::snapshot_begin`].
    fn snapshot_chunk(&mut self, idx: usize) -> Bytes {
        debug_assert_eq!(idx, 0, "default chunking emits a single chunk");
        self.snapshot()
    }

    /// Release the frozen image (after the last chunk, or on abort).
    fn snapshot_end(&mut self) {}

    /// Apply a replicated T-Paxos transaction commit (all replicas). The
    /// default simply applies the combined update as a write; services with
    /// richer staging semantics may override.
    fn apply_txn_commit(&mut self, _txn: TxnId, ops: &[Request], update: &StateUpdate) {
        if let Some(first) = ops.first() {
            self.apply(first, update);
        } else if !update.is_none() {
            // No ops recorded but a state change shipped: apply it against a
            // synthetic empty request.
            let dummy = Request::new(
                crate::request::RequestId::new(
                    crate::types::ClientId(u64::MAX),
                    crate::types::Seq(0),
                ),
                crate::request::RequestKind::Write,
                Bytes::new(),
            );
            self.apply(&dummy, update);
        }
    }
}

/// The trivial service used by the paper's evaluation (§4): every request
/// "invokes an empty method" so measurements isolate replication overhead.
/// State is a single counter of applied writes (a few bytes, like the
/// paper's small service state), so tests can still verify replica
/// consistency.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct NoopApp {
    /// Number of writes applied — the entire service state.
    pub writes_applied: u64,
}

impl NoopApp {
    /// Fresh no-op service.
    #[must_use]
    pub fn new() -> NoopApp {
        NoopApp::default()
    }

    fn encode(&self) -> Bytes {
        Bytes::copy_from_slice(&self.writes_applied.to_le_bytes())
    }

    fn decode(buf: &[u8]) -> u64 {
        let mut b = [0u8; 8];
        let n = buf.len().min(8);
        b[..n].copy_from_slice(&buf[..n]);
        u64::from_le_bytes(b)
    }
}

impl App for NoopApp {
    fn execute(&mut self, req: &Request, _ctx: &mut ExecCtx<'_>) -> (Bytes, StateUpdate) {
        match req.kind {
            crate::request::RequestKind::Read => (self.encode(), StateUpdate::None),
            _ => {
                self.writes_applied += 1;
                (self.encode(), StateUpdate::Full(self.encode()))
            }
        }
    }

    fn apply(&mut self, _req: &Request, update: &StateUpdate) {
        match update {
            StateUpdate::None => {}
            StateUpdate::Full(b) | StateUpdate::Delta(b) => {
                self.writes_applied = Self::decode(b);
            }
            StateUpdate::Reproduce(_) => {
                self.writes_applied += 1;
            }
        }
    }

    fn snapshot(&self) -> Bytes {
        self.encode()
    }

    fn restore(&mut self, snap: &[u8]) {
        self.writes_applied = Self::decode(snap);
    }

    // The evaluation's transactions also invoke empty methods; stage nothing
    // and count committed writes at commit time.
    fn txn_begin(&mut self, _txn: TxnId) {}

    fn txn_execute(
        &mut self,
        _txn: TxnId,
        _req: &Request,
        _durable: bool,
        _ctx: &mut ExecCtx<'_>,
    ) -> Result<(Bytes, StateUpdate), AbortReason> {
        Ok((Bytes::new(), StateUpdate::None))
    }

    fn txn_commit(&mut self, _txn: TxnId) -> StateUpdate {
        self.writes_applied += 1;
        StateUpdate::Full(self.encode())
    }

    fn txn_abort(&mut self, _txn: TxnId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestId, RequestKind};
    use crate::types::{ClientId, Seq};
    use rand::SeedableRng;

    fn req(kind: RequestKind, seq: u64) -> Request {
        Request::new(RequestId::new(ClientId(1), Seq(seq)), kind, Bytes::new())
    }

    #[test]
    fn noop_reads_do_not_change_state() {
        let mut app = NoopApp::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        let (_, up) = app.execute(&req(RequestKind::Read, 1), &mut ctx);
        assert!(up.is_none());
        assert_eq!(app.writes_applied, 0);
    }

    #[test]
    fn noop_writes_ship_full_state() {
        let mut app = NoopApp::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        let (_, up) = app.execute(&req(RequestKind::Write, 1), &mut ctx);
        assert_eq!(app.writes_applied, 1);
        match &up {
            StateUpdate::Full(b) => assert_eq!(NoopApp::decode(b), 1),
            other => panic!("expected Full, got {other:?}"),
        }

        // A backup applying the update converges.
        let mut backup = NoopApp::new();
        backup.apply(&req(RequestKind::Write, 1), &up);
        assert_eq!(backup, app);
    }

    #[test]
    fn noop_snapshot_roundtrip() {
        let mut app = NoopApp::new();
        app.writes_applied = 42;
        let snap = app.snapshot();
        let mut restored = NoopApp::new();
        restored.restore(&snap);
        assert_eq!(restored, app);
    }

    #[test]
    fn noop_txn_counts_on_commit_only() {
        let mut app = NoopApp::new();
        let mut rng = SmallRng::seed_from_u64(1);
        app.txn_begin(TxnId(1));
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        let r = Request::txn_op(
            RequestId::new(ClientId(1), Seq(1)),
            RequestKind::Write,
            TxnId(1),
            Bytes::new(),
        );
        app.txn_execute(TxnId(1), &r, false, &mut ctx).unwrap();
        assert_eq!(app.writes_applied, 0, "staged, not committed");
        let up = app.txn_commit(TxnId(1));
        assert_eq!(app.writes_applied, 1);
        assert!(!up.is_none());
    }

    #[test]
    fn default_txn_hooks_reject() {
        // A minimal app that doesn't override transactions.
        struct Plain;
        impl App for Plain {
            fn execute(&mut self, _r: &Request, _c: &mut ExecCtx<'_>) -> (Bytes, StateUpdate) {
                (Bytes::new(), StateUpdate::None)
            }
            fn apply(&mut self, _r: &Request, _u: &StateUpdate) {}
            fn snapshot(&self) -> Bytes {
                Bytes::new()
            }
            fn restore(&mut self, _s: &[u8]) {}
        }
        let mut p = Plain;
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = ExecCtx::new(Time::ZERO, &mut rng);
        let r = req(RequestKind::Write, 1);
        assert_eq!(
            p.txn_execute(TxnId(1), &r, true, &mut ctx).unwrap_err(),
            AbortReason::Unsupported
        );
    }
}
