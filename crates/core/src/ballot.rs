//! Ballots and proposal numbers (§3.2–3.3 of the paper).
//!
//! A *ballot* identifies one leadership attempt: a `(round, proposer)`
//! pair, compared lexicographically so that every two ballots are ordered
//! and ballots from distinct proposers never collide.
//!
//! A *proposal number* identifies one accept request: a
//! `(ballot, instance)` pair, again ordered lexicographically — "first by
//! the ballot number and then by the instance number" — exactly as §3.3
//! prescribes for ordering logged proposals.

use crate::types::{Instance, ProcessId};
use std::fmt;

/// A leadership ballot.
///
/// `Ballot::ZERO` is a sentinel smaller than any real ballot; replicas
/// start with it as their promised ballot so the first real prepare
/// always succeeds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Ballot {
    /// Election round. Incremented each time a process starts a new
    /// leadership attempt.
    pub round: u64,
    /// The process proposing with this ballot. Breaks ties between
    /// concurrent attempts in the same round.
    pub proposer: ProcessId,
}

impl Ballot {
    /// Sentinel ballot smaller than every ballot any process can issue.
    pub const ZERO: Ballot = Ballot {
        round: 0,
        proposer: ProcessId(0),
    };

    /// Construct a ballot.
    #[must_use]
    pub fn new(round: u64, proposer: ProcessId) -> Ballot {
        Ballot { round, proposer }
    }

    /// The ballot process `p` should use to outbid `self`: the next round,
    /// proposed by `p`. Guaranteed greater than `self` regardless of `p`.
    #[must_use]
    pub fn successor(self, p: ProcessId) -> Ballot {
        Ballot {
            round: self.round + 1,
            proposer: p,
        }
    }

    /// Whether this is the sentinel (no leader has ever been established).
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Ballot::ZERO
    }
}

impl fmt::Debug for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.proposer.0)
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.proposer.0)
    }
}

/// A proposal number: the identity of one accept request.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct ProposalNum {
    /// Ballot under which the proposal is made. Major component.
    pub ballot: Ballot,
    /// Consensus instance the proposal targets. Minor component.
    pub instance: Instance,
}

impl ProposalNum {
    /// Construct a proposal number.
    #[must_use]
    pub fn new(ballot: Ballot, instance: Instance) -> ProposalNum {
        ProposalNum { ballot, instance }
    }
}

impl fmt::Debug for ProposalNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.ballot, self.instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_lexicographic_order() {
        let a = Ballot::new(1, ProcessId(0));
        let b = Ballot::new(1, ProcessId(1));
        let c = Ballot::new(2, ProcessId(0));
        assert!(a < b, "same round: higher proposer id wins");
        assert!(b < c, "higher round dominates proposer id");
        assert!(Ballot::ZERO < a);
    }

    #[test]
    fn successor_always_greater() {
        let b = Ballot::new(7, ProcessId(9));
        for p in 0..10 {
            let s = b.successor(ProcessId(p));
            assert!(s > b, "successor({p}) must outbid");
        }
    }

    #[test]
    fn proposal_num_order_ballot_major() {
        // §3.3: "ordered lexicographically, first by the ballot number and
        // then by the instance number".
        let low_ballot_high_inst = ProposalNum::new(Ballot::new(1, ProcessId(0)), Instance(100));
        let high_ballot_low_inst = ProposalNum::new(Ballot::new(2, ProcessId(0)), Instance(1));
        assert!(low_ballot_high_inst < high_ballot_low_inst);

        let same_ballot_i3 = ProposalNum::new(Ballot::new(2, ProcessId(0)), Instance(3));
        let same_ballot_i4 = ProposalNum::new(Ballot::new(2, ProcessId(0)), Instance(4));
        assert!(same_ballot_i3 < same_ballot_i4);
    }

    #[test]
    fn zero_sentinel() {
        assert!(Ballot::ZERO.is_zero());
        assert!(!Ballot::new(0, ProcessId(1)).is_zero());
        assert!(Ballot::new(0, ProcessId(1)) > Ballot::ZERO);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ballot::new(3, ProcessId(1)).to_string(), "b3.1");
        let pn = ProposalNum::new(Ballot::new(3, ProcessId(1)), Instance(9));
        assert_eq!(format!("{pn:?}"), "b3.1@i9");
    }
}
