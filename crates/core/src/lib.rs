//! # gridpaxos-core
//!
//! Sans-io protocol core reproducing *"Replicating Nondeterministic
//! Services on Grid Environments"* (Zhang, Junqueira, Marzullo, Hiltunen,
//! Schlichting — HPDC 2006).
//!
//! The crate implements:
//!
//! * **The basic protocol** (§3.3): multi-instance Paxos in which the value
//!   chosen by instance *i* is the tuple `⟨request, resulting state⟩`, so
//!   replicas of a *nondeterministic* service stay consistent without
//!   re-executing nondeterministic code.
//! * **X-Paxos** (§3.4): a majority-confirmation fast path for read
//!   requests — latency `2M + max(E, m)` instead of `2M + E + 2m`.
//! * **T-Paxos** (§3.5): transactions whose operations are answered
//!   immediately by the leader, with coordination deferred to commit.
//! * Leader election with stability (§3.6), crash-recovery from stable
//!   storage, checkpointing, state transfer and client logic.
//!
//! Everything is *sans-io*: protocol participants are deterministic state
//! machines consuming `(message, time)` and producing [`action::Action`]s.
//! The `gridpaxos-simnet` crate drives them under a virtual clock; the
//! `gridpaxos-transport` crate drives the identical code over TCP.
//!
//! ## Quick tour
//!
//! ```
//! use gridpaxos_core::prelude::*;
//!
//! // Three replicas of the evaluation's no-op service.
//! let cfg = Config::cluster(3);
//! let r0 = Replica::new(
//!     ProcessId(0),
//!     cfg.clone(),
//!     Box::new(NoopApp::new()),
//!     Box::new(MemStorage::new()),
//!     42,
//!     Time::ZERO,
//! );
//! assert!(!r0.is_leader()); // leadership requires running the election
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod action;
pub mod apply;
pub mod ballot;
pub mod client;
pub mod command;
pub mod config;
pub mod election;
pub mod log;
pub mod msg;
pub mod multi;
pub mod replica;
pub mod request;
pub mod service;
pub mod storage;
pub mod types;

/// Convenient re-exports of the types most embeddings need.
pub mod prelude {
    pub use crate::action::{Action, TimerKind};
    pub use crate::apply::{ApplyPool, PipelinedApp};
    pub use crate::ballot::{Ballot, ProposalNum};
    pub use crate::client::{
        ClientCore, CompletedOp, ShardRouter, TxnDriver, TxnOutcome, TxnScript,
    };
    pub use crate::command::{Command, Decree, SnapshotBlob, StateUpdate};
    pub use crate::config::{Config, ReadMode, TxnMode, ValueMode};
    pub use crate::msg::Msg;
    pub use crate::multi::MultiReplica;
    pub use crate::replica::{Replica, ReplicaStats, Role};
    pub use crate::request::{
        AbortReason, Reply, ReplyBody, Request, RequestId, RequestKind, TxnCtl,
    };
    pub use crate::service::{App, ExecCtx, NoopApp};
    pub use crate::storage::{MemStorage, Storage};
    pub use crate::types::{
        majority, shard_of, Addr, ClientId, Dur, GroupId, Instance, ProcessId, Seq, Time, TxnId,
    };
}
