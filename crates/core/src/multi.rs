//! Multi-group sharded consensus (extension beyond the paper).
//!
//! A [`MultiReplica`] hosts `G` fully independent replica state machines
//! ("groups") inside one process. Each group is an unmodified instance of
//! the whole protocol — its own log, ballot space, leader election,
//! failure detector and strict §3.3 pipeline — so every per-group safety
//! argument of the reproduction carries over verbatim. What sharding adds
//! is *throughput*: with the service keyspace hash-partitioned across
//! groups, `G` leaders run `G` strict pipelines concurrently, and a
//! deployment whose write throughput is bound by the one-decree-at-a-time
//! pipeline scales with `G`.
//!
//! Routing is by message envelope: multi-group deployments wrap every
//! protocol message in [`Msg::Grouped`]; a [`MultiReplica`] with one group
//! never wraps, making the single-group configuration byte-identical to
//! the plain [`Replica`] protocol. No ordering whatsoever is established
//! *across* groups — cross-shard operations are the service's problem
//! (see the kvstore's cross-shard rejection) or the client's (pin the
//! keys of one transaction to one group).
//!
//! Bootstrap leaders rotate across processes (`(p + g) mod n`) so the `G`
//! leaders — and therefore the leader-side CPU work — spread over the
//! cluster instead of piling onto process 0.

use crate::action::{Action, TimerKind};
use crate::config::Config;
use crate::msg::Msg;
use crate::replica::Replica;
use crate::service::App;
use crate::storage::Storage;
use crate::types::{Addr, GroupId, ProcessId, Time};

/// Derive group `g`'s config from the deployment config: identical except
/// for the bootstrap leader, which rotates across processes so leadership
/// load spreads over the cluster.
#[must_use]
pub fn group_config(cfg: &Config, g: GroupId) -> Config {
    let mut c = cfg.clone();
    if let Some(p) = c.bootstrap_leader {
        c.bootstrap_leader = Some(ProcessId((p.0 + g.0) % cfg.n as u32));
    }
    c
}

/// Derive group `g`'s RNG seed from the process seed. Group 0 keeps the
/// seed unchanged, so a single-group [`MultiReplica`] is bit-identical to
/// a bare [`Replica`] built with the same seed.
#[must_use]
pub fn group_seed(seed: u64, g: GroupId) -> u64 {
    seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(g.0))
}

/// `G` independent replica state machines sharing one process identity.
pub struct MultiReplica {
    id: ProcessId,
    groups: Vec<Replica>,
}

impl MultiReplica {
    /// Create a fresh multi-group replica: `n_groups` independent groups,
    /// each with its own service instance and stable storage.
    #[must_use]
    pub fn new(
        id: ProcessId,
        cfg: Config,
        n_groups: usize,
        app_factory: &dyn Fn() -> Box<dyn App>,
        storage_factory: &mut dyn FnMut() -> Box<dyn Storage>,
        seed: u64,
        now: Time,
    ) -> MultiReplica {
        assert!(n_groups >= 1, "at least one group");
        // Apply pipeline (`cfg.apply_workers > 0`): one worker pool per
        // process, each group's app wrapped so chosen decrees apply off
        // the drive thread and groups apply in parallel. The default (0)
        // applies inline — fully deterministic, byte-identical to the
        // unwrapped replica.
        let pool = (cfg.apply_workers > 0).then(|| crate::apply::ApplyPool::new(cfg.apply_workers));
        let groups = (0..n_groups)
            .map(|g| {
                let g = GroupId(g as u32);
                let app = match &pool {
                    Some(p) => p.wrap(app_factory()),
                    None => app_factory(),
                };
                Replica::new(
                    id,
                    group_config(&cfg, g),
                    app,
                    storage_factory(),
                    group_seed(seed, g),
                    now,
                )
            })
            .collect();
        MultiReplica { id, groups }
    }

    /// Recover a multi-group replica after a crash, one storage per group
    /// in group order (as returned by [`MultiReplica::into_storages`]).
    #[must_use]
    pub fn recover(
        id: ProcessId,
        cfg: Config,
        storages: Vec<Box<dyn Storage>>,
        app_factory: &dyn Fn() -> Box<dyn App>,
        seed: u64,
        now: Time,
    ) -> MultiReplica {
        assert!(!storages.is_empty(), "at least one group");
        let pool = (cfg.apply_workers > 0).then(|| crate::apply::ApplyPool::new(cfg.apply_workers));
        let groups = storages
            .into_iter()
            .enumerate()
            .map(|(g, storage)| {
                let g = GroupId(g as u32);
                let app = match &pool {
                    Some(p) => p.wrap(app_factory()),
                    None => app_factory(),
                };
                Replica::recover(
                    id,
                    group_config(&cfg, g),
                    app,
                    storage,
                    group_seed(seed, g),
                    now,
                )
            })
            .collect();
        MultiReplica { id, groups }
    }

    /// This process's id.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Number of groups hosted.
    #[must_use]
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Access one group's replica.
    #[must_use]
    pub fn group(&self, g: GroupId) -> Option<&Replica> {
        self.groups.get(g.0 as usize)
    }

    /// Mutable access to one group's replica (tests, harnesses).
    pub fn group_mut(&mut self, g: GroupId) -> Option<&mut Replica> {
        self.groups.get_mut(g.0 as usize)
    }

    /// Consume the process (a crash), keeping each group's stable storage
    /// in group order.
    #[must_use]
    pub fn into_storages(self) -> Vec<Box<dyn Storage>> {
        self.groups.into_iter().map(Replica::into_storage).collect()
    }

    /// Durability barrier over every group's storage (see
    /// [`Replica::flush_storage`]). Groups sharing a write-ahead log
    /// coalesce: after the first dirty group syncs, the rest observe
    /// clean storage and skip.
    pub fn flush_all(&mut self) {
        for r in &mut self.groups {
            if r.storage_dirty() {
                r.flush_storage();
            }
        }
    }

    /// Total persist operations recorded across every group's storage
    /// ([`Replica::storage_writes`]). The simulator's durability cost
    /// model charges fsync time from deltas of this sum.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.groups.iter().map(Replica::storage_writes).sum()
    }

    /// Start every group. Actions are tagged with the group they belong
    /// to; timer actions must be keyed per group by the runtime.
    pub fn on_start(&mut self, now: Time) -> Vec<(GroupId, Action)> {
        let mut out = Vec::new();
        for g in 0..self.groups.len() {
            let gid = GroupId(g as u32);
            let actions = self.groups[g].on_start(now);
            self.collect(gid, actions, &mut out);
        }
        out
    }

    /// Route an incoming message to its group: a [`Msg::Grouped`] envelope
    /// addresses the group it names (unknown groups are dropped — a
    /// mis-configured peer, not a protocol condition); a bare message can
    /// only come from a single-group sender and addresses group 0.
    pub fn on_message(&mut self, from: Addr, msg: Msg, now: Time) -> Vec<(GroupId, Action)> {
        let (gid, inner) = match msg {
            Msg::Grouped { group, inner } => (group, *inner),
            bare => (GroupId::ZERO, bare),
        };
        let Some(r) = self.groups.get_mut(gid.0 as usize) else {
            return Vec::new();
        };
        let actions = r.on_message(from, inner, now);
        let mut out = Vec::new();
        self.collect(gid, actions, &mut out);
        out
    }

    /// Fire a timer belonging to group `g`.
    pub fn on_timer(&mut self, g: GroupId, kind: TimerKind, now: Time) -> Vec<(GroupId, Action)> {
        let Some(r) = self.groups.get_mut(g.0 as usize) else {
            return Vec::new();
        };
        let actions = r.on_timer(kind, now);
        let mut out = Vec::new();
        self.collect(g, actions, &mut out);
        out
    }

    /// Tag `actions` with their group and wrap outgoing message payloads
    /// in the group envelope (multi-group deployments only: one group
    /// stays byte-identical to the plain protocol).
    fn collect(&self, g: GroupId, actions: Vec<Action>, out: &mut Vec<(GroupId, Action)>) {
        let wrap = self.groups.len() > 1;
        for a in actions {
            let a = if wrap {
                match a {
                    Action::Send { to, msg } => Action::Send {
                        to,
                        msg: wrap_msg(g, msg),
                    },
                    Action::ToAllReplicas { msg } => Action::ToAllReplicas {
                        msg: wrap_msg(g, msg),
                    },
                    other => other,
                }
            } else {
                a
            };
            out.push((g, a));
        }
    }
}

fn wrap_msg(g: GroupId, msg: Msg) -> Msg {
    debug_assert!(
        !matches!(msg, Msg::Grouped { .. }),
        "group envelopes never nest"
    );
    Msg::Grouped {
        group: g,
        inner: Box::new(msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, RequestId, RequestKind};
    use crate::service::NoopApp;
    use crate::storage::MemStorage;
    use crate::types::{ClientId, Seq};
    use bytes::Bytes;

    type AppFactory = Box<dyn Fn() -> Box<dyn App>>;
    type StorageFactory = Box<dyn FnMut() -> Box<dyn Storage>>;

    fn factories() -> (AppFactory, StorageFactory) {
        (
            Box::new(|| Box::new(NoopApp::new()) as Box<dyn App>),
            Box::new(|| Box::new(MemStorage::new()) as Box<dyn Storage>),
        )
    }

    fn multi(n_groups: usize, seed: u64) -> MultiReplica {
        let (apps, mut stores) = factories();
        MultiReplica::new(
            ProcessId(0),
            Config::cluster(3),
            n_groups,
            apps.as_ref(),
            stores.as_mut(),
            seed,
            Time::ZERO,
        )
    }

    fn write_req(seq: u64) -> Msg {
        Msg::Request(Request::new(
            RequestId::new(ClientId(1), Seq(seq)),
            RequestKind::Write,
            Bytes::new(),
        ))
    }

    #[test]
    fn single_group_is_action_identical_to_bare_replica() {
        let seed = 42;
        let mut bare = Replica::new(
            ProcessId(0),
            Config::cluster(3),
            Box::new(NoopApp::new()),
            Box::new(MemStorage::new()),
            seed,
            Time::ZERO,
        );
        let mut m = multi(1, seed);

        let a = bare.on_start(Time::ZERO);
        let b = m.on_start(Time::ZERO);
        assert_eq!(a.len(), b.len());
        for (x, (g, y)) in a.iter().zip(&b) {
            assert_eq!(*g, GroupId::ZERO);
            assert_eq!(format!("{x:?}"), format!("{y:?}"), "G=1 must not wrap");
        }

        let from = Addr::Client(ClientId(1));
        let a = bare.on_message(from, write_req(1), Time(1));
        let b = m.on_message(from, write_req(1), Time(1));
        assert_eq!(a.len(), b.len());
        for (x, (_, y)) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn bootstrap_leaders_rotate_across_groups() {
        let m = multi(4, 7);
        for g in 0..4u32 {
            let cfg = m.group(GroupId(g)).unwrap().config();
            assert_eq!(cfg.bootstrap_leader, Some(ProcessId(g % 3)));
        }
        // The rotation only renames the bootstrap leader; n is untouched.
        assert_eq!(m.group(GroupId(3)).unwrap().config().n, 3);
    }

    #[test]
    fn grouped_messages_route_to_their_group_only() {
        let mut m = multi(2, 9);
        let _ = m.on_start(Time::ZERO);
        // Group 1's bootstrap leader is r1, not us; group 0's is r0 = us,
        // so starting up put group 0 into an election.
        assert!(m.group(GroupId::ZERO).unwrap().leading_ballot().is_some());
        // A request enveloped for group 1 must not touch group 0's state.
        let before = m.group(GroupId::ZERO).unwrap().log_len();
        let msg = Msg::Grouped {
            group: GroupId(1),
            inner: Box::new(write_req(1)),
        };
        let out = m.on_message(Addr::Client(ClientId(1)), msg, Time(1));
        for (g, _) in &out {
            assert_eq!(*g, GroupId(1));
        }
        assert_eq!(m.group(GroupId::ZERO).unwrap().log_len(), before);
    }

    #[test]
    fn multi_group_outputs_are_enveloped() {
        let mut m = multi(2, 11);
        let out = m.on_start(Time::ZERO);
        for (g, a) in &out {
            if let Action::Send { msg, .. } | Action::ToAllReplicas { msg } = a {
                match msg {
                    Msg::Grouped { group, inner } => {
                        assert_eq!(group, g);
                        assert!(!matches!(**inner, Msg::Grouped { .. }), "no nesting");
                    }
                    other => panic!("unwrapped outbound message: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn unknown_group_is_dropped() {
        let mut m = multi(2, 13);
        let msg = Msg::Grouped {
            group: GroupId(7),
            inner: Box::new(write_req(1)),
        };
        assert!(m
            .on_message(Addr::Client(ClientId(1)), msg, Time(1))
            .is_empty());
    }

    #[test]
    fn crash_and_recover_preserves_every_group() {
        let mut m = multi(2, 15);
        let _ = m.on_start(Time::ZERO);
        let storages = m.into_storages();
        assert_eq!(storages.len(), 2);
        let (apps, _) = factories();
        let m2 = MultiReplica::recover(
            ProcessId(0),
            Config::cluster(3),
            storages,
            apps.as_ref(),
            15,
            Time(1),
        );
        assert_eq!(m2.n_groups(), 2);
        assert_eq!(
            m2.group(GroupId(1)).unwrap().config().bootstrap_leader,
            Some(ProcessId(1))
        );
    }

    #[test]
    fn group_seed_is_identity_for_group_zero() {
        assert_eq!(group_seed(0xabcd, GroupId::ZERO), 0xabcd);
        assert_ne!(group_seed(0xabcd, GroupId(1)), 0xabcd);
        assert_ne!(
            group_seed(0xabcd, GroupId(1)),
            group_seed(0xabcd, GroupId(2))
        );
    }
}
