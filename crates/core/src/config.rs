//! Replica group configuration and protocol mode switches.

use crate::types::{Dur, ProcessId};

/// How read requests are coordinated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadMode {
    /// X-Paxos (§3.4): the leader executes the read while collecting
    /// majority confirms in parallel; latency `2M + max(E, m)`.
    XPaxos,
    /// Reads run through a full consensus instance like writes (with a
    /// `StateUpdate::None`); latency `2M + E + 2m`. Used as the ablation
    /// baseline when quantifying X-Paxos's gain.
    Consensus,
    /// Leader leases (an extension beyond the paper): followers ack
    /// heartbeats, and a majority of acks grants the leader the right to
    /// answer reads locally for [`Config::lease_dur`] — latency `2M + E`,
    /// the same as an unreplicated service. Sound only under the timing
    /// assumption that elections start no earlier than `suspect_timeout`
    /// after the last leader sign and clock drift is bounded (exact in
    /// the simulator); reads fall back to consensus when no lease is
    /// held.
    Lease,
}

/// How transactional requests are coordinated (the three operation modes
/// measured in §4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnMode {
    /// Every transaction operation is coordinated as it arrives (reads per
    /// [`ReadMode`], writes and commits through consensus). The paper's
    /// "read/write" and "write-only" rows use this mode.
    PerOp,
    /// T-Paxos (§3.5): operations execute on the leader with immediate
    /// replies; replicas coordinate only at commit.
    TPaxos,
}

/// Which value consensus is run on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueMode {
    /// The paper's protocol for nondeterministic services: decrees carry
    /// `⟨request, resulting state⟩` and backups apply shipped state.
    ReqState,
    /// Classic state-machine replication: decrees carry only the request
    /// and every replica executes it. **Correct only for deterministic
    /// services**; provided as the classic-Paxos baseline.
    ReqOnly,
}

/// Full configuration of one replica.
#[derive(Clone, Debug)]
pub struct Config {
    /// Total number of replicas (`n`). Majority is `n/2 + 1`.
    pub n: usize,
    /// Leader heartbeat period.
    pub heartbeat_interval: Dur,
    /// Follower suspicion timeout: with no sign of the leader for this
    /// long, a follower starts an election. Must be comfortably larger
    /// than `heartbeat_interval` for leader stability (§3.6).
    pub suspect_timeout: Dur,
    /// Leader retransmission timeout for an unacknowledged accept.
    pub retransmit_timeout: Dur,
    /// Base backoff between election attempts; each replica adds
    /// rank-and-jitter so candidates rarely duel.
    pub election_backoff: Dur,
    /// Duration of a read lease ([`ReadMode::Lease`]), measured from the
    /// moment the granting heartbeat was sent. Must not exceed
    /// `suspect_timeout` or the lease could outlive the guarantee that no
    /// new leader is elected.
    pub lease_dur: Dur,
    /// Read coordination mode.
    pub read_mode: ReadMode,
    /// Transaction coordination mode.
    pub txn_mode: TxnMode,
    /// Consensus value contents.
    pub value_mode: ValueMode,
    /// Take a checkpoint (and truncate the log) every this many chosen
    /// instances. `0` disables checkpointing.
    pub checkpoint_every: u64,
    /// Maximum requests the leader packs into one decree (one consensus
    /// instance). `1` disables batching.
    pub max_batch: usize,
    /// How long a loaded leader waits to accumulate a batch before
    /// proposing. Applied only when the previous decree carried more than
    /// one request (i.e. under concurrency), so single-client latency is
    /// unaffected. Models the natural socket-drain coalescing of a real
    /// server. `Dur::ZERO` disables the window.
    pub batch_window: Dur,
    /// Epoch-batched confirm rounds for [`ReadMode::XPaxos`] (extension):
    /// under read load the leader seals open reads into confirm epochs and
    /// validates each epoch with one `ConfirmReq`/`ConfirmBatch` exchange
    /// per follower instead of one `Confirm` per read, collapsing
    /// O(reads × n) confirm traffic to O(n) per round. A lone read still
    /// completes off the followers' per-read confirms (the round carries a
    /// `backlog` hint and suppression only engages under load), so the
    /// paper's `2M + max(E, m)` single-read latency is preserved. `false`
    /// reproduces the paper's per-read confirm protocol exactly.
    pub confirm_batching: bool,
    /// If set, this replica bootstraps an election immediately at startup
    /// instead of waiting out the suspicion timeout. Used to pre-elect a
    /// stable leader, which is the paper's steady-state assumption
    /// ("the common case is the one of no suspicions and no failures").
    pub bootstrap_leader: Option<ProcessId>,
    /// Target chunk size (bytes) for incremental checkpoints. When
    /// nonzero (and the [`crate::storage::Storage`] supports chunked
    /// checkpoints), a checkpoint freezes the service state and streams it
    /// out in chunks of roughly this size across drive cycles instead of
    /// serializing everything inline — decree choice and transport I/O
    /// never stall for O(state size). `0` keeps the legacy stop-the-world
    /// monolithic checkpoint.
    pub checkpoint_chunk_bytes: usize,
    /// Apply-pipeline worker threads per node (see `crate::apply`). `0`
    /// applies chosen decrees inline on the drive thread (the legacy,
    /// fully deterministic path — required by the model checker). With
    /// `W > 0`, a `MultiReplica` hands each group's state application to a
    /// pool of `W` workers: groups apply in parallel and the drive thread
    /// only blocks when it genuinely needs applied state (reads,
    /// snapshots, tentative execution).
    pub apply_workers: usize,
}

impl Config {
    /// A configuration with timeouts suited to local-cluster latencies
    /// (sub-millisecond RTTs): heartbeat every 10 ms, suspect after 50 ms.
    #[must_use]
    pub fn cluster(n: usize) -> Config {
        Config {
            n,
            heartbeat_interval: Dur::from_millis(10),
            suspect_timeout: Dur::from_millis(50),
            retransmit_timeout: Dur::from_millis(20),
            election_backoff: Dur::from_millis(30),
            lease_dur: Dur::from_millis(25),
            read_mode: ReadMode::XPaxos,
            txn_mode: TxnMode::PerOp,
            value_mode: ValueMode::ReqState,
            checkpoint_every: 1024,
            max_batch: 64,
            batch_window: Dur::from_micros(100),
            confirm_batching: true,
            bootstrap_leader: Some(ProcessId(0)),
            checkpoint_chunk_bytes: 0,
            apply_workers: 0,
        }
    }

    /// A configuration with timeouts suited to wide-area latencies
    /// (tens-of-milliseconds RTTs between replicas).
    #[must_use]
    pub fn wan(n: usize) -> Config {
        Config {
            n,
            heartbeat_interval: Dur::from_millis(200),
            suspect_timeout: Dur::from_millis(1000),
            retransmit_timeout: Dur::from_millis(400),
            election_backoff: Dur::from_millis(500),
            lease_dur: Dur::from_millis(500),
            read_mode: ReadMode::XPaxos,
            txn_mode: TxnMode::PerOp,
            value_mode: ValueMode::ReqState,
            checkpoint_every: 1024,
            max_batch: 64,
            batch_window: Dur::from_micros(500),
            confirm_batching: true,
            bootstrap_leader: Some(ProcessId(0)),
            checkpoint_chunk_bytes: 0,
            apply_workers: 0,
        }
    }

    /// Majority size for this group.
    #[must_use]
    pub fn majority(&self) -> usize {
        crate::types::majority(self.n)
    }

    /// Builder-style: set the read mode.
    #[must_use]
    pub fn with_read_mode(mut self, m: ReadMode) -> Config {
        self.read_mode = m;
        self
    }

    /// Builder-style: set the transaction mode.
    #[must_use]
    pub fn with_txn_mode(mut self, m: TxnMode) -> Config {
        self.txn_mode = m;
        self
    }

    /// Builder-style: set the value mode.
    #[must_use]
    pub fn with_value_mode(mut self, m: ValueMode) -> Config {
        self.value_mode = m;
        self
    }

    /// Builder-style: set or clear the bootstrap leader.
    #[must_use]
    pub fn with_bootstrap_leader(mut self, p: Option<ProcessId>) -> Config {
        self.bootstrap_leader = p;
        self
    }

    /// Builder-style: set the checkpoint interval.
    #[must_use]
    pub fn with_checkpoint_every(mut self, k: u64) -> Config {
        self.checkpoint_every = k;
        self
    }

    /// Builder-style: set the maximum decree batch size.
    #[must_use]
    pub fn with_max_batch(mut self, k: usize) -> Config {
        self.max_batch = k.max(1);
        self
    }

    /// Builder-style: enable or disable epoch-batched confirm rounds.
    #[must_use]
    pub fn with_confirm_batching(mut self, on: bool) -> Config {
        self.confirm_batching = on;
        self
    }

    /// Builder-style: set the incremental-checkpoint chunk size (`0` =
    /// legacy monolithic checkpoints).
    #[must_use]
    pub fn with_checkpoint_chunk_bytes(mut self, bytes: usize) -> Config {
        self.checkpoint_chunk_bytes = bytes;
        self
    }

    /// Builder-style: set the apply-pipeline worker count (`0` = inline
    /// apply).
    #[must_use]
    pub fn with_apply_workers(mut self, w: usize) -> Config {
        self.apply_workers = w;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let c = Config::cluster(3);
        assert_eq!(c.majority(), 2);
        assert!(c.suspect_timeout > c.heartbeat_interval);
        assert_eq!(c.bootstrap_leader, Some(ProcessId(0)));

        let w = Config::wan(5);
        assert_eq!(w.majority(), 3);
        assert!(w.suspect_timeout > w.heartbeat_interval);
    }

    #[test]
    fn builders_override() {
        let c = Config::cluster(3)
            .with_read_mode(ReadMode::Consensus)
            .with_txn_mode(TxnMode::TPaxos)
            .with_value_mode(ValueMode::ReqOnly)
            .with_bootstrap_leader(None)
            .with_checkpoint_every(16)
            .with_confirm_batching(false)
            .with_checkpoint_chunk_bytes(1 << 16)
            .with_apply_workers(4);
        assert!(!c.confirm_batching);
        assert_eq!(c.checkpoint_chunk_bytes, 1 << 16);
        assert_eq!(c.apply_workers, 4);
        assert_eq!(c.read_mode, ReadMode::Consensus);
        assert_eq!(c.txn_mode, TxnMode::TPaxos);
        assert_eq!(c.value_mode, ValueMode::ReqOnly);
        assert_eq!(c.bootstrap_leader, None);
        assert_eq!(c.checkpoint_every, 16);
    }
}
