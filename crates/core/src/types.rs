//! Fundamental identifier and time newtypes shared by every layer.
//!
//! All identifiers are small `Copy` newtypes so they can be passed by value
//! in hot paths without allocation, and so the type system prevents mixing
//! up e.g. a consensus instance with a client sequence number.

use std::fmt;

/// Identifier of a service process (a replica). Replicas are numbered
/// `0..n` within a replica group.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct ProcessId(pub u32);

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a client process.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct ClientId(pub u64);

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Per-client monotonically increasing request sequence number. Together
/// with [`ClientId`] it uniquely identifies a request, which is what makes
/// retransmissions idempotent (at-most-once execution).
#[derive(
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    Debug,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Seq(pub u64);

impl Seq {
    /// The next sequence number.
    #[must_use]
    pub fn next(self) -> Seq {
        Seq(self.0 + 1)
    }
}

/// A consensus instance number. The decree chosen by instance `i` is the
/// `i`-th command executed by the replicated service. Instances start at 1;
/// instance 0 is a sentinel meaning "nothing chosen yet".
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Instance(pub u64);

impl Instance {
    /// Sentinel: no instance has been decided yet.
    pub const ZERO: Instance = Instance(0);

    /// The next instance.
    #[must_use]
    pub fn next(self) -> Instance {
        Instance(self.0 + 1)
    }

    /// The previous instance; saturates at zero.
    #[must_use]
    pub fn prev(self) -> Instance {
        Instance(self.0.saturating_sub(1))
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Identifier of a client transaction (T-Paxos). Unique per client; the
/// pair `(ClientId, TxnId)` is globally unique.
#[derive(
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    Debug,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct TxnId(pub u64);

/// Identifier of a consensus group in a multi-group (sharded) deployment.
///
/// Each group is a complete, independent instance of the replication
/// protocol — its own log, ballot space, leader and pipeline — hosted on
/// the same set of processes. Group 0 is the default: single-group
/// deployments never mention any other group (and never tag messages).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct GroupId(pub u32);

impl GroupId {
    /// The default group (also the home of keyless/global requests).
    pub const ZERO: GroupId = GroupId(0);
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Map a service-level shard key hash onto one of `n_groups` consensus
/// groups. With one group (or zero, treated as one) everything maps to
/// [`GroupId::ZERO`].
#[must_use]
pub fn shard_of(key_hash: u64, n_groups: usize) -> GroupId {
    if n_groups <= 1 {
        GroupId::ZERO
    } else {
        GroupId((key_hash % n_groups as u64) as u32)
    }
}

/// Absolute time in nanoseconds since an arbitrary epoch.
///
/// The discrete-event simulator owns a virtual clock measured in these
/// units; the real transport maps `std::time::Instant` onto the same type.
/// The protocol core never reads a wall clock — it is always *told* the
/// current time, which is what keeps it deterministic.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Time(pub u64);

impl Time {
    /// The epoch.
    pub const ZERO: Time = Time(0);

    /// Time advanced by `d`.
    #[must_use]
    pub fn after(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// Duration elapsed since `earlier`; saturates at zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Seconds since the epoch, as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}ns", self.0)
    }
}

/// A span of time in nanoseconds.
///
/// Named `Dur` to avoid clashing with `std::time::Duration`, which the
/// real transport converts to and from at its boundary.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Dur(pub u64);

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// From whole nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// From whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// From whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// From whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// From fractional milliseconds (convenient for latency models quoted
    /// in ms in the paper).
    #[must_use]
    pub fn from_millis_f64(ms: f64) -> Dur {
        Dur((ms.max(0.0) * 1e6).round() as u64)
    }

    /// As fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, other: Dur) -> Dur {
        Dur(self.0.saturating_add(other.0))
    }

    /// Multiply by an integer factor (saturating; distinct from
    /// `std::ops::Mul`, which would panic on overflow).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }

    /// Halve (used for timeout backoff midpoints).
    #[must_use]
    pub fn half(self) -> Dur {
        Dur(self.0 / 2)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl std::ops::Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        self.after(rhs)
    }
}

impl std::ops::Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        self.saturating_add(rhs)
    }
}

impl std::ops::Sub for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        self.since(rhs)
    }
}

/// Network address of a protocol participant. The simulator and the real
/// transports route messages by `Addr`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Addr {
    /// A service replica.
    Replica(ProcessId),
    /// A client process.
    Client(ClientId),
}

impl Addr {
    /// The replica id, if this address is a replica.
    #[must_use]
    pub fn as_replica(self) -> Option<ProcessId> {
        match self {
            Addr::Replica(p) => Some(p),
            Addr::Client(_) => None,
        }
    }

    /// The client id, if this address is a client.
    #[must_use]
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            Addr::Client(c) => Some(c),
            Addr::Replica(_) => None,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Replica(p) => write!(f, "{p}"),
            Addr::Client(c) => write!(f, "{c}"),
        }
    }
}

/// Number of processes that constitutes a majority of `n` replicas:
/// `floor(n/2) + 1`. The protocols tolerate `floor((n-1)/2)` crashes.
#[must_use]
pub fn majority(n: usize) -> usize {
    n / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_sizes() {
        assert_eq!(majority(1), 1);
        assert_eq!(majority(2), 2);
        assert_eq!(majority(3), 2);
        assert_eq!(majority(4), 3);
        assert_eq!(majority(5), 3);
        assert_eq!(majority(7), 4);
    }

    #[test]
    fn instance_ordering_and_step() {
        assert!(Instance(3) < Instance(4));
        assert_eq!(Instance(3).next(), Instance(4));
        assert_eq!(Instance::ZERO.prev(), Instance::ZERO);
        assert_eq!(Instance(9).prev(), Instance(8));
    }

    #[test]
    fn time_arithmetic() {
        let t = Time(1_000);
        let t2 = t + Dur::from_nanos(500);
        assert_eq!(t2, Time(1_500));
        assert_eq!(t2 - t, Dur(500));
        // Saturating: earlier.since(later) is zero, not underflow.
        assert_eq!(t - t2, Dur::ZERO);
    }

    #[test]
    fn dur_conversions() {
        assert_eq!(Dur::from_micros(90), Dur(90_000));
        assert_eq!(Dur::from_millis(3), Dur(3_000_000));
        assert_eq!(Dur::from_secs(1), Dur(1_000_000_000));
        assert!((Dur::from_millis_f64(0.181).as_millis_f64() - 0.181).abs() < 1e-9);
    }

    #[test]
    fn seq_next_increments() {
        assert_eq!(Seq(0).next(), Seq(1));
        assert_eq!(Seq(41).next(), Seq(42));
    }

    #[test]
    fn addr_projections() {
        assert_eq!(Addr::Replica(ProcessId(2)).as_replica(), Some(ProcessId(2)));
        assert_eq!(Addr::Replica(ProcessId(2)).as_client(), None);
        assert_eq!(Addr::Client(ClientId(7)).as_client(), Some(ClientId(7)));
        assert_eq!(Addr::Client(ClientId(7)).as_replica(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcessId(3).to_string(), "r3");
        assert_eq!(ClientId(12).to_string(), "c12");
        assert_eq!(Instance(5).to_string(), "i5");
        assert_eq!(Addr::Replica(ProcessId(1)).to_string(), "r1");
        assert_eq!(GroupId(2).to_string(), "g2");
    }

    #[test]
    fn shard_of_partitions_and_degenerates() {
        // Single group (or zero): everything routes to group 0.
        assert_eq!(shard_of(0xdead_beef, 1), GroupId::ZERO);
        assert_eq!(shard_of(u64::MAX, 0), GroupId::ZERO);
        // Multi-group: simple modulo, full coverage of the group range.
        for g in 0..4u64 {
            assert_eq!(shard_of(g, 4), GroupId(g as u32));
            assert_eq!(shard_of(g + 4, 4), GroupId(g as u32));
        }
        assert!(shard_of(u64::MAX, 8).0 < 8);
    }
}
